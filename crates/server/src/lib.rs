//! # rage-server
//!
//! The RAGE explanation service: the paper's interactive demo (§III) as an
//! HTTP server, built — like every other substrate in this workspace — with
//! no external dependencies: HTTP/1.1 over [`std::net`] (see [`http`]), a
//! fixed worker pool of `std::thread`s fed over an mpsc channel (the PR 2
//! evaluator pattern), and the shared [`rage_report::Service`] layer, which
//! is the *same* code path the `report` CLI renders through — so
//! `GET /report?scenario=S&format=json` is byte-identical to
//! `report --scenario S --format json` (pinned by `tests/endpoints.rs`).
//!
//! ## Endpoints
//!
//! | Method & path       | Description                                          |
//! |---------------------|------------------------------------------------------|
//! | `GET /`             | HTML index: every scenario, linked to its HTML view  |
//! | `GET /scenarios`    | JSON list of registry scenarios (name + summary)     |
//! | `GET /report?scenario=S[&format=md\|json\|html][&shards=N][&deadline_ms=MS]` | one rendered explanation report (default `json`); the `html` format is the self-contained interactive page; `deadline_ms` serves an *anytime* report whose searches stop at the wall-clock deadline, with explicit completeness markers on truncated sections |
//! | `POST /ask`         | JSON body `{"scenario": S, "query": Q[, "k": N][, "deadline_ms": MS]}` — one RAG round trip over the scenario's corpus; with `deadline_ms` the caller waits at most that long before a 408 |
//! | `POST /diff`        | JSON body `{"a": <report>, "b": <report>}` (two report documents, schema v1 or v2) — their [`rage_report::ReportDiff`] |
//! | `GET /diff?scenario=S&from=N&to=N[&shards=N]` | diff the scenario's reports at two corpus versions (the `to` side may be the live version; older sides come from the service's bounded version cache) |
//! | `POST /corpus/docs` | JSON body `{"scenario": S, "doc": {"id", "text"[, "title"][, "fields"]}[, "mode": "add"\|"update"\|"upsert"]}` — mutate the scenario's live corpus; answers the new corpus provenance |
//! | `DELETE /corpus/docs/{id}?scenario=S` | remove one document from the scenario's live corpus |
//! | `GET /stats`        | JSON counters: report cache, ask batching, requests, per-scenario corpus versions |
//!
//! Errors come back as `{"error":{"status":N,"message":...}}` with the status
//! mirrored in the HTTP status line. Caller mistakes are always 4xx — unknown
//! scenarios 404, malformed bodies/parameters 400 (including `k = 0`, which
//! the engine reports as an invalid argument, *not* as an empty retrieval,
//! and `shards` beyond [`rage_report::MAX_SHARDS`], which is rejected before
//! it can size any allocation or thread pool), adding a document whose id is
//! already live 409, a known path with the wrong method 405 with an `Allow`
//! header, and a request that trickles past the configured wall-clock
//! deadline 408. Malformed HTTP never panics a worker (see [`http`] for the
//! limits), and if a handler *does* panic the worker catches the unwind and
//! answers 500 — the fixed-size pool never loses a thread to hostile input.
//!
//! ## Live corpora and versions
//!
//! `POST /corpus/docs` and `DELETE /corpus/docs/{id}` mutate a scenario's
//! corpus *in place* through [`Service`]'s incremental index: every mutation
//! bumps the scenario's `corpus_version`, invalidates its cached reports (the
//! report cache is keyed on the version) and clears its model prefix cache,
//! so a later `GET /report` is regenerated against the new corpus and stamps
//! the version + corpus fingerprint into the report's `"corpus"` provenance
//! member. `GET /stats` lists every materialised corpus's current version,
//! and `GET /diff` turns two versions of one scenario into a structured
//! report diff.
//!
//! ## Connection persistence
//!
//! Connections are HTTP/1.1 persistent: a worker keeps answering requests on
//! one connection until the client asks for `Connection: close` (or is
//! HTTP/1.0 without `keep-alive`), the connection idles past
//! [`ServerConfig::keep_alive_timeout`], or
//! [`ServerConfig::max_requests_per_connection`] requests have been served —
//! the cap bounds how long one client can pin a worker of the fixed pool.
//! Responses are always `Content-Length`-framed and advertise the decision in
//! their `Connection` header. Parse failures and handler panics close the
//! connection (framing can no longer be trusted); an idle timeout between
//! requests closes it silently.
//!
//! ## Cross-request batching
//!
//! Concurrent `POST /ask` requests are not answered one inference at a time:
//! each worker parks its request in the [`AskBatcher`] admission queue and a
//! single dispatcher thread drains the whole queue per round, groups the
//! pending bodies by `(scenario, k)` and submits each group through one
//! [`Service::ask_many`] call — one batched model pass per group, exactly the
//! pattern the vLLM-style serving literature batches decode steps with.
//! Responses are element-wise identical to unbatched `ask` calls (pinned by
//! `tests/endpoints.rs`), so batching is a throughput lever, never a
//! semantic one.
//!
//! ## Limits of the 1-CPU container
//!
//! Latency percentiles from the `loadtest` bin (`SERVER_pr.json`) are
//! recorded on a single-CPU container: the worker pool and the batcher can
//! only interleave, not parallelise, so p50/p95/p99 understate a real
//! multicore deployment exactly like the bench-harness `speedup@4` ratios do
//! (see ROADMAP "Multicore speedup is still unmeasured").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rage_core::{CorpusProvenance, RagResponse};
use rage_json::JsonValue;
use rage_report::service::ErrorKind;
use rage_report::{diff, from_json, Document, ReportFormat, Service, ServiceError};

use http::{parse_request_with_deadline, HttpRequest, HttpResponse};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of connection-handling worker threads.
    pub threads: usize,
    /// Per-read socket timeout (bounds a fully silent peer; each blocking
    /// `read` returns within this long).
    pub read_timeout: Duration,
    /// Overall wall-clock budget for reading one request. The per-read
    /// timeout alone cannot stop a slow-loris client that trickles one byte
    /// per timeout window; this deadline bounds the whole request and
    /// answers 408 when exceeded.
    pub request_deadline: Duration,
    /// Admission window of the `/ask` batcher: after the first pending ask of
    /// a round arrives, the dispatcher waits this long before draining the
    /// queue, so bursts of concurrent asks land in the same
    /// [`Service::ask_many`] batch. Zero disables the wait (drain
    /// immediately; coalescing then only happens while a batch is already in
    /// flight).
    pub ask_batch_window: Duration,
    /// How long a persistent connection may sit idle between requests before
    /// the server closes it. Only applies after the first request (the first
    /// read is bounded by `read_timeout`); the idle close is silent, not an
    /// error response.
    pub keep_alive_timeout: Duration,
    /// Upper bound on requests served over one persistent connection before
    /// the server closes it — with a fixed worker pool, the cap bounds how
    /// long one client can pin a worker.
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            ask_batch_window: Duration::from_millis(2),
            keep_alive_timeout: Duration::from_secs(5),
            max_requests_per_connection: 100,
        }
    }
}

/// Map a [`ServiceError`] onto the HTTP status its [`ErrorKind`] calls for.
fn status_for(error: &ServiceError) -> u16 {
    match error.kind() {
        ErrorKind::NotFound | ErrorKind::NoResults => 404,
        ErrorKind::BadRequest => 400,
        ErrorKind::Conflict => 409,
        ErrorKind::Internal => 500,
    }
}

fn service_error_response(error: &ServiceError) -> HttpResponse {
    HttpResponse::error(status_for(error), &error.to_string())
}

/// One pending `/ask`, parked until the dispatcher answers it.
struct PendingAsk {
    scenario: String,
    query: String,
    k: Option<usize>,
    reply: mpsc::Sender<Result<RagResponse, (u16, String)>>,
}

/// Counters of the admission queue (exposed via `GET /stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// `/ask` requests admitted into the queue.
    pub requests: u64,
    /// Dispatcher rounds executed (each round = one `ask_many` per distinct
    /// `(scenario, k)` group in the drained queue).
    pub batches: u64,
    /// Largest number of requests coalesced into a single round so far.
    pub max_batch: u64,
}

/// Cross-request admission queue: concurrent `/ask` bodies coalesce into
/// batched [`Service::ask_many`] calls (see the [crate docs](self)).
pub struct AskBatcher {
    service: Arc<Service>,
    window: Duration,
    queue: Mutex<Vec<PendingAsk>>,
    signal: Condvar,
    shutdown: AtomicBool,
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

impl AskBatcher {
    fn new(service: Arc<Service>, window: Duration) -> Arc<Self> {
        Arc::new(Self {
            service,
            window,
            queue: Mutex::new(Vec::new()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        })
    }

    /// Park one ask in the queue and block until the dispatcher answers it.
    ///
    /// Requests that arrive while a batch is in flight pile up and are drained
    /// together in the next round — that pile-up *is* the coalescing.
    pub fn submit(
        &self,
        scenario: &str,
        query: &str,
        k: Option<usize>,
    ) -> Result<RagResponse, (u16, String)> {
        self.submit_with_deadline(scenario, query, k, None)
    }

    /// Like [`AskBatcher::submit`], but wait at most `deadline_ms` for the
    /// answer: past the deadline the caller gets a 408 and moves on, while
    /// the batch keeps running (its result still warms the shared caches —
    /// abandoning the wait never corrupts dispatcher state).
    pub fn submit_with_deadline(
        &self,
        scenario: &str,
        query: &str,
        k: Option<usize>,
        deadline_ms: Option<u64>,
    ) -> Result<RagResponse, (u16, String)> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let mut queue = self.queue.lock().expect("ask queue lock");
            queue.push(PendingAsk {
                scenario: scenario.to_string(),
                query: query.to_string(),
                k,
                reply: reply_tx,
            });
            self.requests.fetch_add(1, Ordering::Relaxed);
        }
        self.signal.notify_all();
        match deadline_ms {
            None => reply_rx
                .recv()
                .unwrap_or_else(|_| Err((500, "ask dispatcher unavailable".to_string()))),
            Some(ms) => match reply_rx.recv_timeout(Duration::from_millis(ms)) {
                Ok(reply) => reply,
                Err(mpsc::RecvTimeoutError::Timeout) => Err((
                    408,
                    format!("ask did not complete within the {ms} ms deadline"),
                )),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err((500, "ask dispatcher unavailable".to_string()))
                }
            },
        }
    }

    /// Queue counters so far.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// The dispatcher loop: wait for work, hold the admission window open,
    /// drain the queue, group, answer — until shutdown.
    fn run(&self) {
        loop {
            {
                let mut queue = self.queue.lock().expect("ask queue lock");
                while queue.is_empty() && !self.shutdown.load(Ordering::Acquire) {
                    queue = self
                        .signal
                        .wait_timeout(queue, Duration::from_millis(50))
                        .expect("ask queue lock")
                        .0;
                }
                if queue.is_empty() {
                    return; // shutdown with nothing left to answer
                }
            }
            // Admission window: let concurrent asks pile into this round.
            if !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            let drained: Vec<PendingAsk> =
                std::mem::take(&mut *self.queue.lock().expect("ask queue lock"));
            if drained.is_empty() {
                continue;
            }

            self.batches.fetch_add(1, Ordering::Relaxed);
            self.max_batch
                .fetch_max(drained.len() as u64, Ordering::Relaxed);

            // Group by (scenario, k); each group becomes one ask_many call.
            let mut groups: HashMap<(String, Option<usize>), Vec<PendingAsk>> = HashMap::new();
            for pending in drained {
                groups
                    .entry((pending.scenario.clone(), pending.k))
                    .or_default()
                    .push(pending);
            }
            for ((scenario, k), group) in groups {
                let queries: Vec<&str> = group.iter().map(|p| p.query.as_str()).collect();
                // A panicking batch must not kill the dispatcher: parked
                // submitters whose queue entries would never drain again
                // would block their workers forever. Contain it and answer
                // the group with 500s instead.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.service.ask_many(&scenario, &queries, k)
                }));
                match outcome {
                    Ok(Ok(results)) => {
                        for (pending, result) in group.iter().zip(results) {
                            let reply = result.map_err(|err| (status_for(&err), err.to_string()));
                            let _ = pending.reply.send(reply);
                        }
                    }
                    Ok(Err(err)) => {
                        let status = status_for(&err);
                        let message = err.to_string();
                        for pending in &group {
                            let _ = pending.reply.send(Err((status, message.clone())));
                        }
                    }
                    Err(_) => {
                        for pending in &group {
                            let _ = pending.reply.send(Err((
                                500,
                                "internal error while answering the ask batch".to_string(),
                            )));
                        }
                    }
                }
            }
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.signal.notify_all();
    }
}

/// The running HTTP server: an accept thread, a worker pool and the ask
/// dispatcher, all over one shared [`Service`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    batcher: Arc<AskBatcher>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    dispatcher_handle: Option<JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
}

impl Server {
    /// Bind `addr` and start serving `service` on `config.threads` workers.
    ///
    /// Bind to port 0 to let the OS choose (tests do); the effective address
    /// is [`Server::addr`].
    pub fn start(
        addr: impl ToSocketAddrs,
        service: Arc<Service>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let batcher = AskBatcher::new(Arc::clone(&service), config.ask_batch_window);

        let dispatcher_handle = {
            let batcher = Arc::clone(&batcher);
            std::thread::Builder::new()
                .name("rage-ask-dispatcher".to_string())
                .spawn(move || batcher.run())
                .expect("failed to spawn ask dispatcher")
        };

        // The PR 2 worker-pool pattern: accepted connections flow over one
        // mpsc channel into a fixed set of workers; dropping the sender is
        // the workers' shutdown signal.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..config.threads.max(1))
            .map(|i| {
                let conn_rx = Arc::clone(&conn_rx);
                let service = Arc::clone(&service);
                let batcher = Arc::clone(&batcher);
                let requests_served = Arc::clone(&requests_served);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("rage-server-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let guard = conn_rx.lock().expect("connection channel lock");
                            guard.recv()
                        };
                        let Ok(stream) = stream else { return };
                        requests_served.fetch_add(1, Ordering::Relaxed);
                        handle_connection(stream, &service, &batcher, &requests_served, &config);
                    })
                    .expect("failed to spawn server worker")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let listener = listener.try_clone()?;
            std::thread::Builder::new()
                .name("rage-server-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                if conn_tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    // conn_tx drops here, releasing the workers.
                })
                .expect("failed to spawn accept thread")
        };

        Ok(Server {
            addr,
            shutdown,
            batcher,
            accept_handle: Some(accept_handle),
            worker_handles,
            dispatcher_handle: Some(dispatcher_handle),
            requests_served,
        })
    }

    /// The address the server is actually listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters of the `/ask` admission queue.
    pub fn batch_stats(&self) -> BatchStats {
        self.batcher.stats()
    }

    /// Number of connections handed to the worker pool so far.
    pub fn connections_accepted(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the workers and join every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.accept_handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.batcher.stop();
        if let Some(handle) = self.dispatcher_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Parse, route and answer requests on one connection until it closes.
///
/// HTTP/1.1 persistence: the loop keeps serving as long as the client asked
/// to keep the connection alive, fewer than
/// [`ServerConfig::max_requests_per_connection`] requests have been answered,
/// and the connection has not idled past
/// [`ServerConfig::keep_alive_timeout`]. Each request gets its own wall-clock
/// deadline. Parse failures and panics answer with `Connection: close` and
/// drop the connection — after either, the request framing can no longer be
/// trusted.
///
/// The whole parse-and-route path runs under `catch_unwind`: the worker pool
/// is fixed, so a panicking handler must cost the peer a 500, never the pool
/// a thread (a few unrecovered panics would otherwise silently reduce
/// capacity to zero while the accept thread keeps queuing connections).
fn handle_connection(
    stream: TcpStream,
    service: &Service,
    batcher: &AskBatcher,
    requests_served: &AtomicU64,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut served = 0usize;
    loop {
        if served > 0 {
            // Between requests the only thing worth waiting for is the next
            // request line; an idle peer gets the (shorter) keep-alive
            // timeout. The clones share one socket, so either handle works.
            let _ = writer
                .get_ref()
                .set_read_timeout(Some(config.keep_alive_timeout));
        }
        let deadline = Instant::now() + config.request_deadline;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match parse_request_with_deadline(&mut reader, Some(deadline)) {
                Ok(Some(request)) => {
                    let response = route(&request, service, batcher, requests_served);
                    Some((response, request.keep_alive))
                }
                Ok(None) => None, // clean EOF or idle timeout, nothing to answer
                Err(err) => Some((err.into(), false)),
            }
        }));
        let (response, client_keep_alive) = match outcome {
            Ok(Some(answered)) => answered,
            Ok(None) => return,
            Err(_) => (
                HttpResponse::error(500, "internal error while handling the request"),
                false,
            ),
        };
        served += 1;
        let keep_alive = client_keep_alive && served < config.max_requests_per_connection.max(1);
        if response
            .write_to_with_connection(&mut writer, keep_alive)
            .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Dispatch one parsed request to its handler.
fn route(
    request: &HttpRequest,
    service: &Service,
    batcher: &AskBatcher,
    requests_served: &AtomicU64,
) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => index_page(service),
        ("GET", "/scenarios") => scenarios_json(service),
        ("GET", "/report") => report_endpoint(request, service),
        ("POST", "/ask") => ask_endpoint(request, batcher),
        ("POST", "/diff") => diff_endpoint(request),
        ("GET", "/diff") => diff_versions_endpoint(request, service),
        ("POST", "/corpus/docs") => corpus_mutate_endpoint(request, service),
        ("DELETE", path) if path.starts_with("/corpus/docs/") => {
            corpus_delete_endpoint(request, service)
        }
        ("GET", "/stats") => stats_json(service, batcher, requests_served),
        // Known path, wrong method: 405 naming the method that works there —
        // not 404, which would misreport an existing endpoint as absent.
        (_, "/" | "/scenarios" | "/report" | "/stats") => method_not_allowed("GET"),
        (_, "/ask") => method_not_allowed("POST"),
        (_, "/diff") => method_not_allowed("GET, POST"),
        (_, "/corpus/docs") => method_not_allowed("POST"),
        (_, path) if path.starts_with("/corpus/docs/") => method_not_allowed("DELETE"),
        ("GET" | "POST" | "DELETE", _) => HttpResponse::error(404, "no such endpoint"),
        _ => HttpResponse::error(405, "method not allowed (GET, POST and DELETE only)"),
    }
}

/// A 405 with the RFC-required `Allow` header naming the supported method.
fn method_not_allowed(allow: &'static str) -> HttpResponse {
    HttpResponse::error(405, &format!("method not allowed (use {allow})")).with_allow(allow)
}

/// `GET /` — a small HTML index linking every scenario to its served report.
fn index_page(service: &Service) -> HttpResponse {
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>RAGE explanation server</title></head><body>\n\
         <h1>RAGE explanation server</h1>\n\
         <p>Interactive RAG explanations over the registered demonstration \
         scenarios. Each link renders the six-panel explanation page; \
         <code>?format=json</code> and <code>?format=md</code> serve the \
         structured and markdown renderings of the same report.</p>\n<ul>\n",
    );
    for (name, summary) in service.scenario_list() {
        // Registry names are plain identifiers today, but the page must not
        // rely on that: the href gets the percent-encoded name, the link text
        // the HTML-escaped one.
        html.push_str(&format!(
            "<li><a href=\"/report?scenario={}&format=html\">{}</a> — {}</li>\n",
            percent_encode_component(name),
            html_escape_text(name),
            html_escape_text(summary)
        ));
    }
    html.push_str("</ul>\n<p><a href=\"/scenarios\">/scenarios</a> · <a href=\"/stats\">/stats</a></p>\n</body></html>\n");
    HttpResponse::ok("text/html; charset=utf-8", html)
}

fn html_escape_text(value: &str) -> String {
    value
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Percent-encode a string for use as one query-string value (everything but
/// RFC 3986 unreserved characters is escaped).
fn percent_encode_component(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for byte in value.bytes() {
        match byte {
            b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// `GET /scenarios` — the registry as JSON.
fn scenarios_json(service: &Service) -> HttpResponse {
    let scenarios = service
        .scenario_list()
        .into_iter()
        .map(|(name, summary)| {
            JsonValue::Object(vec![
                ("name".into(), JsonValue::String(name.to_string())),
                ("summary".into(), JsonValue::String(summary.to_string())),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![("scenarios".into(), JsonValue::Array(scenarios))]);
    HttpResponse::ok("application/json", doc.render())
}

/// `GET /report?scenario=S[&format=F][&shards=N][&deadline_ms=MS]`.
fn report_endpoint(request: &HttpRequest, service: &Service) -> HttpResponse {
    let Some(scenario) = request.query_param("scenario") else {
        return HttpResponse::error(400, "missing required query parameter: scenario");
    };
    let format = match ReportFormat::parse(request.query_param("format").unwrap_or("json")) {
        Ok(format) => format,
        Err(err) => return service_error_response(&err),
    };
    let shards = match request.query_param("shards") {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return HttpResponse::error(400, "shards must be a non-negative integer"),
        },
    };
    let deadline_ms = match request.query_param("deadline_ms") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                return HttpResponse::error(
                    400,
                    "deadline_ms must be a non-negative integer of milliseconds",
                )
            }
        },
    };
    match service.render_report_with_deadline(scenario, format, shards, deadline_ms) {
        Ok(rendering) => HttpResponse::ok(format.content_type(), rendering),
        Err(err) => service_error_response(&err),
    }
}

/// `POST /ask` — body `{"scenario": S, "query": Q[, "k": N][, "deadline_ms": MS]}`.
fn ask_endpoint(request: &HttpRequest, batcher: &AskBatcher) -> HttpResponse {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value = match JsonValue::parse(body) {
        Ok(value) => value,
        Err(err) => return HttpResponse::error(400, &format!("invalid JSON body: {err}")),
    };
    let Some(scenario) = value.get("scenario").and_then(JsonValue::as_str) else {
        return HttpResponse::error(400, "body must have a string \"scenario\" member");
    };
    let Some(query) = value.get("query").and_then(JsonValue::as_str) else {
        return HttpResponse::error(400, "body must have a string \"query\" member");
    };
    let k = match value.get("k") {
        None => None,
        Some(raw) => match raw.as_usize() {
            Some(k) => Some(k),
            None => return HttpResponse::error(400, "\"k\" must be a non-negative integer"),
        },
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(raw) => match raw.as_usize() {
            Some(ms) => Some(ms as u64),
            None => {
                return HttpResponse::error(
                    400,
                    "\"deadline_ms\" must be a non-negative integer of milliseconds",
                )
            }
        },
    };

    match batcher.submit_with_deadline(scenario, query, k, deadline_ms) {
        Ok(response) => {
            let sources = response
                .context
                .sources
                .iter()
                .map(|source| {
                    JsonValue::Object(vec![
                        ("doc_id".into(), JsonValue::String(source.doc_id.clone())),
                        ("rank".into(), JsonValue::Number(source.rank as f64)),
                        (
                            "retrieval_score".into(),
                            JsonValue::Number(source.retrieval_score),
                        ),
                    ])
                })
                .collect();
            let doc = JsonValue::Object(vec![
                ("scenario".into(), JsonValue::String(scenario.to_string())),
                ("query".into(), JsonValue::String(query.to_string())),
                (
                    "answer".into(),
                    JsonValue::String(response.answer().to_string()),
                ),
                ("k".into(), JsonValue::Number(response.k() as f64)),
                ("sources".into(), JsonValue::Array(sources)),
            ]);
            HttpResponse::ok("application/json", doc.render())
        }
        Err((status, message)) => HttpResponse::error(status, &message),
    }
}

/// `POST /diff` — body `{"a": <schema-v1 report>, "b": <schema-v1 report>}`.
fn diff_endpoint(request: &HttpRequest) -> HttpResponse {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value = match JsonValue::parse(body) {
        Ok(value) => value,
        Err(err) => return HttpResponse::error(400, &format!("invalid JSON body: {err}")),
    };
    let mut reports = Vec::with_capacity(2);
    for side in ["a", "b"] {
        let Some(doc) = value.get(side) else {
            return HttpResponse::error(400, &format!("body must have an {side:?} report member"));
        };
        match from_json(doc) {
            Ok(report) => reports.push(report),
            Err(err) => {
                return HttpResponse::error(
                    400,
                    &format!("{side:?} is not a report document: {err}"),
                )
            }
        }
    }
    let report_diff = diff(&reports[0], &reports[1]);
    let doc = JsonValue::Object(vec![
        ("identical".into(), JsonValue::Bool(report_diff.is_empty())),
        ("diff".into(), report_diff.to_json()),
    ]);
    HttpResponse::ok("application/json", doc.render())
}

/// Corpus provenance as the JSON shape every corpus-aware response shares.
/// The fingerprint is rendered as 16 hex digits: a `u64` does not survive the
/// round trip through JSON's `f64` numbers.
fn provenance_json(provenance: &CorpusProvenance) -> JsonValue {
    JsonValue::Object(vec![
        (
            "version".into(),
            JsonValue::Number(provenance.version as f64),
        ),
        (
            "fingerprint".into(),
            JsonValue::String(format!("{:016x}", provenance.fingerprint)),
        ),
        (
            "num_docs".into(),
            JsonValue::Number(provenance.num_docs as f64),
        ),
    ])
}

/// Decode the `"doc"` member of a corpus-mutation body into a [`Document`].
fn document_from_json(value: &JsonValue) -> Result<Document, HttpResponse> {
    let Some(id) = value.get("id").and_then(JsonValue::as_str) else {
        return Err(HttpResponse::error(
            400,
            "\"doc\" must have a string \"id\" member",
        ));
    };
    let Some(text) = value.get("text").and_then(JsonValue::as_str) else {
        return Err(HttpResponse::error(
            400,
            "\"doc\" must have a string \"text\" member",
        ));
    };
    let title = match value.get("title") {
        None => "",
        Some(raw) => match raw.as_str() {
            Some(title) => title,
            None => {
                return Err(HttpResponse::error(400, "\"title\" must be a string"));
            }
        },
    };
    let mut doc = Document::new(id, title, text);
    if let Some(fields) = value.get("fields") {
        let JsonValue::Object(members) = fields else {
            return Err(HttpResponse::error(
                400,
                "\"fields\" must be an object of string values",
            ));
        };
        for (key, field) in members {
            let Some(field) = field.as_str() else {
                return Err(HttpResponse::error(
                    400,
                    "\"fields\" must be an object of string values",
                ));
            };
            doc = doc.with_field(key.as_str(), field);
        }
    }
    Ok(doc)
}

/// `POST /corpus/docs` — body
/// `{"scenario": S, "doc": {...}[, "mode": "add"|"update"|"upsert"]}`.
fn corpus_mutate_endpoint(request: &HttpRequest, service: &Service) -> HttpResponse {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value = match JsonValue::parse(body) {
        Ok(value) => value,
        Err(err) => return HttpResponse::error(400, &format!("invalid JSON body: {err}")),
    };
    let Some(scenario) = value.get("scenario").and_then(JsonValue::as_str) else {
        return HttpResponse::error(400, "body must have a string \"scenario\" member");
    };
    let mode = match value.get("mode") {
        None => "add",
        Some(raw) => match raw.as_str() {
            Some(mode @ ("add" | "update" | "upsert")) => mode,
            _ => {
                return HttpResponse::error(
                    400,
                    "\"mode\" must be \"add\", \"update\" or \"upsert\"",
                )
            }
        },
    };
    let Some(doc_value) = value.get("doc") else {
        return HttpResponse::error(400, "body must have a \"doc\" member");
    };
    let doc = match document_from_json(doc_value) {
        Ok(doc) => doc,
        Err(response) => return response,
    };
    let doc_id = doc.id.clone();
    let result = match mode {
        "add" => service.add_document(scenario, doc),
        "update" => service.update_document(scenario, doc),
        _ => service.upsert_document(scenario, doc),
    };
    match result {
        Ok(provenance) => {
            let doc = JsonValue::Object(vec![
                ("scenario".into(), JsonValue::String(scenario.to_string())),
                ("mode".into(), JsonValue::String(mode.to_string())),
                ("doc_id".into(), JsonValue::String(doc_id)),
                ("corpus".into(), provenance_json(&provenance)),
            ]);
            HttpResponse::ok("application/json", doc.render())
        }
        Err(err) => service_error_response(&err),
    }
}

/// `DELETE /corpus/docs/{id}?scenario=S`.
fn corpus_delete_endpoint(request: &HttpRequest, service: &Service) -> HttpResponse {
    let id = request
        .path
        .strip_prefix("/corpus/docs/")
        .unwrap_or_default();
    if id.is_empty() {
        return HttpResponse::error(400, "missing document id in path");
    }
    let Some(scenario) = request.query_param("scenario") else {
        return HttpResponse::error(400, "missing required query parameter: scenario");
    };
    match service.remove_document(scenario, id) {
        Ok(provenance) => {
            let doc = JsonValue::Object(vec![
                ("scenario".into(), JsonValue::String(scenario.to_string())),
                ("removed".into(), JsonValue::String(id.to_string())),
                ("corpus".into(), provenance_json(&provenance)),
            ]);
            HttpResponse::ok("application/json", doc.render())
        }
        Err(err) => service_error_response(&err),
    }
}

/// `GET /diff?scenario=S&from=N&to=N[&shards=N]` — the report diff between
/// two corpus versions of one scenario.
fn diff_versions_endpoint(request: &HttpRequest, service: &Service) -> HttpResponse {
    let Some(scenario) = request.query_param("scenario") else {
        return HttpResponse::error(400, "missing required query parameter: scenario");
    };
    let mut versions = [0u64; 2];
    for (slot, key) in versions.iter_mut().zip(["from", "to"]) {
        let Some(raw) = request.query_param(key) else {
            return HttpResponse::error(
                400,
                &format!("missing required query parameter: {key} (a corpus version)"),
            );
        };
        match raw.parse::<u64>() {
            Ok(version) => *slot = version,
            Err(_) => {
                return HttpResponse::error(
                    400,
                    &format!("{key} must be a corpus version (a positive integer)"),
                )
            }
        }
    }
    let shards = match request.query_param("shards") {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return HttpResponse::error(400, "shards must be a non-negative integer"),
        },
    };
    match service.diff_reports(scenario, versions[0], versions[1], shards) {
        Ok(report_diff) => {
            let doc = JsonValue::Object(vec![
                ("scenario".into(), JsonValue::String(scenario.to_string())),
                ("from".into(), JsonValue::Number(versions[0] as f64)),
                ("to".into(), JsonValue::Number(versions[1] as f64)),
                ("identical".into(), JsonValue::Bool(report_diff.is_empty())),
                ("diff".into(), report_diff.to_json()),
            ]);
            HttpResponse::ok("application/json", doc.render())
        }
        Err(err) => service_error_response(&err),
    }
}

/// `GET /stats` — service + batcher counters.
fn stats_json(
    service: &Service,
    batcher: &AskBatcher,
    requests_served: &AtomicU64,
) -> HttpResponse {
    let report_cache = service.report_cache_stats();
    let batch = batcher.stats();
    let doc = JsonValue::Object(vec![
        (
            "connections".into(),
            JsonValue::Number(requests_served.load(Ordering::Relaxed) as f64),
        ),
        (
            "report_cache".into(),
            JsonValue::Object(vec![
                ("hits".into(), JsonValue::Number(report_cache.hits as f64)),
                (
                    "misses".into(),
                    JsonValue::Number(report_cache.misses as f64),
                ),
            ]),
        ),
        (
            "ask_batching".into(),
            JsonValue::Object(vec![
                ("requests".into(), JsonValue::Number(batch.requests as f64)),
                ("batches".into(), JsonValue::Number(batch.batches as f64)),
                (
                    "max_batch".into(),
                    JsonValue::Number(batch.max_batch as f64),
                ),
            ]),
        ),
        (
            "corpora".into(),
            JsonValue::Object(
                service
                    .corpus_versions()
                    .into_iter()
                    .map(|(name, provenance)| (name, provenance_json(&provenance)))
                    .collect(),
            ),
        ),
    ]);
    HttpResponse::ok("application/json", doc.render())
}
