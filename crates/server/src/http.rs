//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build environment has no registry access, so — like `rage-json` before
//! it — this module implements the protocol subset the explanation server
//! needs from scratch over [`std::io`]: request-line + header parsing with
//! hard size limits, `Content-Length`-delimited bodies, percent-decoding for
//! query strings, and a compact response writer. Connection persistence
//! follows HTTP/1.1 semantics: requests default to keep-alive (HTTP/1.0 to
//! close) and a `Connection` header overrides either way; the parsed
//! [`HttpRequest::keep_alive`] flag carries the decision and
//! [`HttpResponse::write_to_with_connection`] echoes it back.
//!
//! ## Robustness contract
//!
//! Everything here is reachable by untrusted bytes, so the parser's contract
//! mirrors the JSON crate's: *every* malformed, truncated, oversized or
//! hostile input maps to a typed [`HttpError`] carrying a 4xx/5xx status —
//! never a panic, never unbounded buffering. The limits are deliberately
//! generous for real clients and deliberately fatal for abuse:
//!
//! * request line ≤ [`MAX_REQUEST_LINE`] bytes (414 beyond that);
//! * ≤ [`MAX_HEADERS`] headers totalling ≤ [`MAX_HEADER_BYTES`] bytes (431);
//! * body ≤ [`MAX_BODY_BYTES`] bytes, `Content-Length`-delimited only
//!   (413 / 411; chunked transfer encoding is answered with 501);
//! * bodies shorter than their declared `Content-Length` (a truncated
//!   request) are a 400;
//! * the *whole* request is read under one wall-clock deadline
//!   ([`parse_request_with_deadline`]): the per-read socket timeout only
//!   bounds a fully silent peer, so a slow-loris client trickling one byte
//!   per timeout window would otherwise hold a worker indefinitely — the
//!   deadline is checked between reads and answers 408 when exceeded.
//!
//! `crates/server/tests/http_parser.rs` drives these properties with
//! adversarial inputs, in the spirit of the JSON depth-bound test.

use std::io::{BufRead, Write};
use std::time::Instant;

/// Upper bound on the request line (`GET /path?query HTTP/1.1`).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum number of header lines accepted.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on the total header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, in bytes (reports are ~5 KiB; two of them
/// plus JSON overhead fit comfortably in 1 MiB).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// The percent-decoded path component (no query string).
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open after this
    /// request: the HTTP/1.1 default (`true`; HTTP/1.0 defaults to `false`)
    /// unless a `Connection` header token says otherwise.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First query parameter named `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-parsing failure, carrying the status code the connection should
/// answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The HTTP status this error maps to (4xx/5xx).
    pub status: u16,
    /// Human-readable reason, safe to echo into the response body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Error when `deadline` has passed — the wall-clock backstop that bounds
/// slow-loris requests (a trickling peer keeps every individual read under
/// the socket timeout, so only an overall deadline catches it).
fn check_deadline(deadline: Option<Instant>) -> Result<(), HttpError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(HttpError::new(408, "request timed out")),
        _ => Ok(()),
    }
}

/// Read one `\r\n`- (or `\n`-) terminated line, erroring past `limit` bytes
/// or past `deadline`.
///
/// Returns `None` on clean EOF before any byte of the line.
fn read_limited_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    over_limit: HttpError,
    deadline: Option<Instant>,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        check_deadline(deadline)?;
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::new(400, "truncated request"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::new(400, "request line is not valid UTF-8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > limit {
                    return Err(over_limit);
                }
            }
            Err(err) => {
                // A read timeout before the first byte of a request is an
                // idle keep-alive connection going quiet — close it silently,
                // exactly like a clean EOF. Mid-line timeouts (and every
                // other I/O failure) stay hard 400s.
                if line.is_empty()
                    && matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    )
                {
                    return Ok(None);
                }
                return Err(HttpError::new(
                    400,
                    format!("read failed mid-request: {err}"),
                ));
            }
        }
    }
}

/// Decode one percent-encoded component. `plus_as_space` applies inside query
/// strings (`application/x-www-form-urlencoded` convention), not in paths.
fn percent_decode(raw: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| HttpError::new(400, "truncated percent-escape"))?;
                let hex = std::str::from_utf8(hex)
                    .map_err(|_| HttpError::new(400, "invalid percent-escape"))?;
                let value = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::new(400, "invalid percent-escape"))?;
                out.push(value);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::new(400, "percent-escape is not valid UTF-8"))
}

/// Split and decode a raw query string into ordered `(key, value)` pairs.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut pairs = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (key, value) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((percent_decode(key, true)?, percent_decode(value, true)?));
    }
    Ok(pairs)
}

/// An HTTP method token: 1+ ASCII token characters (RFC 9110 §5.6.2).
fn is_valid_method(method: &str) -> bool {
    !method.is_empty()
        && method
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Parse one request from `reader` (request line, headers, body).
///
/// Returns `Ok(None)` when the connection was closed before sending anything
/// (a bare TCP connect/disconnect — not an error worth answering). All other
/// failure modes produce an [`HttpError`] with the status the caller should
/// write back.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Option<HttpRequest>, HttpError> {
    parse_request_with_deadline(reader, None)
}

/// [`parse_request`] under an overall wall-clock `deadline`.
///
/// The deadline is checked between reads, so the whole request — line,
/// headers and body together — errors with 408 once it has taken too long,
/// no matter how steadily the peer trickles bytes. (Each individual blocking
/// read is still bounded by the socket's read timeout, so the worst case is
/// `deadline + read_timeout`.)
pub fn parse_request_with_deadline<R: BufRead>(
    reader: &mut R,
    deadline: Option<Instant>,
) -> Result<Option<HttpRequest>, HttpError> {
    let too_long = HttpError::new(414, "request line too long");
    let Some(request_line) = read_limited_line(reader, MAX_REQUEST_LINE, too_long, deadline)?
    else {
        return Ok(None);
    };

    // Request line: METHOD SP TARGET SP VERSION.
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    if !is_valid_method(method) {
        return Err(HttpError::new(400, "malformed method token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(505, "HTTP version not supported"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(400, "request target must be origin-form"));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let path = percent_decode(raw_path, false)?;
    let query = parse_query(raw_query)?;

    // Header block, bounded in both count and total size.
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let too_large = HttpError::new(431, "header line too large");
        let line = read_limited_line(reader, MAX_HEADER_BYTES, too_large, deadline)?
            .ok_or_else(|| HttpError::new(400, "truncated header block"))?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if headers.len() >= MAX_HEADERS || header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(431, "request header block too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Connection persistence: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
    // close; any `Connection` header token ("close", "keep-alive" — possibly
    // in a comma list, any case) overrides the default.
    let mut keep_alive = version == "HTTP/1.1";
    if let Some((_, connection)) = headers.iter().find(|(name, _)| name == "connection") {
        for token in connection.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let request = HttpRequest {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive,
    };

    // Body: Content-Length-delimited only.
    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::new(501, "transfer encodings are not supported"));
        }
    }
    let content_length = match request.header("content-length") {
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, "malformed Content-Length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    if content_length == 0 {
        return Ok(Some(request));
    }

    let mut request = request;
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < content_length {
        check_deadline(deadline)?;
        match reader.read(&mut body[read..]) {
            Ok(0) => {
                return Err(HttpError::new(
                    400,
                    "request body shorter than Content-Length",
                ))
            }
            Ok(n) => read += n,
            Err(err) => return Err(HttpError::new(400, format!("body read failed: {err}"))),
        }
    }
    request.body = body;
    Ok(Some(request))
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response ready to be written back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Value of an `Allow` header, set on 405 responses (RFC 9110 §15.5.6
    /// requires one naming the methods the target does support).
    pub allow: Option<&'static str>,
}

impl HttpResponse {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type,
            body: body.into(),
            allow: None,
        }
    }

    /// An error response with a small JSON body
    /// (`{"error":{"status":N,"message":...}}`).
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":{\"status\":");
        body.push_str(&status.to_string());
        body.push_str(",\"message\":");
        rage_json::write_json_string(&mut body, message);
        body.push_str("}}");
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            allow: None,
        }
    }

    /// Attach an `Allow` header (for 405 responses).
    pub fn with_allow(mut self, methods: &'static str) -> Self {
        self.allow = Some(methods);
        self
    }

    /// Serialise the response (status line, headers, body) onto `writer`,
    /// closing the connection (`Connection: close`).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        self.write_to_with_connection(writer, false)
    }

    /// Serialise the response, advertising whether the server will keep the
    /// connection open for another request. Responses are always
    /// `Content-Length`-framed, so a keep-alive client knows exactly where
    /// each response ends.
    pub fn write_to_with_connection<W: Write>(
        &self,
        writer: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        if let Some(allow) = self.allow {
            write!(writer, "Allow: {allow}\r\n")?;
        }
        write!(writer, "\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

impl From<HttpError> for HttpResponse {
    fn from(err: HttpError) -> Self {
        HttpResponse::error(err.status, &err.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        parse_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_with_query() {
        let request =
            parse(b"GET /report?scenario=us_open&format=json HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/report");
        assert_eq!(request.query_param("scenario"), Some("us_open"));
        assert_eq!(request.query_param("format"), Some("json"));
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = parse(b"POST /ask HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"{\"a\":1}");
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let request = parse(b"GET /re%70ort?q=a+b%21&x=%C3%A9 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/report");
        assert_eq!(request.query_param("q"), Some("a b!"));
        assert_eq!(request.query_param("x"), Some("é"));
    }

    #[test]
    fn empty_connection_is_none_not_an_error() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn error_response_body_is_valid_json() {
        let response = HttpResponse::error(400, "weird \"quoted\" message\n");
        let value = rage_json::JsonValue::parse(std::str::from_utf8(&response.body).unwrap())
            .expect("error body parses");
        let error = value.get("error").unwrap();
        assert_eq!(error.get("status").and_then(|v| v.as_usize()), Some(400));
        assert_eq!(
            error.get("message").and_then(|v| v.as_str()),
            Some("weird \"quoted\" message\n")
        );
    }

    #[test]
    fn an_expired_deadline_is_408_even_with_bytes_available() {
        // The deadline is an overall wall-clock bound: once past it, the
        // parser stops consuming no matter how much input remains.
        let raw = b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n";
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let err = parse_request_with_deadline(&mut BufReader::new(&raw[..]), Some(expired))
            .expect_err("expired deadline must reject");
        assert_eq!(err.status, 408);

        // A deadline comfortably in the future changes nothing.
        let future = Instant::now() + std::time::Duration::from_secs(60);
        let request = parse_request_with_deadline(&mut BufReader::new(&raw[..]), Some(future))
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/scenarios");
    }

    #[test]
    fn expired_deadline_covers_the_body_read_too() {
        let raw = b"POST /ask HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let err = parse_request_with_deadline(&mut BufReader::new(&raw[..]), Some(expired))
            .expect_err("expired deadline must reject");
        assert_eq!(err.status, 408);
    }

    #[test]
    fn the_allow_header_serialises_on_405() {
        let mut out = Vec::new();
        HttpResponse::error(405, "method not allowed")
            .with_allow("GET")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{text}"
        );
        assert!(text.contains("Allow: GET\r\n"), "{text}");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_overrides() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: Keep-Alive, x\r\n\r\n", true),
        ];
        for (raw, expected) in cases {
            let request = parse(raw).unwrap().unwrap();
            assert_eq!(
                request.keep_alive,
                *expected,
                "{:?}",
                std::str::from_utf8(raw)
            );
        }
    }

    #[test]
    fn an_idle_timeout_before_any_byte_is_a_silent_close() {
        // A reader that times out immediately models a keep-alive connection
        // going quiet between requests: not an error, just done.
        struct IdleReader;
        impl std::io::Read for IdleReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "timed out",
                ))
            }
        }
        let result = parse_request(&mut BufReader::new(IdleReader)).unwrap();
        assert_eq!(result, None);

        // A timeout *mid-request* is still a hard 400: bytes were committed.
        struct TruncatingReader(&'static [u8]);
        impl std::io::Read for TruncatingReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "timed out",
                    ));
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let err = parse_request(&mut BufReader::new(TruncatingReader(b"GET /sce")))
            .expect_err("mid-request timeout must reject");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn conflict_status_has_a_reason_phrase() {
        assert_eq!(reason_phrase(409), "Conflict");
    }

    #[test]
    fn keep_alive_responses_advertise_the_connection_state() {
        let mut out = Vec::new();
        HttpResponse::ok("application/json", "{}")
            .write_to_with_connection(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");

        let mut out = Vec::new();
        HttpResponse::ok("application/json", "{}")
            .write_to_with_connection(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn responses_serialise_with_length_and_close() {
        let mut out = Vec::new();
        HttpResponse::ok("application/json", "{}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
