//! The `rage-server` binary: serve RAGE explanations over HTTP.
//!
//! ```text
//! rage-server [--addr HOST:PORT] [--threads N]
//! ```
//!
//! Boots the shared [`rage_report::Service`] (the same layer the `report` CLI
//! renders through), binds a [`rage_server::Server`] on `--addr`
//! (default `127.0.0.1:7343`) and serves until killed. See the crate docs of
//! [`rage_server`] for the endpoint table.

use std::process::ExitCode;
use std::sync::Arc;

use rage_report::Service;
use rage_server::{Server, ServerConfig};

fn usage() -> &'static str {
    "usage: rage-server [--addr HOST:PORT] [--threads N]\n\
     \n\
     Serves the RAGE explanation service over HTTP/1.1.\n\
     \n\
       --addr HOST:PORT  listen address (default 127.0.0.1:7343)\n\
       --threads N       connection worker threads (default 4)\n"
}

fn run(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7343".to_string();
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--addr needs a value".to_string())?;
                i += 2;
            }
            "--threads" => {
                let value = args
                    .get(i + 1)
                    .ok_or("--threads needs a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {value:?}"))?;
                if parsed == 0 {
                    return Err("--threads needs a positive integer, got 0".to_string());
                }
                config.threads = parsed;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    let service = Arc::new(Service::new());
    let server = Server::start(&addr, service, config).map_err(|err| err.to_string())?;
    println!("rage-server listening on http://{}", server.addr());
    println!("  try: curl http://{}/scenarios", server.addr());

    // Serve until the process is killed; the worker threads own the work.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("--help" | "-h" | "help")
    ) {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rage-server: {message}");
            ExitCode::FAILURE
        }
    }
}
