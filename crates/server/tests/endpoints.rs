//! End-to-end endpoint tests over a real socket: every response is produced by
//! a running [`Server`] and compared against the library oracles — the same
//! `scenarios::report_for` path the golden snapshots pin, and direct
//! [`Service`] calls for `/ask`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rage_core::explanation::ReportConfig;
use rage_json::JsonValue;
use rage_report::scenarios::{report_for, scenario_by_name, scenario_names};
use rage_report::{to_json, Service, MAX_SHARDS};
use rage_server::{Server, ServerConfig};

/// A split HTTP response: status code, header block, body bytes.
type Response = (u16, String, Vec<u8>);

/// One raw HTTP/1.1 exchange: write `request` bytes, read until the server
/// closes (it always sends `Connection: close`), split the response.
fn exchange(server: &Server, request: &[u8]) -> Response {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8(raw[..split].to_vec()).expect("headers are UTF-8");
    let body = raw[split + 4..].to_vec();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code is numeric");
    (status, head, body)
}

fn get(server: &Server, target: &str) -> Response {
    exchange(
        server,
        format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    )
}

fn post(server: &Server, target: &str, body: &str) -> Response {
    exchange(
        server,
        format!(
            "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn start_server() -> Server {
    Server::start(
        "127.0.0.1:0",
        Arc::new(Service::new()),
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// The acceptance criterion of the PR: the served JSON report is byte-identical
/// to the CLI/library rendering for EVERY registry scenario.
#[test]
fn served_report_json_is_byte_identical_to_the_cli_path_for_every_scenario() {
    let server = start_server();
    for name in scenario_names() {
        let (status, _, body) = get(&server, &format!("/report?scenario={name}&format=json"));
        assert_eq!(status, 200, "{name}");

        let scenario = scenario_by_name(name).expect(name);
        let oracle =
            to_json(&report_for(&scenario, &ReportConfig::default()).expect(name)).render();
        assert_eq!(
            body,
            oracle.as_bytes(),
            "{name}: served JSON differs from the library rendering"
        );
    }
}

#[test]
fn report_formats_and_shards_serve_the_library_renderings() {
    let server = start_server();
    let scenario = scenario_by_name("us_open").unwrap();
    let report = report_for(&scenario, &ReportConfig::default()).unwrap();

    let (status, head, body) = get(&server, "/report?scenario=us_open&format=md");
    assert_eq!(status, 200);
    assert!(head.contains("text/markdown"), "{head}");
    assert_eq!(body, rage_report::render_markdown(&report).as_bytes());

    let (status, head, body) = get(&server, "/report?scenario=us_open&format=html");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert_eq!(body, rage_report::render_html(&report).as_bytes());

    // Sharded retrieval serves the same bytes (rankings are bit-identical).
    let (_, _, single) = get(&server, "/report?scenario=us_open&format=json");
    let (status, _, sharded) = get(&server, "/report?scenario=us_open&format=json&shards=3");
    assert_eq!(status, 200);
    assert_eq!(single, sharded);

    // `us-open` normalises to `us_open` exactly like the CLI.
    let (status, _, dashed) = get(&server, "/report?scenario=us-open&format=json");
    assert_eq!(status, 200);
    assert_eq!(single, dashed);
}

#[test]
fn scenarios_endpoint_lists_the_whole_registry() {
    let server = start_server();
    let (status, head, body) = get(&server, "/scenarios");
    assert_eq!(status, 200);
    assert!(head.contains("application/json"), "{head}");
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).expect("valid JSON");
    let listed: Vec<&str> = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array")
        .iter()
        .map(|entry| entry.get("name").and_then(JsonValue::as_str).unwrap())
        .collect();
    assert_eq!(listed, scenario_names());
}

#[test]
fn index_page_links_every_scenario() {
    let server = start_server();
    let (status, head, body) = get(&server, "/");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    let html = std::str::from_utf8(&body).unwrap();
    for name in scenario_names() {
        assert!(
            html.contains(&format!("/report?scenario={name}&format=html")),
            "index page is missing {name}"
        );
    }
}

#[test]
fn ask_matches_a_direct_service_call() {
    let server = start_server();
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open?", "k": 3}"#,
    );
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).expect("valid JSON");

    let service = Service::new();
    let oracle = service
        .ask("us_open", "Who won the US Open?", Some(3))
        .unwrap();
    assert_eq!(
        doc.get("answer").and_then(JsonValue::as_str),
        Some(oracle.answer())
    );
    assert_eq!(doc.get("k").and_then(JsonValue::as_usize), Some(3));
    let sources = doc
        .get("sources")
        .and_then(JsonValue::as_array)
        .expect("sources array");
    assert_eq!(sources.len(), oracle.context.sources.len());
    for (served, expected) in sources.iter().zip(&oracle.context.sources) {
        assert_eq!(
            served.get("doc_id").and_then(JsonValue::as_str),
            Some(expected.doc_id.as_str())
        );
    }

    // Without "k" the scenario's default retrieval depth applies.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open?"}"#,
    );
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let default_k = scenario_by_name("us_open").unwrap().retrieval_k;
    assert_eq!(doc.get("k").and_then(JsonValue::as_usize), Some(default_k));
}

/// Concurrent asks coalesce into one `ask_many` round without changing any
/// answer: every response equals the unbatched oracle, and with a wide-open
/// admission window the burst lands in a shared batch.
#[test]
fn concurrent_asks_coalesce_and_stay_element_wise_identical() {
    let server = Arc::new(
        Server::start(
            "127.0.0.1:0",
            Arc::new(Service::new()),
            ServerConfig {
                threads: 8,
                ask_batch_window: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );

    const QUERIES: [&str; 6] = [
        "Who won the US Open?",
        "Who won the championship?",
        "When was the final played?",
        "Who lost the final?",
        "Who won the US Open?",
        "Which seed won?",
    ];
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|query| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let body = format!(r#"{{"scenario": "us_open", "query": {}, "k": 3}}"#, {
                    let mut quoted = String::new();
                    rage_json::write_json_string(&mut quoted, query);
                    quoted
                });
                post(&server, "/ask", &body)
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let service = Service::new();
    for (query, (status, _, body)) in QUERIES.iter().zip(&responses) {
        assert_eq!(*status, 200, "{query}");
        let doc = JsonValue::parse(std::str::from_utf8(body).unwrap()).unwrap();
        let oracle = service.ask("us_open", query, Some(3)).unwrap();
        assert_eq!(
            doc.get("answer").and_then(JsonValue::as_str),
            Some(oracle.answer()),
            "batched answer for {query:?} differs from the unbatched oracle"
        );
    }

    let stats = server.batch_stats();
    assert_eq!(stats.requests, QUERIES.len() as u64);
    assert!(
        stats.max_batch >= 2,
        "a 200ms admission window should coalesce a concurrent burst, stats: {stats:?}"
    );
    assert!(stats.batches < stats.requests);
}

#[test]
fn diff_endpoint_compares_two_report_documents() {
    let server = start_server();
    let scenario = scenario_by_name("us_open").unwrap();
    let report = report_for(&scenario, &ReportConfig::default()).unwrap();
    let doc = to_json(&report).render();

    let (status, _, body) = post(&server, "/diff", &format!(r#"{{"a": {doc}, "b": {doc}}}"#));
    assert_eq!(status, 200);
    let parsed = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        parsed.get("identical").and_then(JsonValue::as_bool),
        Some(true)
    );

    let other = to_json(
        &report_for(
            &scenario_by_name("timeline").unwrap(),
            &ReportConfig::default(),
        )
        .unwrap(),
    )
    .render();
    let (status, _, body) = post(
        &server,
        "/diff",
        &format!(r#"{{"a": {doc}, "b": {other}}}"#),
    );
    assert_eq!(status, 200);
    let parsed = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        parsed.get("identical").and_then(JsonValue::as_bool),
        Some(false)
    );

    let (status, _, _) = post(
        &server,
        "/diff",
        r#"{"a": {"bogus": 1}, "b": {"bogus": 2}}"#,
    );
    assert_eq!(status, 400);
}

/// Caller mistakes map onto 4xx — never 500, never a dropped connection.
#[test]
fn caller_mistakes_map_to_4xx() {
    let server = start_server();
    let cases: Vec<(&str, Response)> = vec![
        ("unknown scenario", get(&server, "/report?scenario=nope")),
        ("missing scenario", get(&server, "/report")),
        (
            "bad format",
            get(&server, "/report?scenario=us_open&format=pdf"),
        ),
        (
            "shards=0",
            get(&server, "/report?scenario=us_open&shards=0"),
        ),
        (
            "shards junk",
            get(&server, "/report?scenario=us_open&shards=two"),
        ),
        (
            "shards beyond the cap (would otherwise size allocations/threads)",
            get(&server, "/report?scenario=us_open&shards=999999999999"),
        ),
        (
            "shards just over the cap",
            get(
                &server,
                &format!("/report?scenario=us_open&shards={}", MAX_SHARDS + 1),
            ),
        ),
        ("unknown endpoint", get(&server, "/nope")),
        (
            "ask k=0 is invalid-argument, not empty-context",
            post(
                &server,
                "/ask",
                r#"{"scenario": "us_open", "query": "q", "k": 0}"#,
            ),
        ),
        (
            "ask unknown scenario",
            post(&server, "/ask", r#"{"scenario": "nope", "query": "q"}"#),
        ),
        ("ask non-JSON body", post(&server, "/ask", "not json")),
        (
            "ask missing query",
            post(&server, "/ask", r#"{"scenario": "us_open"}"#),
        ),
        (
            "ask non-integer k",
            post(
                &server,
                "/ask",
                r#"{"scenario": "us_open", "query": "q", "k": 1.5}"#,
            ),
        ),
        ("diff missing sides", post(&server, "/diff", r#"{"a": 1}"#)),
    ];
    for (label, (status, _, body)) in &cases {
        assert!(
            (400..500).contains(status),
            "{label}: expected 4xx, got {status}"
        );
        // Every error body is machine-readable JSON with the status mirrored.
        let doc = JsonValue::parse(std::str::from_utf8(body).unwrap())
            .unwrap_or_else(|err| panic!("{label}: error body is not JSON: {err}"));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("status"))
                .and_then(JsonValue::as_usize),
            Some(*status as usize),
            "{label}"
        );
    }

    let (status, _, _) = exchange(&server, b"DELETE /report HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    // Wrong method on a *known* path is 405 + Allow, not a misleading 404.
    let (status, head, _) = exchange(
        &server,
        b"POST /report HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "{head}");
    let (status, head, _) = get(&server, "/ask");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");

    // k=0 must carry the invalid-argument wording from the engine.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "q", "k": 0}"#,
    );
    assert_eq!(status, 400);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("invalid argument"), "{text}");
    assert!(
        !text.contains("empty"),
        "k=0 must not read as empty-context: {text}"
    );
}

/// The report cache makes the second identical request a hit, visible in
/// `/stats`, and repeat requests stay byte-identical.
#[test]
fn stats_reflect_the_report_cache() {
    let server = start_server();
    let (_, _, first) = get(&server, "/report?scenario=timeline&format=json");
    let (_, _, second) = get(&server, "/report?scenario=timeline&format=json");
    assert_eq!(first, second);

    let (status, _, body) = get(&server, "/stats");
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let cache = doc.get("report_cache").expect("report_cache member");
    assert_eq!(cache.get("misses").and_then(JsonValue::as_usize), Some(1));
    assert!(cache.get("hits").and_then(JsonValue::as_usize).unwrap() >= 1);
}
