//! End-to-end endpoint tests over a real socket: every response is produced by
//! a running [`Server`] and compared against the library oracles — the same
//! `scenarios::report_for` path the golden snapshots pin, and direct
//! [`Service`] calls for `/ask`.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rage_core::explanation::ReportConfig;
use rage_core::RageReport;
use rage_json::JsonValue;
use rage_report::scenarios::{report_for, scenario_by_name, scenario_names};
use rage_report::{to_json, Service, MAX_SHARDS};
use rage_server::{Server, ServerConfig};

/// A split HTTP response: status code, header block, body bytes.
type Response = (u16, String, Vec<u8>);

/// One raw HTTP/1.1 exchange on a fresh connection: write `request` bytes,
/// shut the write side down (so the server sees EOF instead of waiting out
/// the keep-alive idle timeout), read until the server closes, split the
/// response. Persistent-connection behaviour has its own framed-read tests.
fn exchange(server: &Server, request: &[u8]) -> Response {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("write request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8(raw[..split].to_vec()).expect("headers are UTF-8");
    let body = raw[split + 4..].to_vec();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code is numeric");
    (status, head, body)
}

/// Read exactly one `Content-Length`-framed response off a persistent
/// connection, leaving the connection usable for the next request.
fn read_framed(reader: &mut BufReader<TcpStream>) -> Response {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        reader.read_exact(&mut byte).expect("read header byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head[..head.len() - 4].to_vec()).expect("headers are UTF-8");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code is numeric");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric Content-Length"))
        })
        .expect("response has a Content-Length");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read framed body");
    (status, head, body)
}

/// The provenance the service stamps into every served report of `name` at
/// its current corpus version — the library oracle (`report_for`) leaves the
/// member empty, so byte-identity tests add it before comparing.
fn stamp_provenance(report: &mut RageReport, name: &str) {
    let service = Service::new();
    report.corpus = Some(service.corpus_provenance(name).expect(name));
}

fn get(server: &Server, target: &str) -> Response {
    exchange(
        server,
        format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    )
}

fn post(server: &Server, target: &str, body: &str) -> Response {
    exchange(
        server,
        format!(
            "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn start_server() -> Server {
    Server::start(
        "127.0.0.1:0",
        Arc::new(Service::new()),
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// The acceptance criterion of the PR: the served JSON report is byte-identical
/// to the CLI/library rendering for EVERY registry scenario.
#[test]
fn served_report_json_is_byte_identical_to_the_cli_path_for_every_scenario() {
    let server = start_server();
    for name in scenario_names() {
        let (status, _, body) = get(&server, &format!("/report?scenario={name}&format=json"));
        assert_eq!(status, 200, "{name}");

        let scenario = scenario_by_name(name).expect(name);
        let mut report = report_for(&scenario, &ReportConfig::default()).expect(name);
        stamp_provenance(&mut report, name);
        let oracle = to_json(&report).render();
        assert_eq!(
            body,
            oracle.as_bytes(),
            "{name}: served JSON differs from the library rendering"
        );
    }
}

#[test]
fn report_formats_and_shards_serve_the_library_renderings() {
    let server = start_server();
    let scenario = scenario_by_name("us_open").unwrap();
    let mut report = report_for(&scenario, &ReportConfig::default()).unwrap();
    stamp_provenance(&mut report, "us_open");

    let (status, head, body) = get(&server, "/report?scenario=us_open&format=md");
    assert_eq!(status, 200);
    assert!(head.contains("text/markdown"), "{head}");
    assert_eq!(body, rage_report::render_markdown(&report).as_bytes());

    let (status, head, body) = get(&server, "/report?scenario=us_open&format=html");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert_eq!(body, rage_report::render_html(&report).as_bytes());

    // Sharded retrieval serves the same bytes (rankings are bit-identical).
    let (_, _, single) = get(&server, "/report?scenario=us_open&format=json");
    let (status, _, sharded) = get(&server, "/report?scenario=us_open&format=json&shards=3");
    assert_eq!(status, 200);
    assert_eq!(single, sharded);

    // `us-open` normalises to `us_open` exactly like the CLI.
    let (status, _, dashed) = get(&server, "/report?scenario=us-open&format=json");
    assert_eq!(status, 200);
    assert_eq!(single, dashed);
}

#[test]
fn scenarios_endpoint_lists_the_whole_registry() {
    let server = start_server();
    let (status, head, body) = get(&server, "/scenarios");
    assert_eq!(status, 200);
    assert!(head.contains("application/json"), "{head}");
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).expect("valid JSON");
    let listed: Vec<&str> = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array")
        .iter()
        .map(|entry| entry.get("name").and_then(JsonValue::as_str).unwrap())
        .collect();
    assert_eq!(listed, scenario_names());
}

#[test]
fn index_page_links_every_scenario() {
    let server = start_server();
    let (status, head, body) = get(&server, "/");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    let html = std::str::from_utf8(&body).unwrap();
    for name in scenario_names() {
        assert!(
            html.contains(&format!("/report?scenario={name}&format=html")),
            "index page is missing {name}"
        );
    }
}

#[test]
fn ask_matches_a_direct_service_call() {
    let server = start_server();
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open?", "k": 3}"#,
    );
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).expect("valid JSON");

    let service = Service::new();
    let oracle = service
        .ask("us_open", "Who won the US Open?", Some(3))
        .unwrap();
    assert_eq!(
        doc.get("answer").and_then(JsonValue::as_str),
        Some(oracle.answer())
    );
    assert_eq!(doc.get("k").and_then(JsonValue::as_usize), Some(3));
    let sources = doc
        .get("sources")
        .and_then(JsonValue::as_array)
        .expect("sources array");
    assert_eq!(sources.len(), oracle.context.sources.len());
    for (served, expected) in sources.iter().zip(&oracle.context.sources) {
        assert_eq!(
            served.get("doc_id").and_then(JsonValue::as_str),
            Some(expected.doc_id.as_str())
        );
    }

    // Without "k" the scenario's default retrieval depth applies.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open?"}"#,
    );
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let default_k = scenario_by_name("us_open").unwrap().retrieval_k;
    assert_eq!(doc.get("k").and_then(JsonValue::as_usize), Some(default_k));
}

/// Concurrent asks coalesce into one `ask_many` round without changing any
/// answer: every response equals the unbatched oracle, and with a wide-open
/// admission window the burst lands in a shared batch.
#[test]
fn concurrent_asks_coalesce_and_stay_element_wise_identical() {
    let server = Arc::new(
        Server::start(
            "127.0.0.1:0",
            Arc::new(Service::new()),
            ServerConfig {
                threads: 8,
                ask_batch_window: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );

    const QUERIES: [&str; 6] = [
        "Who won the US Open?",
        "Who won the championship?",
        "When was the final played?",
        "Who lost the final?",
        "Who won the US Open?",
        "Which seed won?",
    ];
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|query| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let body = format!(r#"{{"scenario": "us_open", "query": {}, "k": 3}}"#, {
                    let mut quoted = String::new();
                    rage_json::write_json_string(&mut quoted, query);
                    quoted
                });
                post(&server, "/ask", &body)
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let service = Service::new();
    for (query, (status, _, body)) in QUERIES.iter().zip(&responses) {
        assert_eq!(*status, 200, "{query}");
        let doc = JsonValue::parse(std::str::from_utf8(body).unwrap()).unwrap();
        let oracle = service.ask("us_open", query, Some(3)).unwrap();
        assert_eq!(
            doc.get("answer").and_then(JsonValue::as_str),
            Some(oracle.answer()),
            "batched answer for {query:?} differs from the unbatched oracle"
        );
    }

    let stats = server.batch_stats();
    assert_eq!(stats.requests, QUERIES.len() as u64);
    assert!(
        stats.max_batch >= 2,
        "a 200ms admission window should coalesce a concurrent burst, stats: {stats:?}"
    );
    assert!(stats.batches < stats.requests);
}

#[test]
fn diff_endpoint_compares_two_report_documents() {
    let server = start_server();
    let scenario = scenario_by_name("us_open").unwrap();
    let report = report_for(&scenario, &ReportConfig::default()).unwrap();
    let doc = to_json(&report).render();

    let (status, _, body) = post(&server, "/diff", &format!(r#"{{"a": {doc}, "b": {doc}}}"#));
    assert_eq!(status, 200);
    let parsed = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        parsed.get("identical").and_then(JsonValue::as_bool),
        Some(true)
    );

    let other = to_json(
        &report_for(
            &scenario_by_name("timeline").unwrap(),
            &ReportConfig::default(),
        )
        .unwrap(),
    )
    .render();
    let (status, _, body) = post(
        &server,
        "/diff",
        &format!(r#"{{"a": {doc}, "b": {other}}}"#),
    );
    assert_eq!(status, 200);
    let parsed = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        parsed.get("identical").and_then(JsonValue::as_bool),
        Some(false)
    );

    let (status, _, _) = post(
        &server,
        "/diff",
        r#"{"a": {"bogus": 1}, "b": {"bogus": 2}}"#,
    );
    assert_eq!(status, 400);
}

/// Caller mistakes map onto 4xx — never 500, never a dropped connection.
#[test]
fn caller_mistakes_map_to_4xx() {
    let server = start_server();
    let cases: Vec<(&str, Response)> = vec![
        ("unknown scenario", get(&server, "/report?scenario=nope")),
        ("missing scenario", get(&server, "/report")),
        (
            "bad format",
            get(&server, "/report?scenario=us_open&format=pdf"),
        ),
        (
            "shards=0",
            get(&server, "/report?scenario=us_open&shards=0"),
        ),
        (
            "shards junk",
            get(&server, "/report?scenario=us_open&shards=two"),
        ),
        (
            "shards beyond the cap (would otherwise size allocations/threads)",
            get(&server, "/report?scenario=us_open&shards=999999999999"),
        ),
        (
            "shards just over the cap",
            get(
                &server,
                &format!("/report?scenario=us_open&shards={}", MAX_SHARDS + 1),
            ),
        ),
        ("unknown endpoint", get(&server, "/nope")),
        (
            "ask k=0 is invalid-argument, not empty-context",
            post(
                &server,
                "/ask",
                r#"{"scenario": "us_open", "query": "q", "k": 0}"#,
            ),
        ),
        (
            "ask unknown scenario",
            post(&server, "/ask", r#"{"scenario": "nope", "query": "q"}"#),
        ),
        ("ask non-JSON body", post(&server, "/ask", "not json")),
        (
            "ask missing query",
            post(&server, "/ask", r#"{"scenario": "us_open"}"#),
        ),
        (
            "ask non-integer k",
            post(
                &server,
                "/ask",
                r#"{"scenario": "us_open", "query": "q", "k": 1.5}"#,
            ),
        ),
        ("diff missing sides", post(&server, "/diff", r#"{"a": 1}"#)),
    ];
    for (label, (status, _, body)) in &cases {
        assert!(
            (400..500).contains(status),
            "{label}: expected 4xx, got {status}"
        );
        // Every error body is machine-readable JSON with the status mirrored.
        let doc = JsonValue::parse(std::str::from_utf8(body).unwrap())
            .unwrap_or_else(|err| panic!("{label}: error body is not JSON: {err}"));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("status"))
                .and_then(JsonValue::as_usize),
            Some(*status as usize),
            "{label}"
        );
    }

    let (status, _, _) = exchange(&server, b"DELETE /report HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    // Wrong method on a *known* path is 405 + Allow, not a misleading 404.
    let (status, head, _) = exchange(
        &server,
        b"POST /report HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "{head}");
    let (status, head, _) = get(&server, "/ask");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");

    // k=0 must carry the invalid-argument wording from the engine.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "q", "k": 0}"#,
    );
    assert_eq!(status, 400);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("invalid argument"), "{text}");
    assert!(
        !text.contains("empty"),
        "k=0 must not read as empty-context: {text}"
    );
}

/// HTTP/1.1 keep-alive: one connection serves many requests, `Connection:
/// close` and the per-connection request cap end it, and an idle connection
/// is closed silently after the keep-alive timeout.
#[test]
fn persistent_connections_reuse_one_socket_until_close_or_cap() {
    let server = start_server();
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..3 {
        (&stream)
            .write_all(b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_framed(&mut reader);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert!(!body.is_empty());
    }
    // `Connection: close` is honoured: the response says close, then EOF.
    (&stream)
        .write_all(b"GET /scenarios HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_framed(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // All four requests rode one accepted connection.
    assert_eq!(server.connections_accepted(), 1);

    let capped = Server::start(
        "127.0.0.1:0",
        Arc::new(Service::new()),
        ServerConfig {
            threads: 2,
            max_requests_per_connection: 2,
            keep_alive_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    // The per-connection request cap closes the connection at the limit.
    let stream = TcpStream::connect(capped.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream)
        .write_all(b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, head, _) = read_framed(&mut reader);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    (&stream)
        .write_all(b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, head, _) = read_framed(&mut reader);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // An idle keep-alive connection is closed silently after the timeout —
    // no 4xx bytes, just EOF.
    let stream = TcpStream::connect(capped.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream)
        .write_all(b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, head, _) = read_framed(&mut reader);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "idle close must not write an error response: {:?}",
        String::from_utf8_lossy(&rest)
    );
}

/// The ISSUE acceptance criterion: mutating a corpus over HTTP invalidates
/// the cached `/report` (old bytes ≠ new bytes) with the version visible in
/// `/stats` and in the report's provenance — plus the typed 409/404 edges of
/// the mutation API and `GET /diff` across versions.
#[test]
fn corpus_mutation_over_http_invalidates_the_served_report() {
    let server = start_server();
    let (status, _, before) = get(&server, "/report?scenario=us_open&format=json");
    assert_eq!(status, 200);
    let before_doc = JsonValue::parse(std::str::from_utf8(&before).unwrap()).unwrap();
    let version_of = |doc: &JsonValue| {
        doc.get("corpus")
            .and_then(|c| c.get("version"))
            .and_then(JsonValue::as_usize)
    };
    assert_eq!(version_of(&before_doc), Some(1));

    let (_, _, stats) = get(&server, "/stats");
    let stats_doc = JsonValue::parse(std::str::from_utf8(&stats).unwrap()).unwrap();
    let us_open_stats = stats_doc
        .get("corpora")
        .and_then(|c| c.get("us_open"))
        .expect("us_open in /stats corpora");
    assert_eq!(
        us_open_stats.get("version").and_then(JsonValue::as_usize),
        Some(1)
    );
    let fingerprint_v1 = us_open_stats
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .expect("fingerprint in /stats")
        .to_string();

    // Add a 2024 champion: the retrieval pool and the answer both change.
    let add_body = r#"{"scenario": "us_open", "doc": {"id": "us-open-2024", "title": "US Open 2024", "text": "Aryna Sabalenka won the 2024 US Open women's singles championship, defeating Jessica Pegula in the final.", "fields": {"year": "2024", "champion": "Aryna Sabalenka"}}}"#;
    let (status, _, response) = post(&server, "/corpus/docs", add_body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&response));
    let mutation_doc = JsonValue::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(
        mutation_doc.get("mode").and_then(JsonValue::as_str),
        Some("add")
    );
    assert_eq!(
        mutation_doc.get("doc_id").and_then(JsonValue::as_str),
        Some("us-open-2024")
    );
    assert_eq!(version_of(&mutation_doc), Some(2));

    // Adding the same id again is a typed conflict, not a worker panic.
    let (status, _, body) = post(&server, "/corpus/docs", add_body);
    assert_eq!(status, 409, "{}", String::from_utf8_lossy(&body));
    let conflict = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        conflict
            .get("error")
            .and_then(|e| e.get("status"))
            .and_then(JsonValue::as_usize),
        Some(409)
    );

    // The cached report was invalidated: new bytes, version-2 provenance.
    let (status, _, after) = get(&server, "/report?scenario=us_open&format=json");
    assert_eq!(status, 200);
    assert_ne!(before, after, "stale report bytes served after a mutation");
    let after_doc = JsonValue::parse(std::str::from_utf8(&after).unwrap()).unwrap();
    assert_eq!(version_of(&after_doc), Some(2));

    // /stats reflects the new version and a moved fingerprint.
    let (_, _, stats) = get(&server, "/stats");
    let stats_doc = JsonValue::parse(std::str::from_utf8(&stats).unwrap()).unwrap();
    let us_open_stats = stats_doc
        .get("corpora")
        .and_then(|c| c.get("us_open"))
        .expect("us_open in /stats corpora");
    assert_eq!(
        us_open_stats.get("version").and_then(JsonValue::as_usize),
        Some(2)
    );
    assert_ne!(
        us_open_stats.get("fingerprint").and_then(JsonValue::as_str),
        Some(fingerprint_v1.as_str())
    );

    // GET /diff spans the two corpus versions through the report cache.
    let (status, _, body) = get(&server, "/diff?scenario=us_open&from=1&to=2");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let diff_doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        diff_doc.get("identical").and_then(JsonValue::as_bool),
        Some(false)
    );
    let (status, _, body) = get(&server, "/diff?scenario=us_open&from=2&to=2");
    assert_eq!(status, 200);
    let diff_doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        diff_doc.get("identical").and_then(JsonValue::as_bool),
        Some(true)
    );

    // Unknown versions and malformed parameters are 4xx, never 500.
    let (status, _, _) = get(&server, "/diff?scenario=us_open&from=9&to=2");
    assert_eq!(status, 404);
    let (status, _, _) = get(&server, "/diff?scenario=us_open&from=one&to=2");
    assert_eq!(status, 400);
    let (status, _, _) = get(&server, "/diff?scenario=us_open&from=1");
    assert_eq!(status, 400);

    // Updating an unknown id is 404; so is deleting one.
    let (status, _, _) = post(
        &server,
        "/corpus/docs",
        r#"{"scenario": "us_open", "mode": "update", "doc": {"id": "nope", "text": "x"}}"#,
    );
    assert_eq!(status, 404);
    let (status, _, _) = exchange(
        &server,
        b"DELETE /corpus/docs/nope?scenario=us_open HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 404);

    // DELETE removes the document and bumps the version again.
    let (status, _, body) = exchange(
        &server,
        b"DELETE /corpus/docs/us-open-2024?scenario=us_open HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let delete_doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        delete_doc.get("removed").and_then(JsonValue::as_str),
        Some("us-open-2024")
    );
    assert_eq!(version_of(&delete_doc), Some(3));

    // Wrong methods on the new paths are 405 + Allow, not 404.
    let (status, head, _) = get(&server, "/corpus/docs");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");
    let (status, head, _) = get(&server, "/corpus/docs/us-open-2024");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: DELETE"), "{head}");
    let (status, head, _) = exchange(&server, b"DELETE /diff HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET, POST"), "{head}");
}

/// The report cache makes the second identical request a hit, visible in
/// `/stats`, and repeat requests stay byte-identical.
#[test]
fn stats_reflect_the_report_cache() {
    let server = start_server();
    let (_, _, first) = get(&server, "/report?scenario=timeline&format=json");
    let (_, _, second) = get(&server, "/report?scenario=timeline&format=json");
    assert_eq!(first, second);

    let (status, _, body) = get(&server, "/stats");
    assert_eq!(status, 200);
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let cache = doc.get("report_cache").expect("report_cache member");
    assert_eq!(cache.get("misses").and_then(JsonValue::as_usize), Some(1));
    assert!(cache.get("hits").and_then(JsonValue::as_usize).unwrap() >= 1);
}

/// `deadline_ms=` turns `/report` into an anytime request: a pre-expired
/// deadline still answers 200 with an explicit `completeness` block, the
/// exact report stays byte-identical before and after the anytime traffic
/// (the caches are keyed apart), and a malformed deadline is the caller's
/// fault, not the server's.
#[test]
fn report_deadlines_bound_work_without_poisoning_the_exact_cache() {
    let server = start_server();

    // Exact first, so the exact cache is warm before any anytime request.
    let (status, _, exact_before) = get(&server, "/report?scenario=us_open&format=json");
    assert_eq!(status, 200);

    // A deadline that expired before the searches even started: still a 200,
    // and the document says out loud which sections were cut short.
    let (status, head, body) = get(
        &server,
        "/report?scenario=us_open&format=json&deadline_ms=0",
    );
    assert_eq!(status, 200, "{head}");
    let doc = JsonValue::parse(std::str::from_utf8(&body).unwrap()).expect("anytime JSON parses");
    let block = doc
        .get("completeness")
        .expect("pre-expired deadline must surface a completeness block");
    let kind = block
        .get("top_down")
        .and_then(|m| m.get("kind"))
        .and_then(JsonValue::as_str);
    assert_eq!(kind, Some("deadline_truncated"));

    // A generous deadline completes everything: no completeness block, and
    // the bytes match the exhaustive rendering exactly.
    let (status, _, relaxed) = get(
        &server,
        "/report?scenario=us_open&format=json&deadline_ms=600000",
    );
    assert_eq!(status, 200);
    assert_eq!(relaxed, exact_before);

    // The exact cache never saw any of that.
    let (status, _, exact_after) = get(&server, "/report?scenario=us_open&format=json");
    assert_eq!(status, 200);
    assert_eq!(exact_after, exact_before);

    // Malformed deadlines are 400s.
    for target in [
        "/report?scenario=us_open&format=json&deadline_ms=abc",
        "/report?scenario=us_open&format=json&deadline_ms=-1",
        "/report?scenario=us_open&format=json&deadline_ms=",
    ] {
        let (status, _, body) = get(&server, target);
        assert_eq!(status, 400, "{target}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("deadline_ms"), "{target}: {text}");
    }
}

/// `/ask` honours a caller deadline: a generous one answers exactly like an
/// undeadlined ask, an already-expired one is a 408 (the batch keeps running
/// server-side), and the server stays healthy either way.
#[test]
fn ask_deadlines_time_out_without_wedging_the_server() {
    let server = start_server();

    // Pre-expired: the caller stops waiting immediately. The dispatcher's
    // admission window alone outlasts a zero deadline, so this cannot race.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open 2023?", "deadline_ms": 0}"#,
    );
    assert_eq!(status, 408);
    assert!(
        String::from_utf8(body).unwrap().contains("deadline"),
        "408 body names the deadline"
    );

    // The abandoned batch completed server-side; a generous deadline now
    // matches the undeadlined answer byte for byte.
    let (status, _, plain) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open 2023?"}"#,
    );
    assert_eq!(status, 200);
    let (status, _, bounded) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won the US Open 2023?", "deadline_ms": 600000}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(bounded, plain);

    // Malformed deadline in the body: caller's fault.
    let (status, _, body) = post(
        &server,
        "/ask",
        r#"{"scenario": "us_open", "query": "Who won?", "deadline_ms": "soon"}"#,
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("deadline_ms"));
}
