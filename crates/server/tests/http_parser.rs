//! Adversarial HTTP parser tests, in the spirit of the JSON crate's
//! depth-bound test: every malformed, truncated, oversized or hostile input
//! must map to a clean 4xx/5xx — never a panic, never a hung or poisoned
//! worker. The first half drives [`parse_request`] directly; the second half
//! sends hostile bytes at a live [`Server`] and proves it keeps serving.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rage_report::Service;
use rage_server::http::{
    parse_request, HttpError, HttpRequest, MAX_BODY_BYTES, MAX_HEADERS, MAX_REQUEST_LINE,
};
use rage_server::{Server, ServerConfig};

fn parse(raw: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
    parse_request(&mut BufReader::new(raw))
}

fn status_of(raw: &[u8]) -> u16 {
    parse(raw).expect_err("input should be rejected").status
}

#[test]
fn oversized_request_line_is_414() {
    let long_target = "a".repeat(MAX_REQUEST_LINE + 10);
    let raw = format!("GET /{long_target} HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(raw.as_bytes()), 414);
}

#[test]
fn oversized_header_blocks_are_431() {
    // One giant header line.
    let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "v".repeat(20 * 1024));
    assert_eq!(status_of(raw.as_bytes()), 431);

    // Too many individually-small headers.
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..(MAX_HEADERS + 5) {
        raw.push_str(&format!("X-H{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    assert_eq!(status_of(raw.as_bytes()), 431);
}

#[test]
fn truncated_requests_are_400() {
    // Stream ends mid-request-line, mid-header and mid-body.
    assert_eq!(status_of(b"GET /scenarios HT"), 400);
    assert_eq!(status_of(b"GET / HTTP/1.1\r\nHost: x"), 400);
    assert_eq!(status_of(b"GET / HTTP/1.1\r\nHost: x\r\n"), 400); // no blank line
    assert_eq!(
        status_of(b"POST /ask HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"a\":"),
        400
    );
}

#[test]
fn malformed_methods_and_request_lines_are_400() {
    assert_eq!(status_of(b"G@T / HTTP/1.1\r\n\r\n"), 400); // non-token byte
    assert_eq!(status_of(b"GET  / HTTP/1.1\r\n\r\n"), 400); // double space
    assert_eq!(status_of(b"GET / HTTP/1.1 extra\r\n\r\n"), 400); // 4 words
    assert_eq!(status_of(b"/ HTTP/1.1\r\n\r\n"), 400); // missing method
    assert_eq!(status_of(b"\r\n\r\n"), 400); // empty request line
    assert_eq!(status_of(b"GET http://evil/ HTTP/1.1\r\n\r\n"), 400); // absolute-form
    assert_eq!(status_of(b"GET /\xfe\xff HTTP/1.1\r\n\r\n"), 400); // raw non-UTF-8 bytes
}

#[test]
fn unsupported_protocol_features_get_descriptive_statuses() {
    assert_eq!(status_of(b"GET / HTTP/2\r\n\r\n"), 505);
    assert_eq!(status_of(b"GET / SPDY/3\r\n\r\n"), 505);
    assert_eq!(
        status_of(b"POST /ask HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
        501
    );
}

#[test]
fn hostile_content_lengths_are_rejected() {
    for bad in ["abc", "-1", "1e3", "18446744073709551617", "1,2"] {
        let raw = format!("POST /ask HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
        assert_eq!(status_of(raw.as_bytes()), 400, "Content-Length: {bad}");
    }
    let raw = format!(
        "POST /ask HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert_eq!(status_of(raw.as_bytes()), 413);
}

#[test]
fn malformed_percent_escapes_are_400() {
    assert_eq!(status_of(b"GET /%zz HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(status_of(b"GET /x?a=%2 HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(status_of(b"GET /%ff HTTP/1.1\r\n\r\n"), 400); // not UTF-8
}

/// Deterministic fuzz sweep: a valid POST truncated at *every* byte boundary
/// must parse, cleanly EOF or error — never panic. (Truncation is the
/// mutation a TCP peer can always produce.)
#[test]
fn every_truncation_of_a_valid_request_is_handled() {
    let full = b"POST /ask?x=a%20b HTTP/1.1\r\nHost: t\r\nContent-Length: 17\r\n\r\n{\"scenario\":\"x\"}\n";
    for cut in 0..full.len() {
        match parse(&full[..cut]) {
            Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
            Ok(Some(_)) => panic!("truncated prefix of length {cut} parsed as complete"),
            Err(err) => assert!(
                (400..=505).contains(&err.status),
                "cut {cut}: status {}",
                err.status
            ),
        }
    }
    assert!(parse(full).unwrap().is_some());
}

/// Deterministic fuzz sweep #2: flip each byte of a valid request through a
/// seeded xorshift and require a non-panicking outcome every time.
#[test]
fn byte_flipped_requests_never_panic() {
    let full = b"GET /report?scenario=us_open&format=json HTTP/1.1\r\nHost: t\r\n\r\n".to_vec();
    let mut state: u64 = 0x9e3779b97f4a7c15;
    for position in 0..full.len() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mut mutated = full.clone();
        mutated[position] ^= (state as u8) | 1; // always an actual flip
        let _ = parse(&mutated); // any Ok/Err is fine; a panic fails the test
    }
}

// ---------------------------------------------------------------------------
// Live-server robustness: hostile bytes over a real socket.
// ---------------------------------------------------------------------------

/// Fire raw bytes at the server. Status 0 means the connection died without a
/// readable response (e.g. a TCP reset after the server rejects an oversized
/// request mid-upload and closes with bytes still in flight) — acceptable for
/// hostile input, as long as the server keeps serving afterwards.
fn send_raw(server: &Server, raw: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() && response.is_empty() {
        return (0, response);
    }
    let head = String::from_utf8_lossy(&response);
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

#[test]
fn hostile_requests_leave_the_server_serving() {
    let server = Server::start(
        "127.0.0.1:0",
        Arc::new(Service::new()),
        ServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let hostile: Vec<Vec<u8>> = vec![
        b"\x00\x01\x02\x03garbage\xff\xfe".to_vec(),
        b"GET ../../etc/passwd HTTP/1.1\r\n\r\n".to_vec(), // non-origin-form traversal
        format!("GET /{} HTTP/1.1\r\n\r\n", "A".repeat(MAX_REQUEST_LINE * 2)).into_bytes(),
        b"POST /ask HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort".to_vec(), // truncated body
        b"POST /ask HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"FROB / HTTP/1.1\r\n\r\n".to_vec(), // valid token, unknown method
        b"".to_vec(),                        // connect-and-hang-up
    ];
    for raw in &hostile {
        let (status, _) = send_raw(&server, raw);
        assert!(
            status == 0 || (400..=505).contains(&status),
            "hostile input answered with {status}"
        );
    }

    // Path traversal *in query parameters* is data, not a path: it reaches the
    // registry lookup and fails as an unknown scenario, touching no filesystem.
    for target in [
        "/report?scenario=../../etc/passwd",
        "/report?scenario=..%2F..%2Fetc%2Fpasswd",
        "/report?scenario=us_open%00&format=json",
    ] {
        let (status, body) = send_raw(
            &server,
            format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
        );
        assert_eq!(status, 404, "{target}");
        assert!(
            String::from_utf8_lossy(&body).contains("unknown scenario"),
            "{target}"
        );
    }

    // And after all of the above, a well-formed request still succeeds.
    let (status, body) = send_raw(&server, b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("us_open"));
}

/// A slow-loris client — trickling bytes steadily so every individual read
/// stays under the socket timeout — is cut off by the overall request
/// deadline with a 408, and the worker it was holding goes straight back to
/// serving.
#[test]
fn trickled_requests_hit_the_request_deadline() {
    let server = Server::start(
        "127.0.0.1:0",
        Arc::new(Service::new()),
        ServerConfig {
            threads: 1, // one worker: if the loris held it, nothing else would ever be served
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Keep each gap well under the read timeout but run past the deadline.
    for chunk in [&b"GET /scena"[..], b"rios", b" HT"] {
        let _ = stream.write_all(chunk);
        std::thread::sleep(Duration::from_millis(150));
    }
    let _ = stream.write_all(b"TP/1.1\r\nHost: t\r\n\r\n");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let head = String::from_utf8_lossy(&response);
    assert!(head.starts_with("HTTP/1.1 408"), "{head}");

    // The lone worker is free again: a prompt request succeeds immediately.
    let (status, body) = send_raw(&server, b"GET /scenarios HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("us_open"));
}
