//! # rage-datasets
//!
//! Corpora and questions for the RAGE reproduction.
//!
//! The RAGE demonstration retrieves knowledge sources from locally-indexed collections
//! about professional tennis. The salient *content* of those sources is fully specified
//! by the paper's three use cases (§III), which is what the generators in this crate
//! encode:
//!
//! * [`big_three`] — Use case #1: rankings of Djokovic, Federer and Nadal under
//!   different metrics, leading to an ambiguous "who is the best" answer.
//! * [`us_open`] — Use case #2: US Open women's champions of different years, where an
//!   out-of-date source can mislead the model.
//! * [`timeline`] — Use case #3: one Player-of-the-Year document per season 2010–2019,
//!   forming a timeline to count over.
//! * [`synthetic`] — parameterised corpus generators used by the scaling benchmarks
//!   (E5–E10) and property tests.
//! * [`scenario`] — the [`Scenario`](scenario::Scenario) bundle tying a corpus to its
//!   question, retrieval depth, prior knowledge and expected behaviour.
//!
//! Beyond the paper's use cases, three stress scenarios grow the collection past the
//! original demos:
//!
//! * [`large_corpus`] — a seeded ≥2k-document needle-in-a-haystack corpus, the standard
//!   workload for sharded retrieval equivalence checks and benchmarks.
//! * [`multi_hop`] — a question whose answer composes two documents (tournament result
//!   + champion→coach link), with a distractor coach ready to take over.
//! * [`adversarial`] — near-duplicate documents asserting contradictory facts, with
//!   exactly tied BM25 scores.
//! * [`live_updates`] — a champions corpus paired with a scripted mutation sequence
//!   (breaking result, correction, retraction); the standard fixture for live-corpus
//!   and cache-invalidation tests.
//! * [`entity_registry`] — a ROR-shaped organisation registry (canonical names,
//!   aliases, acronyms, registry identifiers) with batch affiliation-resolution
//!   lookups; the 100k-document workload of the retrieval benchmark's dynamic-pruning
//!   bucket and the loadtest's entity-resolution rotation.
//!
//! ## The scenario registry
//!
//! All of the above are registered in the [`ScenarioRegistry`](registry::ScenarioRegistry)
//! (`ScenarioRegistry::builtin()`): a name → (builder, summary, docs) table with
//! parameterised builders ([`ScenarioParams`](registry::ScenarioParams) carries seed /
//! size / retrieval-depth overrides). Consumers — the `report` CLI, smoke jobs, golden
//! tests — enumerate the registry instead of hardcoding scenario lists, so a new
//! scenario is one `register` call away from being rendered, smoke-tested and
//! snapshotted. See the [`registry`] module docs for the add-a-scenario walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod big_three;
pub mod entity_registry;
pub mod large_corpus;
pub mod live_updates;
pub mod multi_hop;
pub mod registry;
pub mod scenario;
pub mod synthetic;
pub mod timeline;
pub mod us_open;

pub use registry::{ScenarioEntry, ScenarioParams, ScenarioRegistry};
pub use scenario::Scenario;
