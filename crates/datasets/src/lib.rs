//! # rage-datasets
//!
//! Corpora and questions for the RAGE reproduction.
//!
//! The RAGE demonstration retrieves knowledge sources from locally-indexed collections
//! about professional tennis. The salient *content* of those sources is fully specified
//! by the paper's three use cases (§III), which is what the generators in this crate
//! encode:
//!
//! * [`big_three`] — Use case #1: rankings of Djokovic, Federer and Nadal under
//!   different metrics, leading to an ambiguous "who is the best" answer.
//! * [`us_open`] — Use case #2: US Open women's champions of different years, where an
//!   out-of-date source can mislead the model.
//! * [`timeline`] — Use case #3: one Player-of-the-Year document per season 2010–2019,
//!   forming a timeline to count over.
//! * [`synthetic`] — parameterised corpus generators used by the scaling benchmarks
//!   (E5–E10) and property tests.
//! * [`scenario`] — the [`Scenario`](scenario::Scenario) bundle tying a corpus to its
//!   question, retrieval depth, prior knowledge and expected behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod big_three;
pub mod scenario;
pub mod synthetic;
pub mod timeline;
pub mod us_open;

pub use scenario::Scenario;
