//! A multi-hop question: the answer composes two documents.
//!
//! "Who is the coach of the Riverton Open winner?" cannot be answered from any single
//! source: one document (the *bridge*) establishes who won the Riverton Open, and a
//! second (the *link*) connects that champion to her coach. A distractor coach with
//! equally strong credentials — but for the wrong tournament — sits in the middle of
//! the context, so the hop structure is load-bearing:
//!
//! * remove the **link** document and the model falls for the distractor — it answers
//!   with the wrong tournament's coach;
//! * remove both coach documents and the answer collapses to the champion herself (a
//!   single-hop reading of the question).
//!
//! Those flips are exactly the structure RAGE's combination counterfactuals and
//! presence/absence insight rules are built to surface.

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str = "Who is the coach of the Riverton Open winner?";

/// Document id of the bridge source (who won the tournament).
pub const BRIDGE_DOC: &str = "riverton-2024-final";

/// Document id of the link source (champion → coach).
pub const LINK_DOC: &str = "coach-okafor";

/// Document id of the distractor coach source (right profession, wrong tournament).
pub const DISTRACTOR_DOC: &str = "coach-brandt";

/// The corpus: bridge + link + distractor + two background documents.
pub fn corpus() -> Corpus {
    let mut corpus = Corpus::new();
    corpus.push(
        Document::new(
            BRIDGE_DOC,
            "Riverton Open 2024",
            "Mira Solis won the Riverton Open in 2024, defeating the field at Riverton \
             Park without dropping a set.",
        )
        .with_field("role", "bridge")
        .with_field("champion", "Mira Solis"),
    );
    corpus.push(
        Document::new(
            DISTRACTOR_DOC,
            "Coach of the year",
            "Viktor Brandt was named top coach after the winner of the Silver Masters \
             praised his tactical preparation.",
        )
        .with_field("role", "distractor")
        .with_field("coaches", "Silver Masters champion"),
    );
    corpus.push(
        Document::new(
            "riverton-history",
            "About the tournament",
            "The Riverton Open is held each spring on outdoor hard courts beside the \
             lake and draws a strong field.",
        )
        .with_field("role", "background"),
    );
    corpus.push(
        Document::new(
            "solis-profile",
            "Player profile",
            "Mira Solis is a baseline winner who turned professional in 2019 and has \
             climbed steadily since.",
        )
        .with_field("role", "background"),
    );
    corpus.push(
        Document::new(
            LINK_DOC,
            "Staff notes from the tour",
            "Daniel Okafor was named top coach this year for guiding the career of \
             Mira Solis across several dominant seasons.",
        )
        .with_field("role", "link")
        .with_field("coaches", "Mira Solis"),
    );
    corpus
}

/// Prior knowledge: a stale memory of a long-retired Riverton coach.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(&["riverton", "winner"], "Patrick Mora", 0.2))
}

/// The complete scenario bundle.
pub fn scenario() -> Scenario {
    Scenario {
        name: "multi-hop".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 5,
        prior: prior(),
        expected_full_context_answer: "Daniel Okafor".to_string(),
        expected_empty_context_answer: "Patrick Mora".to_string(),
        description: "Multi-hop composition: one document names the Riverton champion, \
                      another links that champion to coach Daniel Okafor, and a \
                      distractor coach takes over as the answer when the link document \
                      is removed."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn all_documents_are_retrieved() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 5);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn bridge_ranks_first_and_link_ranks_last() {
        // The composition depends on the context layout: the bridge (dense in
        // tournament terms) must open the context and the link (one matching term,
        // longer body) must close it, with the distractor buried in between.
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 5);
        assert_eq!(hits.first().unwrap().doc_id, BRIDGE_DOC);
        assert_eq!(hits.last().unwrap().doc_id, LINK_DOC);
        let rank_of = |id: &str| hits.iter().position(|h| h.doc_id == id).unwrap();
        assert!(rank_of(DISTRACTOR_DOC) > 0);
        assert!(rank_of(DISTRACTOR_DOC) < 4);
    }

    #[test]
    fn prior_recalls_the_stale_coach() {
        assert_eq!(prior().recall(QUESTION).unwrap().answer, "Patrick Mora");
    }

    #[test]
    fn scenario_expectations() {
        let s = scenario();
        assert_eq!(s.expected_full_context_answer, "Daniel Okafor");
        assert_eq!(s.expected_empty_context_answer, "Patrick Mora");
        assert_eq!(s.corpus_size(), 5);
    }
}
