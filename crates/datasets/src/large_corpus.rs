//! A seeded large corpus (≥2k documents): needle-in-a-haystack retrieval at scale.
//!
//! The paper's demonstration corpora have a handful of documents, which makes every
//! retrieval strategy trivially fast and leaves sharding nothing to do. This generator
//! produces a corpus big enough to exercise index build and sharded query latency: a
//! small set of *signal* documents (a synthetic ranking scenario, the same shape as use
//! case #1) spread evenly through thousands of seeded filler documents with a disjoint
//! `term{N}` vocabulary. The question's terms only occur in the signal documents, so
//! retrieval must find the needles, and the explanation that follows runs over a
//! normal-sized context — the *corpus* is large, not the prompt.
//!
//! Spreading the signal documents evenly through the corpus also guarantees that any
//! contiguous partitioning into a handful of shards puts needles in different shards,
//! which makes this the standard workload for the sharded-vs-single equivalence checks
//! and benchmarks.

use crate::scenario::Scenario;
use crate::synthetic::{self, FillerConfig, RankingConfig};
use rage_retrieval::Corpus;

/// Configuration of the large-corpus scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeCorpusConfig {
    /// Total number of documents (signal + filler).
    pub num_docs: usize,
    /// Number of signal documents, which is also the retrieval depth `k`.
    pub retrieval_k: usize,
    /// Words per filler document.
    pub filler_words_per_doc: usize,
    /// Filler vocabulary size (Zipf-like skew, disjoint from the signal vocabulary).
    pub vocabulary: usize,
    /// RNG seed (the whole corpus is deterministic in this seed).
    pub seed: u64,
}

impl Default for LargeCorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 2048,
            retrieval_k: 6,
            filler_words_per_doc: 30,
            vocabulary: 4000,
            seed: 23,
        }
    }
}

/// Generate the large-corpus scenario.
///
/// # Panics
/// If `num_docs` does not leave room for the signal documents.
pub fn scenario(config: LargeCorpusConfig) -> Scenario {
    assert!(
        config.num_docs > config.retrieval_k,
        "num_docs must exceed retrieval_k"
    );
    let ranking = synthetic::ranking_scenario(RankingConfig {
        num_sources: config.retrieval_k,
        num_entities: 3,
        filler_words: 6,
        seed: config.seed,
    });
    let filler = synthetic::filler_corpus(FillerConfig {
        num_docs: config.num_docs - config.retrieval_k,
        words_per_doc: config.filler_words_per_doc,
        vocabulary: config.vocabulary,
        seed: config.seed ^ 0x5EED_CAFE,
    });

    // Interleave: signal document j sits at position j * num_docs / k, so contiguous
    // shard partitions split the needles across shards instead of clustering them.
    let k = config.retrieval_k;
    let stride = config.num_docs / k;
    let signal_positions: Vec<usize> = (0..k).map(|j| j * stride).collect();
    let mut signal = ranking.corpus.documents().iter().cloned();
    let mut fillers = filler.documents().iter().cloned();
    let mut corpus = Corpus::new();
    for position in 0..config.num_docs {
        if signal_positions.contains(&position) {
            corpus.push(signal.next().expect("k signal documents"));
        } else {
            corpus.push(fillers.next().expect("num_docs - k filler documents"));
        }
    }

    Scenario {
        name: format!("large-corpus-n{}", config.num_docs),
        question: ranking.question,
        corpus,
        retrieval_k: config.retrieval_k,
        prior: ranking.prior,
        expected_full_context_answer: ranking.expected_full_context_answer,
        expected_empty_context_answer: ranking.expected_empty_context_answer,
        description: format!(
            "Needle-in-a-haystack corpus: {} signal documents spread through {} seeded \
             filler documents (seed {}); retrieval must locate the needles and the \
             index is large enough for sharding to matter.",
            config.retrieval_k,
            config.num_docs - config.retrieval_k,
            config.seed
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher, ShardedSearcher};

    #[test]
    fn default_scenario_is_at_least_2k_docs() {
        let s = scenario(LargeCorpusConfig::default());
        assert!(s.corpus_size() >= 2048);
        assert_eq!(s.retrieval_k, 6);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = scenario(LargeCorpusConfig::default());
        let b = scenario(LargeCorpusConfig::default());
        assert_eq!(a.corpus, b.corpus);
        let c = scenario(LargeCorpusConfig {
            seed: 99,
            ..LargeCorpusConfig::default()
        });
        assert_ne!(a.corpus, c.corpus);
    }

    #[test]
    fn retrieval_finds_exactly_the_signal_documents() {
        let config = LargeCorpusConfig {
            num_docs: 256,
            ..LargeCorpusConfig::default()
        };
        let s = scenario(config);
        let searcher = Searcher::new(IndexBuilder::default().build(&s.corpus));
        let hits = searcher.search(&s.question, s.retrieval_k);
        assert_eq!(hits.len(), s.retrieval_k);
        assert!(hits.iter().all(|h| h.doc_id.starts_with("synthetic-")));
    }

    #[test]
    fn signal_documents_land_in_different_shards() {
        let config = LargeCorpusConfig {
            num_docs: 256,
            ..LargeCorpusConfig::default()
        };
        let s = scenario(config);
        let sharded = ShardedSearcher::from_corpus(&s.corpus, 4);
        // Every shard holds 64 contiguous documents and the 6 needles sit at stride
        // 42, so at least 3 different shards contain a needle; the merged ranking must
        // still equal the single-index one.
        let single = Searcher::new(IndexBuilder::default().build(&s.corpus));
        assert_eq!(
            single.search(&s.question, s.retrieval_k),
            sharded.search(&s.question, s.retrieval_k)
        );
    }

    #[test]
    #[should_panic(expected = "num_docs must exceed")]
    fn too_small_corpus_rejected() {
        scenario(LargeCorpusConfig {
            num_docs: 4,
            ..LargeCorpusConfig::default()
        });
    }
}
