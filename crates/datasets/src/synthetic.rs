//! Parameterised synthetic corpora for benchmarks and property tests.
//!
//! Two families of generators are provided:
//!
//! * [`ranking_scenario`] — a scaled-up analogue of the Big Three use case: `k` sources,
//!   each endorsing one of `num_entities` candidates with cue-worded text, plus filler
//!   vocabulary. Used by the counterfactual-search and optimal-permutation experiments
//!   (E5–E7, E11), where the answer must genuinely depend on which sources are present
//!   and where they sit.
//! * [`filler_corpus`] — a large corpus of random filler documents with a Zipf-like
//!   vocabulary, used by the retrieval benchmarks (E9) to measure index build and query
//!   latency at realistic corpus sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// Candidate entity names used by the synthetic ranking scenario.
///
/// First names are distinct so that capitalised-span extraction yields unambiguous
/// candidates.
const ENTITY_NAMES: &[&str] = &[
    "Alice Archer",
    "Boris Blake",
    "Clara Chen",
    "Dmitri Duval",
    "Elena Estrada",
    "Felix Ferreira",
    "Greta Gruber",
    "Hassan Haddad",
    "Ingrid Ito",
    "Jonas Jansen",
    "Katya Kim",
    "Lucas Lindgren",
];

/// Filler vocabulary for padding documents to a target length.
const FILLER_WORDS: &[&str] = &[
    "season",
    "tournament",
    "statistics",
    "analysts",
    "observers",
    "performance",
    "record",
    "career",
    "surface",
    "ranking",
    "points",
    "margin",
    "period",
    "historical",
    "debate",
    "metric",
    "measure",
    "figure",
    "report",
    "summary",
    "coverage",
    "commentary",
    "archive",
    "database",
    "chronicle",
    "review",
    "analysis",
    "comparison",
    "study",
];

/// Configuration of the synthetic ranking scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingConfig {
    /// Number of sources to generate (the context size `k`).
    pub num_sources: usize,
    /// Number of distinct candidate entities endorsed by the sources.
    pub num_entities: usize,
    /// Extra filler words appended to every document.
    pub filler_words: usize,
    /// RNG seed (the whole scenario is deterministic in this seed).
    pub seed: u64,
}

impl Default for RankingConfig {
    fn default() -> Self {
        Self {
            num_sources: 6,
            num_entities: 3,
            filler_words: 6,
            seed: 7,
        }
    }
}

/// The question used by every synthetic ranking scenario.
pub const RANKING_QUESTION: &str = "Who is the best overall candidate this season?";

/// Generate a synthetic ranking scenario with `k` sources endorsing `num_entities`
/// candidates.
///
/// Source `i` endorses entity `i % num_entities`; the first source's endorsement is the
/// expected full-context answer under the default (primacy-tilted) model, mirroring the
/// structure of use case #1 at arbitrary scale.
pub fn ranking_scenario(config: RankingConfig) -> Scenario {
    assert!(config.num_sources >= 1, "at least one source required");
    let num_entities = config.num_entities.clamp(1, ENTITY_NAMES.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut corpus = Corpus::new();
    for i in 0..config.num_sources {
        let entity = ENTITY_NAMES[i % num_entities];
        let metric = FILLER_WORDS[i % FILLER_WORDS.len()];
        let filler: Vec<&str> = (0..config.filler_words)
            .map(|_| FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())])
            .collect();
        let text = format!(
            "{entity} ranks first on the {metric} metric and leads the candidate table this season. {}",
            filler.join(" ")
        );
        corpus.push(
            Document::new(
                format!("synthetic-{i}"),
                format!("Ranking by {metric}"),
                text,
            )
            .with_field("endorses", entity)
            .with_field("position_hint", i.to_string()),
        );
    }

    let expected = ENTITY_NAMES[0].to_string();
    let prior_answer = ENTITY_NAMES[1 % num_entities].to_string();
    Scenario {
        name: format!("synthetic-ranking-k{}", config.num_sources),
        question: RANKING_QUESTION.to_string(),
        corpus,
        retrieval_k: config.num_sources,
        prior: PriorKnowledge::empty().with_fact(PriorFact::new(
            &["best", "overall", "candidate"],
            prior_answer.clone(),
            0.2,
        )),
        expected_full_context_answer: expected,
        expected_empty_context_answer: prior_answer,
        description: format!(
            "Synthetic ranking scenario with {} sources endorsing {} entities (seed {}).",
            config.num_sources, num_entities, config.seed
        ),
    }
}

/// Configuration of the filler corpus generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillerConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Words per document.
    pub words_per_doc: usize,
    /// Vocabulary size; term frequencies follow a Zipf-like distribution over it.
    pub vocabulary: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FillerConfig {
    fn default() -> Self {
        Self {
            num_docs: 1000,
            words_per_doc: 40,
            vocabulary: 5000,
            seed: 11,
        }
    }
}

/// Generate a corpus of random filler documents with a skewed term distribution.
pub fn filler_corpus(config: FillerConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Corpus::new();
    for d in 0..config.num_docs {
        let mut words = Vec::with_capacity(config.words_per_doc);
        for _ in 0..config.words_per_doc {
            // Zipf-ish skew: squaring a uniform sample concentrates mass on low ranks.
            let u: f64 = rng.gen::<f64>();
            let rank = ((u * u) * config.vocabulary as f64) as usize;
            words.push(format!("term{rank}"));
        }
        corpus.push(Document::new(
            format!("filler-{d}"),
            String::new(),
            words.join(" "),
        ));
    }
    corpus
}

/// A set of queries matching the filler corpus vocabulary (for retrieval benchmarks).
pub fn filler_queries(config: FillerConfig, num_queries: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFACE);
    (0..num_queries)
        .map(|_| {
            let terms: Vec<String> = (0..4)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>();
                    let rank = ((u * u) * config.vocabulary as f64) as usize;
                    format!("term{rank}")
                })
                .collect();
            terms.join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn ranking_scenario_has_requested_size() {
        let s = ranking_scenario(RankingConfig {
            num_sources: 8,
            ..RankingConfig::default()
        });
        assert_eq!(s.corpus_size(), 8);
        assert_eq!(s.retrieval_k, 8);
        assert!(s.expected_full_context_answer.contains("Alice"));
    }

    #[test]
    fn ranking_scenario_is_deterministic() {
        let a = ranking_scenario(RankingConfig::default());
        let b = ranking_scenario(RankingConfig::default());
        assert_eq!(a.corpus, b.corpus);
    }

    #[test]
    fn different_seeds_vary_filler_text() {
        let a = ranking_scenario(RankingConfig {
            seed: 1,
            ..RankingConfig::default()
        });
        let b = ranking_scenario(RankingConfig {
            seed: 2,
            ..RankingConfig::default()
        });
        assert_ne!(a.corpus, b.corpus);
    }

    #[test]
    fn every_source_endorses_an_entity() {
        let s = ranking_scenario(RankingConfig {
            num_sources: 10,
            num_entities: 4,
            ..RankingConfig::default()
        });
        for doc in s.corpus.iter() {
            let endorsed = doc.fields.get("endorses").unwrap();
            assert!(doc.text.contains(endorsed.as_str()));
        }
    }

    #[test]
    fn ranking_documents_are_retrievable() {
        let s = ranking_scenario(RankingConfig::default());
        let searcher = Searcher::new(IndexBuilder::default().build(&s.corpus));
        let hits = searcher.search(&s.question, s.retrieval_k);
        assert_eq!(hits.len(), s.retrieval_k);
    }

    #[test]
    fn filler_corpus_size_and_determinism() {
        let config = FillerConfig {
            num_docs: 50,
            ..FillerConfig::default()
        };
        let a = filler_corpus(config);
        let b = filler_corpus(config);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn filler_queries_match_vocabulary() {
        let config = FillerConfig {
            num_docs: 20,
            ..FillerConfig::default()
        };
        let queries = filler_queries(config, 5);
        assert_eq!(queries.len(), 5);
        assert!(queries.iter().all(|q| q.contains("term")));
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_rejected() {
        ranking_scenario(RankingConfig {
            num_sources: 0,
            ..RankingConfig::default()
        });
    }
}
