//! A seeded organisation registry: entity resolution over names, aliases and acronyms.
//!
//! Real research-organisation registries (ROR, GRID) hold one record per institution —
//! canonical name, alias word-order variants, an acronym, a city and a stable registry
//! identifier — and the standard workload against them is *affiliation matching*:
//! resolving a free-text affiliation string ("CHI Varenmoor, hydrology dept") to the
//! registry record it denotes. This generator reproduces that shape at arbitrary scale:
//!
//! * Organisation `i`'s identity (descriptor, field, institution type, city) is a
//!   bijective mixing of `i` over a 2^19 identity space, so every organisation of a
//!   registry up to 524 288 entries has a **distinct** canonical name — lookups have
//!   exactly one right answer.
//! * Each record lists the canonical name, two alias word-order variants, the acronym
//!   (initials of the canonical words), the city and a unique `ror{i}` registry
//!   identifier, plus a seeded tail of research-topic words that varies document
//!   lengths.
//! * [`resolution_queries`] generates a deterministic batch of affiliation-style
//!   lookups rotating through acronym+city, alias and registry-identifier forms, each
//!   paired with the document id it must resolve to — the batch workload the retrieval
//!   benchmark and the server loadtest replay.
//!
//! The default registry holds a few thousand organisations (cheap enough for report
//! smoke tests); the retrieval benchmark builds the same generator at 100k+ documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// Leading descriptor of a canonical organisation name (16 entries — 4 identity bits).
const DESCRIPTORS: &[&str] = &[
    "National",
    "Royal",
    "Federal",
    "Coastal",
    "Northern",
    "Central",
    "Pacific",
    "Metropolitan",
    "Continental",
    "Imperial",
    "Eastern",
    "Western",
    "Highland",
    "Maritime",
    "Alpine",
    "Polar",
];

/// Research field of a canonical organisation name (16 entries — 4 identity bits).
const FIELDS: &[&str] = &[
    "Oceanography",
    "Informatics",
    "Astronomy",
    "Genetics",
    "Metallurgy",
    "Hydrology",
    "Linguistics",
    "Robotics",
    "Meteorology",
    "Agronomy",
    "Toxicology",
    "Cartography",
    "Seismology",
    "Virology",
    "Photonics",
    "Glaciology",
];

/// Institution type of a canonical organisation name (8 entries — 3 identity bits).
const TYPES: &[&str] = &[
    "Institute",
    "University",
    "Laboratory",
    "Academy",
    "Observatory",
    "Foundation",
    "College",
    "Polytechnic",
];

/// City-name syllables; a city is one leading and one trailing syllable (16 × 16
/// entries — 8 identity bits).
const CITY_HEADS: &[&str] = &[
    "Varen", "Oster", "Quil", "Bram", "Tel", "Mar", "Hol", "Dun", "Kess", "Lor", "Nav", "Gri",
    "Sel", "Thorn", "Wyn", "Eber",
];
const CITY_TAILS: &[&str] = &[
    "moor", "wick", "holm", "stad", "bury", "ford", "haven", "gate", "mere", "field", "port",
    "dale", "cliff", "marsh", "bourne", "ridge",
];

/// Research-topic filler appended to records to vary document lengths.
const TOPICS: &[&str] = &[
    "sediment",
    "corpora",
    "telescopes",
    "genomes",
    "alloys",
    "aquifers",
    "syntax",
    "actuators",
    "cyclones",
    "soils",
    "toxins",
    "surveys",
    "faults",
    "vaccines",
    "lasers",
    "glaciers",
    "archives",
    "sensors",
    "reagents",
    "catalogues",
];

/// One organisation of the registry: the decoded identity behind a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgRecord {
    /// Document id of the record (`org-{i:06}`).
    pub doc_id: String,
    /// Distinct canonical name, e.g. `Coastal Hydrology Institute`.
    pub canonical: String,
    /// Acronym formed from the canonical name's initials, e.g. `CHI`.
    pub acronym: String,
    /// City the organisation is based in, e.g. `Varenmoor`.
    pub city: String,
    /// Field word of the canonical name, e.g. `Hydrology`.
    pub field: String,
    /// Institution type of the canonical name, e.g. `Institute`.
    pub institution: String,
    /// Unique registry identifier token, e.g. `ror000123`.
    pub registry_id: String,
}

/// Configuration of the entity-registry scenario family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntityRegistryConfig {
    /// Number of organisations (one record document each). At most 524 288 — the
    /// identity space guaranteeing distinct canonical names.
    pub num_orgs: usize,
    /// Retrieval depth `k` for the scenario's resolution question.
    pub retrieval_k: usize,
    /// RNG seed for the topic tails (identities are seed-independent).
    pub seed: u64,
}

impl Default for EntityRegistryConfig {
    fn default() -> Self {
        Self {
            num_orgs: 4096,
            retrieval_k: 6,
            seed: 29,
        }
    }
}

/// The identity space: 4 descriptor bits + 4 field bits + 3 type bits + 8 city bits.
const IDENTITY_BITS: u32 = 19;
const IDENTITY_SPACE: usize = 1 << IDENTITY_BITS;

/// Decode organisation `i`'s identity.
///
/// Multiplying by an odd constant modulo a power of two is a bijection, so every
/// `i < 2^19` maps to a distinct (descriptor, field, type, city) tuple — canonical
/// names never collide — while consecutive indexes scatter across cities and fields.
pub fn org_record(i: usize) -> OrgRecord {
    assert!(
        i < IDENTITY_SPACE,
        "registry capped at {IDENTITY_SPACE} organisations"
    );
    let mix = i.wrapping_mul(0x9E37_79B1) & (IDENTITY_SPACE - 1);
    let descriptor = DESCRIPTORS[mix & 15];
    let field = FIELDS[(mix >> 4) & 15];
    let institution = TYPES[(mix >> 8) & 7];
    let city = format!(
        "{}{}",
        CITY_HEADS[(mix >> 11) & 15],
        CITY_TAILS[(mix >> 15) & 15]
    );
    let canonical = format!("{descriptor} {field} {institution}");
    let acronym: String = [descriptor, field, institution]
        .iter()
        .filter_map(|w| w.chars().next())
        .collect();
    OrgRecord {
        doc_id: format!("org-{i:06}"),
        canonical,
        acronym,
        city,
        field: field.to_string(),
        institution: institution.to_string(),
        registry_id: format!("ror{i:06}"),
    }
}

/// Generate the registry corpus: one record document per organisation.
pub fn registry_corpus(config: EntityRegistryConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Corpus::new();
    for i in 0..config.num_orgs {
        let org = org_record(i);
        let num_topics = rng.gen_range(2..8);
        let topics: Vec<&str> = (0..num_topics)
            .map(|_| TOPICS[rng.gen_range(0..TOPICS.len())])
            .collect();
        // Wording is chosen so capitalised entity spans stay clean for extraction: the
        // canonical name is always followed by a lowercase word, sentences start with
        // blocklisted words ("The"), and the acronym never abuts another capital.
        let text = format!(
            "{canonical} is a registered research organisation based in {city} under the \
             acronym {acronym} serving {city}. The register also lists the alias \
             {field} {institution} {city} for this organisation. The registry identifier \
             {rid} denotes this record. The research groups study {topics}.",
            canonical = org.canonical,
            acronym = org.acronym,
            city = org.city,
            field = org.field,
            institution = org.institution,
            rid = org.registry_id,
            topics = topics.join(" and "),
        );
        // Title stays empty: `full_text()` concatenates title and body, and a
        // canonical-name title would merge with the body's leading canonical name
        // into one doubled entity span.
        corpus.push(
            Document::new(org.doc_id.clone(), String::new(), text)
                .with_field("acronym", org.acronym.clone())
                .with_field("city", org.city.clone())
                .with_field("registry_id", org.registry_id.clone()),
        );
    }
    corpus
}

/// One affiliation-resolution lookup: a free-text query plus the record document id it
/// must resolve to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionQuery {
    /// The affiliation-style query string.
    pub query: String,
    /// Document id of the registry record the query denotes.
    pub expected_doc_id: String,
}

/// A deterministic batch of affiliation lookups against the registry.
///
/// Targets stride through the registry and the phrasing rotates through the three
/// classic affiliation shapes: acronym + city, alias word-order variant, and registry
/// identifier + city. Every form mixes boilerplate words that appear in each record
/// with at least one selective term, the shape real affiliation strings have. This is
/// the batch workload the retrieval benchmark's entity-resolution bucket and the
/// server loadtest replay.
pub fn resolution_queries(
    config: EntityRegistryConfig,
    num_queries: usize,
) -> Vec<ResolutionQuery> {
    assert!(
        config.num_orgs > 0,
        "registry must hold at least one organisation"
    );
    (0..num_queries)
        .map(|q| {
            // A large odd stride scatters targets over the whole registry.
            let org = org_record(q.wrapping_mul(7919) % config.num_orgs);
            let query = match q % 3 {
                0 => format!(
                    "which organisation is the affiliation {} {} {}",
                    org.acronym, org.city, org.field
                ),
                1 => format!(
                    "resolve the affiliation {} {} {}",
                    org.field, org.institution, org.city
                ),
                _ => format!(
                    "identify the registry record {} of {}",
                    org.registry_id, org.city
                ),
            };
            ResolutionQuery {
                query,
                expected_doc_id: org.doc_id,
            }
        })
        .collect()
}

/// The complete scenario bundle: the registry corpus plus one representative
/// affiliation-resolution question.
pub fn scenario(config: EntityRegistryConfig) -> Scenario {
    assert!(
        config.num_orgs >= 2,
        "registry needs at least two organisations"
    );
    let corpus = registry_corpus(config);
    // A mid-registry target keeps the needle away from both corpus ends, so contiguous
    // shard partitions never get it for free.
    let target = org_record(config.num_orgs / 2);
    let question = format!(
        "Which organisation does the affiliation {} {} {} refer to?",
        target.acronym, target.city, target.field
    );
    Scenario {
        name: format!("entity-registry-n{}", config.num_orgs),
        question,
        corpus,
        retrieval_k: config.retrieval_k,
        prior: PriorKnowledge::empty().with_fact(PriorFact::new(
            &["affiliation", "organisation"],
            "Helix Syndicate",
            0.1,
        )),
        expected_full_context_answer: target.canonical,
        expected_empty_context_answer: "Helix Syndicate".to_string(),
        description: format!(
            "Entity-resolution registry: {} organisation records with distinct canonical \
             names, aliases, acronyms and registry identifiers (seed {}); the question \
             resolves an affiliation string to its record, and batch lookups drive the \
             retrieval benchmark and loadtest entity-resolution buckets.",
            config.num_orgs, config.seed
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn identities_are_distinct() {
        let mut names = std::collections::HashSet::new();
        for i in 0..5000 {
            let org = org_record(i);
            assert!(
                names.insert(format!("{} {}", org.canonical, org.city)),
                "collision at {i}"
            );
            assert_eq!(org.acronym.len(), 3);
        }
    }

    #[test]
    fn corpus_is_deterministic_and_seed_sensitive() {
        let small = EntityRegistryConfig {
            num_orgs: 64,
            ..EntityRegistryConfig::default()
        };
        assert_eq!(registry_corpus(small), registry_corpus(small));
        let reseeded = EntityRegistryConfig { seed: 99, ..small };
        assert_ne!(registry_corpus(small), registry_corpus(reseeded));
    }

    #[test]
    fn resolution_queries_hit_their_target_record() {
        let config = EntityRegistryConfig {
            num_orgs: 512,
            ..EntityRegistryConfig::default()
        };
        let searcher = Searcher::new(IndexBuilder::default().build(&registry_corpus(config)));
        for rq in resolution_queries(config, 12) {
            let hits = searcher.search(&rq.query, 1);
            assert_eq!(hits[0].doc_id, rq.expected_doc_id, "{:?}", rq.query);
        }
    }

    #[test]
    fn scenario_question_retrieves_the_target_first() {
        let config = EntityRegistryConfig {
            num_orgs: 512,
            ..EntityRegistryConfig::default()
        };
        let s = scenario(config);
        assert_eq!(s.corpus_size(), 512);
        let searcher = Searcher::new(IndexBuilder::default().build(&s.corpus));
        let hits = searcher.search(&s.question, s.retrieval_k);
        let target = org_record(config.num_orgs / 2);
        assert_eq!(hits[0].doc_id, target.doc_id);
        assert!(s.expected_full_context_answer.contains(&target.field));
    }

    #[test]
    #[should_panic(expected = "registry capped")]
    fn oversized_registry_rejected() {
        org_record(IDENTITY_SPACE);
    }
}
