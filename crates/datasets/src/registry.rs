//! The [`ScenarioRegistry`]: name → scenario builder, metadata and documentation.
//!
//! Demonstration scenarios used to be a hardcoded four-way `match` in the report CLI;
//! every new corpus meant touching the CLI, its usage string, its error message and the
//! smoke tests. The registry centralises that wiring: each entry couples a normalised
//! name with a one-line summary, a longer docs string, and a *parameterised* builder —
//! a closure from [`ScenarioParams`] to [`Scenario`] — so callers can both enumerate
//! what exists (`--list-scenarios`) and rebuild any scenario at a different seed or
//! size without new plumbing.
//!
//! ## Adding a scenario
//!
//! 1. Write a generator module (see [`crate::adversarial`] for a small template)
//!    exposing a `scenario()` (or config-taking) constructor.
//! 2. Register it in [`ScenarioRegistry::builtin`] with a unique name, a one-line
//!    summary and a docs string; honour the [`ScenarioParams`] fields that make sense
//!    for your generator and ignore the rest.
//! 3. Run `UPDATE_SNAPSHOTS=1 cargo test -p rage-report --test golden` to pin its
//!    report snapshots; the report CLI, the smoke job and `--list-scenarios` pick the
//!    new entry up automatically.

use crate::scenario::Scenario;
use crate::{
    adversarial, big_three, entity_registry, large_corpus, live_updates, multi_hop, synthetic,
    timeline, us_open,
};

/// Optional knobs a registry caller can pass to a scenario builder.
///
/// Builders honour the fields that make sense for them and ignore the rest (the
/// hand-written paper scenarios ignore everything). `None` always means "the
/// scenario's default".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioParams {
    /// RNG seed for generated corpora.
    pub seed: Option<u64>,
    /// Target corpus size (number of documents) for generated corpora.
    pub size: Option<usize>,
    /// Retrieval depth `k` override.
    pub retrieval_k: Option<usize>,
}

impl ScenarioParams {
    /// Set the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Set the target corpus size (builder style).
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = Some(size);
        self
    }

    /// Set the retrieval depth (builder style).
    pub fn with_retrieval_k(mut self, k: usize) -> Self {
        self.retrieval_k = Some(k);
        self
    }
}

/// A registered scenario: normalised name, presentation metadata and the builder.
pub struct ScenarioEntry {
    name: String,
    summary: String,
    docs: String,
    builder: Box<dyn Fn(&ScenarioParams) -> Scenario + Send + Sync>,
}

impl ScenarioEntry {
    /// Create an entry. `name` is normalised (lowercased, `-` → `_`); `summary` should
    /// be a single line (it backs `--list-scenarios`), `docs` can be longer.
    pub fn new(
        name: impl Into<String>,
        summary: impl Into<String>,
        docs: impl Into<String>,
        builder: impl Fn(&ScenarioParams) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: normalize(&name.into()),
            summary: summary.into(),
            docs: docs.into(),
            builder: Box::new(builder),
        }
    }

    /// The normalised registry name (`us_open`, `large_corpus`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Longer documentation string.
    pub fn docs(&self) -> &str {
        &self.docs
    }

    /// Build the scenario with its defaults.
    pub fn build(&self) -> Scenario {
        self.build_with(&ScenarioParams::default())
    }

    /// Build the scenario with explicit parameters.
    pub fn build_with(&self, params: &ScenarioParams) -> Scenario {
        (self.builder)(params)
    }
}

impl std::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish_non_exhaustive()
    }
}

/// Registry keys accept `-` and `_` interchangeably and are case-insensitive.
fn normalize(name: &str) -> String {
    name.trim().to_lowercase().replace('-', "_")
}

/// An ordered collection of [`ScenarioEntry`]s with normalised-name lookup.
#[derive(Debug, Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// An empty registry (register your own entries).
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in registry: the paper's three use cases, the synthetic ranking
    /// generator, and the three stress scenarios, in presentation order.
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register(ScenarioEntry::new(
            "us_open",
            "Use case #2: out-of-date championship sources mislead the model.",
            "The paper's 'Inconsistent Sources' use case: US Open women's champions of \
             mixed recency; the up-to-date document sits last in the context and stale \
             documents can take over when it is buried in the middle.",
            |_| us_open::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "big_three",
            "Use case #1: ambiguous 'who is the best' ranking question.",
            "The paper's 'Ambiguity' use case: rankings of Djokovic, Federer and Nadal \
             under different metrics, so the answer follows whichever metric document \
             the model attends to most.",
            |_| big_three::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "timeline",
            "Use case #3: counting over a per-season timeline corpus.",
            "The paper's 'Counting' use case: one Player-of-the-Year document per \
             season 2010-2019; the answer is a count over supporting sources.",
            |_| timeline::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "synthetic",
            "Seeded synthetic ranking corpus (parameterised analogue of big_three).",
            "A scaled-up analogue of use case #1: `size` sources, each endorsing one \
             of a rotating set of candidate entities, with seeded filler vocabulary. \
             Honours `seed` and `size` (number of sources).",
            |params| {
                let mut config = synthetic::RankingConfig::default();
                if let Some(seed) = params.seed {
                    config.seed = seed;
                }
                if let Some(size) = params.size {
                    config.num_sources = size;
                }
                synthetic::ranking_scenario(config)
            },
        ));
        registry.register(ScenarioEntry::new(
            "large_corpus",
            "Seeded 2k+ document corpus: needle-in-a-haystack retrieval at scale.",
            "A handful of signal documents spread through thousands of seeded filler \
             documents; exercises index build, sharded retrieval and ranking at a \
             corpus size where partitioning pays off. Honours `seed`, `size` (total \
             documents, >= 2048 by default) and `retrieval_k`.",
            |params| {
                let mut config = large_corpus::LargeCorpusConfig::default();
                if let Some(seed) = params.seed {
                    config.seed = seed;
                }
                if let Some(size) = params.size {
                    config.num_docs = size;
                }
                if let Some(k) = params.retrieval_k {
                    config.retrieval_k = k;
                }
                large_corpus::scenario(config)
            },
        ));
        registry.register(ScenarioEntry::new(
            "multi_hop",
            "Two-document composition: tournament result + coach link.",
            "The answer requires composing two documents: one names the tournament \
             champion, another links that champion to her coach. Removing the link \
             document flips the answer to a wrong-tournament distractor coach, which \
             the counterfactual panels surface.",
            |_| multi_hop::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "adversarial",
            "Near-duplicate sources asserting contradictory facts.",
            "Two camps of near-identical documents assert conflicting champions, with \
             exactly tied BM25 scores; stresses deterministic tie-breaking, insight \
             rules and permutation sensitivity under contradiction.",
            |_| adversarial::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "live_updates",
            "Champions corpus plus a scripted mutation sequence (add/correct/retract).",
            "A seed corpus of past champions paired with a scripted sequence of corpus \
             mutations: a breaking result lands, is corrected, and is retracted. The \
             question is a most-recent one, so every mutation moves the grounded \
             answer; the standard fixture for live-corpus and cache-invalidation \
             tests (see `rage_datasets::live_updates::mutation_script`).",
            |_| live_updates::scenario(),
        ));
        registry.register(ScenarioEntry::new(
            "entity_registry",
            "Seeded organisation registry: affiliation lookups over names, aliases, acronyms.",
            "A ROR-shaped registry of organisation records — distinct canonical names, \
             alias word-order variants, acronyms, cities and unique registry \
             identifiers — queried with affiliation-resolution lookups. The default \
             registry holds a few thousand records; the retrieval benchmark builds the \
             same generator at 100k+ documents for its dynamic-pruning bucket. Honours \
             `seed`, `size` (number of organisations) and `retrieval_k`.",
            |params| {
                let mut config = entity_registry::EntityRegistryConfig::default();
                if let Some(seed) = params.seed {
                    config.seed = seed;
                }
                if let Some(size) = params.size {
                    config.num_orgs = size;
                }
                if let Some(k) = params.retrieval_k {
                    config.retrieval_k = k;
                }
                entity_registry::scenario(config)
            },
        ));
        registry
    }

    /// Register an entry.
    ///
    /// # Panics
    /// If an entry with the same normalised name is already registered.
    pub fn register(&mut self, entry: ScenarioEntry) {
        assert!(
            self.get(entry.name()).is_none(),
            "duplicate scenario name {:?}",
            entry.name()
        );
        self.entries.push(entry);
    }

    /// Entry names in registration (presentation) order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Look up an entry by name (`-`/`_` and case are interchangeable).
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        let wanted = normalize(name);
        self.entries.iter().find(|e| e.name == wanted)
    }

    /// Build a scenario by name with its defaults; `None` for unknown names.
    pub fn build(&self, name: &str) -> Option<Scenario> {
        self.get(name).map(ScenarioEntry::build)
    }

    /// Build a scenario by name with explicit parameters; `None` for unknown names.
    pub fn build_with(&self, name: &str, params: &ScenarioParams) -> Option<Scenario> {
        self.get(name).map(|e| e.build_with(params))
    }

    /// Iterate the entries in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioEntry> {
        self.entries.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_all_scenarios_in_order() {
        let registry = ScenarioRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec![
                "us_open",
                "big_three",
                "timeline",
                "synthetic",
                "large_corpus",
                "multi_hop",
                "adversarial",
                "live_updates",
                "entity_registry"
            ]
        );
        assert_eq!(registry.len(), 9);
        assert!(!registry.is_empty());
    }

    #[test]
    fn lookup_normalises_names() {
        let registry = ScenarioRegistry::builtin();
        for name in ["us_open", "us-open", "US-Open", " us_open "] {
            assert!(registry.get(name).is_some(), "{name}");
        }
        assert!(registry.get("nope").is_none());
        assert!(registry.build("nope").is_none());
    }

    #[test]
    fn every_entry_builds_and_metadata_is_presentable() {
        let registry = ScenarioRegistry::builtin();
        for entry in registry.iter() {
            let scenario = entry.build();
            assert!(!scenario.question.is_empty(), "{}", entry.name());
            assert!(
                scenario.corpus_size() >= scenario.retrieval_k,
                "{}",
                entry.name()
            );
            assert!(!entry.summary().contains('\n'), "{}", entry.name());
            assert!(!entry.docs().is_empty(), "{}", entry.name());
        }
    }

    #[test]
    fn parameterised_builders_honour_params() {
        let registry = ScenarioRegistry::builtin();
        let small = registry
            .build_with("synthetic", &ScenarioParams::default().with_size(4))
            .unwrap();
        assert_eq!(small.corpus_size(), 4);

        let seeded_a = registry
            .build_with(
                "large_corpus",
                &ScenarioParams::default().with_seed(1).with_size(64),
            )
            .unwrap();
        let seeded_b = registry
            .build_with(
                "large_corpus",
                &ScenarioParams::default().with_seed(2).with_size(64),
            )
            .unwrap();
        assert_eq!(seeded_a.corpus_size(), 64);
        assert_ne!(seeded_a.corpus, seeded_b.corpus);

        // Paper scenarios ignore params entirely.
        let a = registry.build("us_open").unwrap();
        let b = registry
            .build_with("us_open", &ScenarioParams::default().with_seed(99))
            .unwrap();
        assert_eq!(a.corpus, b.corpus);
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_are_rejected() {
        let mut registry = ScenarioRegistry::builtin();
        registry.register(ScenarioEntry::new("us-open", "dup", "dup", |_| {
            us_open::scenario()
        }));
    }
}
