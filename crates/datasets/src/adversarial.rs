//! An adversarial corpus: near-duplicate sources asserting contradictory facts.
//!
//! Two camps of documents make irreconcilable claims about who won the Meridian Cup —
//! three assert Lara Voss, three assert Tessa Marin — and each claim in one camp has a
//! *textual twin* in the other that differs only in the champion's name. Because the
//! twins match the query's terms identically, their BM25 scores are **exactly tied**,
//! which stresses two things at once:
//!
//! * **Deterministic ranking.** Tied scores are broken by ascending document id
//!   everywhere (single and sharded retrieval alike), so the contradictory context has
//!   one canonical layout. The interleaved ids in this corpus make any
//!   insertion-order or shard-order leak visible immediately.
//! * **Explanation under contradiction.** With evidence perfectly balanced, the answer
//!   is decided by context position alone, so RAGE's counterfactual sets, permutation
//!   sensitivity and presence/absence rules all fire: removing or demoting a camp's
//!   documents flips the answer to the other camp's champion.

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str = "Who won the Meridian Cup final?";

/// The champion asserted by the `voss` camp.
pub const CAMP_VOSS: &str = "Lara Voss";

/// The champion asserted by the `marin` camp.
pub const CAMP_MARIN: &str = "Tessa Marin";

/// Claim phrasings shared verbatim by both camps (`{}` holds the champion's name).
///
/// Each phrasing mentions every query term exactly once, and both champion names
/// analyse to the same number of tokens, so twin documents tie exactly under BM25.
const CLAIMS: &[&str] = &[
    "The champion {} won the Meridian Cup final after a dominant week.",
    "The Meridian Cup final was won by champion {}, the bulletin confirms.",
    "Observers crowned {} the winner of the Meridian Cup final on Sunday.",
];

/// The corpus of contradictory near-duplicates.
///
/// Ids interleave the camps (`claim-0-marin`, `claim-0-voss`, ...) and insertion order
/// deliberately *disagrees* with id order: within each twin pair the `voss` document is
/// inserted first but the `marin` id sorts first, so any ranking that leaks insertion
/// (or shard) order instead of the id tie-break reorders the context — and flips the
/// answer.
pub fn corpus() -> Corpus {
    let mut corpus = Corpus::new();
    for (i, claim) in CLAIMS.iter().enumerate() {
        corpus.push(
            Document::new(
                format!("claim-{i}-voss"),
                String::new(),
                claim.replace("{}", CAMP_VOSS),
            )
            .with_field("camp", "voss"),
        );
        corpus.push(
            Document::new(
                format!("claim-{i}-marin"),
                String::new(),
                claim.replace("{}", CAMP_MARIN),
            )
            .with_field("camp", "marin"),
        );
    }
    corpus
}

/// Prior knowledge: a third champion neither camp supports.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(&["meridian", "cup"], "Nadia Kovic", 0.08))
}

/// The complete scenario bundle.
pub fn scenario() -> Scenario {
    Scenario {
        name: "adversarial".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 6,
        prior: prior(),
        expected_full_context_answer: CAMP_MARIN.to_string(),
        expected_empty_context_answer: "Nadia Kovic".to_string(),
        description: "Contradictory near-duplicates: three documents assert Lara Voss \
                      won the Meridian Cup, three textual twins assert Tessa Marin did. \
                      Twin documents tie exactly under BM25, so ranking determinism and \
                      position effects decide — and explain — the answer."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn twin_documents_tie_exactly_and_ids_break_the_tie() {
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus()));
        let hits = searcher.search(QUESTION, 6);
        assert_eq!(hits.len(), 6);
        // Twin pairs carry bit-identical scores...
        for pair in hits.chunks(2) {
            assert_eq!(pair[0].score.to_bits(), pair[1].score.to_bits());
            // ...and within a pair the lexicographically smaller id ranks first, even
            // though the voss twin was inserted first.
            assert!(pair[0].doc_id < pair[1].doc_id);
            assert!(pair[0].doc_id.ends_with("marin"));
            assert!(pair[1].doc_id.ends_with("voss"));
        }
    }

    #[test]
    fn camps_are_balanced() {
        let c = corpus();
        let marin = c.iter().filter(|d| d.fields["camp"] == "marin").count();
        let voss = c.iter().filter(|d| d.fields["camp"] == "voss").count();
        assert_eq!(marin, 3);
        assert_eq!(voss, 3);
        for doc in c.iter() {
            let name = if doc.fields["camp"] == "marin" {
                CAMP_MARIN
            } else {
                CAMP_VOSS
            };
            assert!(doc.text.contains(name));
        }
    }

    #[test]
    fn prior_recalls_a_third_party() {
        assert_eq!(prior().recall(QUESTION).unwrap().answer, "Nadia Kovic");
    }
}
