//! Use case #2 — "Inconsistent Sources": the most recent US Open women's champion.
//!
//! The retrieved documents all describe US Open women's singles championships, but they
//! differ in recency. The paper's narrative: the full context yields "Coco Gauff"
//! (supported by the *last* context document, which covers 2023), while permutation
//! insights reveal that pushing that document towards the middle of the context makes
//! the model answer with the stale 2022 champion "Iga Swiatek".

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str = "Who is the most recent US Open women's singles champion?";

/// Document id of the up-to-date (2023) source.
pub const UP_TO_DATE_DOC: &str = "us-open-2023";

/// Document id of the strongest stale (2022) source.
pub const STALE_DOC: &str = "us-open-2022";

/// The corpus of championship documents.
///
/// The 2019–2022 documents share the question's "US Open women's singles champion"
/// phrasing, so BM25 ranks them ahead of the 2023 document, which is phrased around
/// "title" instead — that places the up-to-date source in the *last* context position,
/// exactly the situation the paper describes.
pub fn corpus() -> Corpus {
    let mut corpus = Corpus::new();
    corpus.push(
        Document::new(
            "us-open-2019",
            "US Open 2019",
            "Bianca Andreescu was crowned US Open women's singles champion in 2019, the most recent \
             Canadian winner of the tournament.",
        )
        .with_field("year", "2019")
        .with_field("champion", "Bianca Andreescu"),
    );
    corpus.push(
        Document::new(
            "us-open-2020",
            "US Open 2020",
            "Naomi Osaka was crowned US Open women's singles champion in 2020, her most recent major \
             win in New York.",
        )
        .with_field("year", "2020")
        .with_field("champion", "Naomi Osaka"),
    );
    corpus.push(
        Document::new(
            "us-open-2021",
            "US Open 2021",
            "Emma Raducanu was crowned US Open women's singles champion in 2021, the most recent \
             qualifier ever to win the title.",
        )
        .with_field("year", "2021")
        .with_field("champion", "Emma Raducanu"),
    );
    corpus.push(
        Document::new(
            STALE_DOC,
            "US Open 2022",
            "Iga Swiatek was crowned US Open women's singles champion in 2022, the most recent of her \
             hard court major championships.",
        )
        .with_field("year", "2022")
        .with_field("champion", "Iga Swiatek"),
    );
    corpus.push(
        Document::new(
            UP_TO_DATE_DOC,
            "US Open 2023",
            "Coco Gauff won the 2023 title in New York, defeating Aryna Sabalenka in the final to \
             claim her first major trophy.",
        )
        .with_field("year", "2023")
        .with_field("champion", "Coco Gauff"),
    );
    corpus
}

/// Prior knowledge: a stale memory of an earlier champion, modelling the hallucination
/// risk the retrieval context is meant to correct.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(
        &["us", "open", "women", "champion"],
        "Serena Williams",
        0.2,
    ))
}

/// The complete scenario bundle.
pub fn scenario() -> Scenario {
    Scenario {
        name: "us-open".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 5,
        prior: prior(),
        expected_full_context_answer: "Coco Gauff".to_string(),
        expected_empty_context_answer: "Serena Williams".to_string(),
        description: "Use case #2 (Inconsistent Sources): championship documents of mixed recency; \
                      the up-to-date document sits last in the context and out-of-date documents can \
                      mislead the model when it is buried in the middle."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn corpus_covers_2019_to_2023() {
        let c = corpus();
        assert_eq!(c.len(), 5);
        let years: Vec<&str> = c
            .iter()
            .filter_map(|d| d.fields.get("year").map(String::as_str))
            .collect();
        assert_eq!(years, vec!["2019", "2020", "2021", "2022", "2023"]);
    }

    #[test]
    fn up_to_date_document_ranks_last_under_bm25() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 5);
        assert_eq!(hits.len(), 5);
        assert_eq!(hits.last().unwrap().doc_id, UP_TO_DATE_DOC);
    }

    #[test]
    fn stale_document_ranks_before_the_up_to_date_one() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 5);
        let rank_of = |id: &str| hits.iter().position(|h| h.doc_id == id).unwrap();
        assert!(rank_of(STALE_DOC) < rank_of(UP_TO_DATE_DOC));
    }

    #[test]
    fn prior_recalls_a_stale_champion() {
        assert_eq!(prior().recall(QUESTION).unwrap().answer, "Serena Williams");
    }

    #[test]
    fn scenario_expectations() {
        let s = scenario();
        assert_eq!(s.expected_full_context_answer, "Coco Gauff");
        assert_eq!(s.expected_empty_context_answer, "Serena Williams");
    }
}
