//! Use case #3 — "Timelines": counting Player-of-the-Year awards 2010–2019.
//!
//! The documents form a timeline, one per season, naming that year's Tennis Player of
//! the Year: Rafael Nadal (2010, 2013, 2017, 2019), Novak Djokovic (2011, 2012, 2014,
//! 2015, 2018) and Andy Murray (2016). The paper's narrative: the full context yields
//! the expected answer 5; the combination counterfactual cites exactly the five
//! Djokovic-year documents; permutation insights show a stable answer with no rules.

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str =
    "How many times did Novak Djokovic win the Tennis Player of the Year award between 2010 and 2019?";

/// The award winner of each season covered by the timeline.
pub const WINNERS: &[(i32, &str)] = &[
    (2010, "Rafael Nadal"),
    (2011, "Novak Djokovic"),
    (2012, "Novak Djokovic"),
    (2013, "Rafael Nadal"),
    (2014, "Novak Djokovic"),
    (2015, "Novak Djokovic"),
    (2016, "Andy Murray"),
    (2017, "Rafael Nadal"),
    (2018, "Novak Djokovic"),
    (2019, "Rafael Nadal"),
];

/// Document id for one season of the timeline.
pub fn doc_id(year: i32) -> String {
    format!("player-of-the-year-{year}")
}

/// The years in which Djokovic won (the documents a correct citation must include).
pub fn djokovic_years() -> Vec<i32> {
    WINNERS
        .iter()
        .filter(|(_, name)| *name == "Novak Djokovic")
        .map(|(year, _)| *year)
        .collect()
}

/// The corpus: one document per season.
pub fn corpus() -> Corpus {
    let mut corpus = Corpus::new();
    for &(year, winner) in WINNERS {
        corpus.push(
            Document::new(
                doc_id(year),
                format!("Player of the Year {year}"),
                format!(
                    "{winner} was named Tennis Player of the Year for the {year} season, the award \
                     recognising the outstanding player of that year."
                ),
            )
            .with_field("year", year.to_string())
            .with_field("winner", winner),
        );
    }
    corpus
}

/// Prior knowledge: a miscounted memory (4 instead of 5), so the empty-context answer
/// differs from the grounded one and bottom-up counterfactuals have something to flip.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(
        &["djokovic", "player", "year", "award"],
        "4",
        0.3,
    ))
}

/// The complete scenario bundle.
pub fn scenario() -> Scenario {
    Scenario {
        name: "timeline".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 10,
        prior: prior(),
        expected_full_context_answer: "5".to_string(),
        expected_empty_context_answer: "4".to_string(),
        description:
            "Use case #3 (Timelines): one document per season 2010-2019; the correct count \
                      of Djokovic's awards is 5 and the counterfactual citation names exactly the \
                      five supporting seasons."
                .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn corpus_covers_every_season_once() {
        let c = corpus();
        assert_eq!(c.len(), 10);
        for &(year, winner) in WINNERS {
            let doc = c.get(&doc_id(year)).expect("season document present");
            assert_eq!(doc.fields.get("winner").unwrap(), winner);
            assert!(doc.text.contains(&year.to_string()));
        }
    }

    #[test]
    fn djokovic_won_five_times() {
        assert_eq!(djokovic_years(), vec![2011, 2012, 2014, 2015, 2018]);
    }

    #[test]
    fn all_ten_documents_are_retrievable() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 10);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn djokovic_documents_outrank_unrelated_seasons() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 10);
        let rank_of = |year: i32| {
            hits.iter()
                .position(|h| h.doc_id == doc_id(year))
                .unwrap_or_else(|| panic!("{year} not retrieved"))
        };
        // Djokovic seasons match the player name in the query, so they must outrank the
        // seasons that match neither the player nor the year range endpoints (2010 and
        // 2019 appear literally in the question and legitimately score higher).
        for djokovic_year in djokovic_years() {
            for unrelated_year in [2013, 2016, 2017] {
                assert!(
                    rank_of(djokovic_year) < rank_of(unrelated_year),
                    "{djokovic_year} should outrank {unrelated_year}"
                );
            }
        }
    }

    #[test]
    fn prior_miscounts() {
        assert_eq!(prior().recall(QUESTION).unwrap().answer, "4");
    }

    #[test]
    fn scenario_expectations() {
        let s = scenario();
        assert_eq!(s.retrieval_k, 10);
        assert_eq!(s.expected_full_context_answer, "5");
    }
}
