//! The [`Scenario`] bundle: everything needed to run one demonstration use case.

use rage_llm::knowledge::PriorKnowledge;
use rage_retrieval::Corpus;
use serde::{Deserialize, Serialize};

/// A complete demonstration scenario: corpus, question, retrieval depth, the model's
/// prior knowledge and the behaviour the paper describes for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Short machine-friendly name (`big-three`, `us-open`, `timeline`, ...).
    pub name: String,
    /// The natural-language question posed to the system (also the retrieval query).
    pub question: String,
    /// The knowledge corpus to index.
    pub corpus: Corpus,
    /// Retrieval depth `k` (number of sources pulled into the context).
    pub retrieval_k: usize,
    /// The model's prior (pre-trained) knowledge relevant to the question.
    pub prior: PriorKnowledge,
    /// The answer the paper reports for the full retrieved context.
    pub expected_full_context_answer: String,
    /// The answer the model gives with an empty context (prior knowledge only).
    pub expected_empty_context_answer: String,
    /// Free-text description used in reports and documentation.
    pub description: String,
}

impl Scenario {
    /// Number of documents in the scenario corpus.
    pub fn corpus_size(&self) -> usize {
        self.corpus.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::{big_three, timeline, us_open};

    #[test]
    fn all_scenarios_are_well_formed() {
        for scenario in [
            big_three::scenario(),
            us_open::scenario(),
            timeline::scenario(),
        ] {
            assert!(!scenario.name.is_empty());
            assert!(!scenario.question.is_empty());
            assert!(scenario.corpus_size() >= scenario.retrieval_k);
            assert!(!scenario.expected_full_context_answer.is_empty());
            assert!(!scenario.expected_empty_context_answer.is_empty());
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let names = [
            big_three::scenario().name,
            us_open::scenario().name,
            timeline::scenario().name,
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
