//! Use case #1 — "Ambiguous Answers": who is the best of The Big Three?
//!
//! The user retrieves documents ranking Novak Djokovic, Roger Federer and Rafael Nadal
//! under different metrics. The paper's narrative: with the full context the LLM answers
//! "Roger Federer" because the first-ranked document reports Federer's lead in total
//! match wins; combination insights reveal that this document appears in every
//! combination yielding that answer, and moving it to the second position flips the
//! answer to "Novak Djokovic".

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str =
    "Who is the best tennis player among Novak Djokovic, Roger Federer and Rafael Nadal?";

/// Document id of the match-wins ranking (the counterfactually decisive source).
pub const MATCH_WINS_DOC: &str = "ranking-match-wins";

/// The corpus of ranking documents.
///
/// The match-wins document is written to be the most relevant to the question under
/// BM25 (it repeats the "best tennis player" phrasing and names all three players), so
/// it lands in the first context position — the premise of the paper's narrative.
pub fn corpus() -> Corpus {
    let mut corpus = Corpus::new();
    corpus.push(
        Document::new(
            MATCH_WINS_DOC,
            "Total match wins",
            "Roger Federer ranks first in total match wins with 369 victories, a record many fans \
             cite when naming the best tennis player among Novak Djokovic, Roger Federer and Rafael Nadal.",
        )
        .with_field("metric", "match_wins")
        .with_field("ranked_first", "Roger Federer"),
    );
    corpus.push(
        Document::new(
            "ranking-grand-slams",
            "Grand slam titles",
            "Novak Djokovic holds the most grand slam titles with 24, ahead of Rafael Nadal with 22 \
             and Roger Federer with 20.",
        )
        .with_field("metric", "grand_slams")
        .with_field("ranked_first", "Novak Djokovic"),
    );
    corpus.push(
        Document::new(
            "ranking-weeks-no1",
            "Weeks ranked number one",
            "Novak Djokovic leads the weeks ranked number one statistic, spending over 400 weeks at \
             the top of the tennis rankings.",
        )
        .with_field("metric", "weeks_no1")
        .with_field("ranked_first", "Novak Djokovic"),
    );
    corpus.push(
        Document::new(
            "ranking-clay",
            "Clay court dominance",
            "Rafael Nadal is the greatest clay court competitor in history, winning the French Open \
             championship fourteen times.",
        )
        .with_field("metric", "clay_titles")
        .with_field("ranked_first", "Rafael Nadal"),
    );
    corpus.push(
        Document::new(
            "ranking-tour-finals",
            "Tour finals titles",
            "Novak Djokovic won the most season ending tour finals trophies of the trio, lifting the \
             trophy seven times.",
        )
        .with_field("metric", "tour_finals")
        .with_field("ranked_first", "Novak Djokovic"),
    );
    corpus
}

/// Prior (pre-trained) knowledge the simulated model holds about the question.
///
/// The paper's user "expects that Novak Djokovic … might be the LLM's choice"; giving
/// the model a weak Djokovic prior reproduces both that expectation (it is the
/// empty-context answer) and the surprise when the full context answers Federer.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(
        &["best", "tennis", "player"],
        "Novak Djokovic",
        0.2,
    ))
}

/// The complete scenario bundle.
pub fn scenario() -> Scenario {
    Scenario {
        name: "big-three".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 5,
        prior: prior(),
        expected_full_context_answer: "Roger Federer".to_string(),
        expected_empty_context_answer: "Novak Djokovic".to_string(),
        description: "Use case #1 (Ambiguous Answers): subjective ranking of The Big Three, \
                      answered differently depending on which ranking documents are present and \
                      where they sit in the context."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    #[test]
    fn corpus_has_five_ranking_documents() {
        let c = corpus();
        assert_eq!(c.len(), 5);
        assert!(c.get(MATCH_WINS_DOC).is_some());
    }

    #[test]
    fn match_wins_document_ranks_first_under_bm25() {
        let c = corpus();
        let searcher = Searcher::new(IndexBuilder::default().build(&c));
        let hits = searcher.search(QUESTION, 5);
        assert_eq!(hits.len(), 5, "all five documents should be retrieved");
        assert_eq!(hits[0].doc_id, MATCH_WINS_DOC);
    }

    #[test]
    fn majority_of_documents_favour_djokovic() {
        let c = corpus();
        let djokovic_docs = c
            .iter()
            .filter(|d| d.fields.get("ranked_first").map(String::as_str) == Some("Novak Djokovic"))
            .count();
        assert_eq!(djokovic_docs, 3);
    }

    #[test]
    fn prior_recalls_djokovic() {
        let m = prior().recall(QUESTION).unwrap();
        assert_eq!(m.answer, "Novak Djokovic");
    }

    #[test]
    fn scenario_is_consistent_with_corpus() {
        let s = scenario();
        assert_eq!(s.retrieval_k, 5);
        assert_eq!(s.corpus_size(), 5);
        assert_eq!(s.expected_full_context_answer, "Roger Federer");
    }
}
