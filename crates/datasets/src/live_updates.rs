//! Live-updates scenario: a breaking-news corpus built to be *mutated*.
//!
//! Every other scenario in this crate is a frozen corpus. This one ships two
//! halves: a seed corpus of past "Coastal Classic" champions (2020–2024) and a
//! scripted sequence of corpus mutations — a breaking 2025 result lands, gets
//! corrected, and is finally retracted — with the grounded answer the pipeline
//! must give once each step is applied. The question is a *most recent* one, so
//! the answer tracks the latest championship document alive in the corpus:
//! add a newer result and the answer moves; remove it and the answer falls
//! back to the previous season.
//!
//! Consumers replay the script through whatever mutation surface they are
//! exercising — [`Corpus`] edits plus a rebuild, the incremental
//! `ShardedIndex` delta path, the report `Service`, or the HTTP
//! `/corpus/docs` endpoints — and assert the answer after every step matches
//! [`ScriptStep::expected_answer`]. That makes the scenario the standard
//! fixture for "does a corpus mutation actually invalidate what is served?"
//! tests.

use rage_llm::knowledge::{PriorFact, PriorKnowledge};
use rage_retrieval::{Corpus, Document};

use crate::scenario::Scenario;

/// The question posed to the system.
pub const QUESTION: &str = "Who is the most recent Coastal Classic champion?";

/// Document id of the breaking-news document the script adds, corrects and
/// finally retracts.
pub const BREAKING_DOC: &str = "coastal-classic-2025";

/// Document id of the newest champion in the *seed* corpus — the answer both
/// before the script starts and after the breaking result is retracted.
pub const SEED_LATEST_DOC: &str = "coastal-classic-2024";

/// The champions of each season covered by the seed corpus.
pub const SEED_CHAMPIONS: &[(i32, &str)] = &[
    (2020, "Sofia Kenin"),
    (2021, "Ashleigh Barty"),
    (2022, "Ons Jabeur"),
    (2023, "Marketa Vondrousova"),
    (2024, "Qinwen Zheng"),
];

/// One corpus mutation, expressed in dataset terms so every mutation surface
/// (plain [`Corpus`], incremental index, report service, HTTP endpoint) can
/// replay it through its own API.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Add a brand-new document (fails on surfaces that reject duplicates if
    /// the id is already live).
    Add(Document),
    /// Replace the live document carrying the same id.
    Update(Document),
    /// Remove the document with this id.
    Remove(String),
}

impl Mutation {
    /// The id of the document this mutation touches.
    pub fn doc_id(&self) -> &str {
        match self {
            Mutation::Add(doc) | Mutation::Update(doc) => &doc.id,
            Mutation::Remove(id) => id,
        }
    }

    /// Replay this mutation against a plain [`Corpus`].
    ///
    /// Returns `false` when the operation does not apply (adding a live id,
    /// updating or removing a missing one) and leaves the corpus untouched, so
    /// callers can assert a well-formed script applies cleanly end to end.
    pub fn apply_to(&self, corpus: &mut Corpus) -> bool {
        match self {
            Mutation::Add(doc) => corpus.try_push(doc.clone()).is_ok(),
            Mutation::Update(doc) => corpus.replace(doc.clone()).is_ok(),
            Mutation::Remove(id) => corpus.remove(id).is_some(),
        }
    }
}

/// One step of the mutation script: the mutation to apply, the grounded
/// answer to [`QUESTION`] once it has been applied, and the newsroom story it
/// models.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// The corpus mutation to apply.
    pub mutation: Mutation,
    /// The full-context answer the pipeline must give *after* this step.
    pub expected_answer: &'static str,
    /// What just happened in the newsroom (used by walkthroughs and logs).
    pub note: &'static str,
}

/// A champion document, phrased like the seed corpus so BM25 treats scripted
/// documents and seed documents alike.
fn champion_doc(year: i32, champion: &str, tail: &str) -> Document {
    Document::new(
        format!("coastal-classic-{year}"),
        format!("Coastal Classic {year}"),
        format!("{champion} was crowned Coastal Classic champion in {year}{tail}"),
    )
    .with_field("year", year.to_string())
    .with_field("champion", champion)
}

/// The seed corpus: one championship document per season 2020–2024.
pub fn corpus() -> Corpus {
    let tails = [
        ", lifting the trophy in her first final by the bay.",
        ", adding the seaside title to her grass season.",
        ", the first champion from north Africa.",
        ", saving a match point along the way.",
        ", her maiden title on an outdoor hard court.",
    ];
    let mut corpus = Corpus::new();
    for (&(year, champion), tail) in SEED_CHAMPIONS.iter().zip(tails) {
        corpus.push(champion_doc(year, champion, tail));
    }
    corpus
}

/// The scripted mutation sequence: a breaking result lands, is corrected, and
/// is finally retracted.
pub fn mutation_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep {
            mutation: Mutation::Add(champion_doc(
                2025,
                "Mirra Andreeva",
                ", according to a provisional wire flash.",
            )),
            expected_answer: "Mirra Andreeva",
            note: "A breaking 2025 result lands: the wire names Mirra Andreeva.",
        },
        ScriptStep {
            mutation: Mutation::Update(champion_doc(
                2025,
                "Emma Navarro",
                ", the most recent final, after a scoring review.",
            )),
            expected_answer: "Emma Navarro",
            note: "Correction: the review awards the 2025 final to Emma Navarro.",
        },
        ScriptStep {
            mutation: Mutation::Remove(BREAKING_DOC.to_string()),
            expected_answer: "Qinwen Zheng",
            note: "Retraction: the 2025 result is withdrawn pending appeal.",
        },
    ]
}

/// Prior knowledge: a stale memory of a champion from before the seed corpus,
/// so the empty-context answer differs from every grounded one.
pub fn prior() -> PriorKnowledge {
    PriorKnowledge::empty().with_fact(PriorFact::new(
        &["coastal", "classic", "champion"],
        "Naomi Osaka",
        0.2,
    ))
}

/// The complete scenario bundle (the *seed* corpus; apply
/// [`mutation_script`] to exercise the live-update behaviour).
pub fn scenario() -> Scenario {
    Scenario {
        name: "live-updates".to_string(),
        question: QUESTION.to_string(),
        corpus: corpus(),
        retrieval_k: 5,
        prior: prior(),
        expected_full_context_answer: "Qinwen Zheng".to_string(),
        expected_empty_context_answer: "Naomi Osaka".to_string(),
        description: "Live updates: a champions corpus paired with a scripted mutation \
                      sequence (breaking result, correction, retraction); the most-recent \
                      answer must track every corpus version."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{IndexBuilder, Searcher};

    fn search_ids(corpus: &Corpus, k: usize) -> Vec<String> {
        let searcher = Searcher::new(IndexBuilder::default().build(corpus));
        searcher
            .search(QUESTION, k)
            .into_iter()
            .map(|h| h.doc_id)
            .collect()
    }

    #[test]
    fn seed_corpus_covers_2020_to_2024() {
        let c = corpus();
        assert_eq!(c.len(), 5);
        for &(year, champion) in SEED_CHAMPIONS {
            let doc = c
                .get(&format!("coastal-classic-{year}"))
                .expect("season doc");
            assert_eq!(doc.fields.get("champion").unwrap(), champion);
            assert!(doc.text.contains(&year.to_string()));
        }
        assert!(c.get(BREAKING_DOC).is_none());
    }

    #[test]
    fn every_seed_document_is_retrieved() {
        let ids = search_ids(&corpus(), 5);
        assert_eq!(ids.len(), 5);
        assert!(ids.contains(&SEED_LATEST_DOC.to_string()));
    }

    #[test]
    fn script_applies_cleanly_and_keeps_the_breaking_doc_retrievable() {
        let mut c = corpus();
        let script = mutation_script();
        assert_eq!(script.len(), 3);

        // Step 1: the breaking result lands and must make the context.
        assert!(script[0].mutation.apply_to(&mut c));
        assert_eq!(c.len(), 6);
        assert!(search_ids(&c, 5).contains(&BREAKING_DOC.to_string()));
        assert!(c.get(BREAKING_DOC).unwrap().text.contains("Mirra Andreeva"));

        // Step 2: the correction replaces the same document in place.
        assert!(script[1].mutation.apply_to(&mut c));
        assert_eq!(c.len(), 6);
        assert!(search_ids(&c, 5).contains(&BREAKING_DOC.to_string()));
        assert!(c.get(BREAKING_DOC).unwrap().text.contains("Emma Navarro"));

        // Step 3: the retraction restores the seed corpus document set.
        assert!(script[2].mutation.apply_to(&mut c));
        assert_eq!(c.len(), 5);
        assert!(c.get(BREAKING_DOC).is_none());
        assert!(search_ids(&c, 5).contains(&SEED_LATEST_DOC.to_string()));
    }

    #[test]
    fn misapplied_mutations_report_failure_and_leave_the_corpus_alone() {
        let mut c = corpus();
        let add_live = Mutation::Add(champion_doc(2024, "Nobody", "."));
        let update_missing = Mutation::Update(champion_doc(2031, "Nobody", "."));
        let remove_missing = Mutation::Remove("coastal-classic-2031".to_string());
        for mutation in [&add_live, &update_missing, &remove_missing] {
            assert!(!mutation.apply_to(&mut c), "{mutation:?}");
        }
        assert_eq!(c, corpus());
    }

    #[test]
    fn script_touches_only_the_breaking_doc() {
        for step in mutation_script() {
            assert_eq!(step.mutation.doc_id(), BREAKING_DOC);
            assert!(!step.note.is_empty());
        }
    }

    #[test]
    fn prior_recalls_a_stale_champion() {
        assert_eq!(prior().recall(QUESTION).unwrap().answer, "Naomi Osaka");
    }

    #[test]
    fn scenario_expectations() {
        let s = scenario();
        assert_eq!(s.retrieval_k, 5);
        assert_eq!(s.expected_full_context_answer, "Qinwen Zheng");
        assert_eq!(s.expected_empty_context_answer, "Naomi Osaka");
    }
}
