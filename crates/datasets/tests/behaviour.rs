//! Pins the end-to-end behaviour of the three stress scenarios against the standard
//! model configuration (seeded retrieval + prior-seeded `SimLlm`), so the
//! `expected_full_context_answer` fields stay honest.
//!
//! These tests drive the same path the report pipeline uses — BM25 retrieval, then one
//! `SimLlm` generation over the retrieved sources in rank order — without depending on
//! `rage-core` (which depends on this crate).

use rage_datasets::entity_registry::{self, EntityRegistryConfig};
use rage_datasets::large_corpus::{self, LargeCorpusConfig};
use rage_datasets::{adversarial, multi_hop, Scenario};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::{LanguageModel, LlmInput, SourceText};
use rage_retrieval::{IndexBuilder, Searcher};

/// Retrieval order and model answer for a scenario, optionally with some documents
/// removed from the corpus before indexing.
fn retrieval_and_answer(scenario: &Scenario, drop_ids: &[&str]) -> (Vec<String>, String) {
    let mut corpus = rage_retrieval::Corpus::new();
    for doc in scenario.corpus.iter() {
        if !drop_ids.contains(&doc.id.as_str()) {
            corpus.push(doc.clone());
        }
    }
    let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let hits = searcher.search(&scenario.question, scenario.retrieval_k);
    let order: Vec<String> = hits.iter().map(|h| h.doc_id.clone()).collect();
    let sources: Vec<SourceText> = hits
        .iter()
        .map(|h| SourceText::new(h.doc_id.clone(), h.document.full_text()))
        .collect();
    let generation = llm.generate(&LlmInput::new(scenario.question.clone(), sources));
    (order, generation.answer)
}

#[test]
fn multi_hop_composes_bridge_and_link() {
    let scenario = multi_hop::scenario();
    let (order, answer) = retrieval_and_answer(&scenario, &[]);
    // The bridge opens the context, the link closes it, and the answer is the coach —
    // an entity that only the link document mentions, selected because the bridge
    // names his player as the champion.
    assert_eq!(order.first().unwrap(), multi_hop::BRIDGE_DOC);
    assert_eq!(order.last().unwrap(), multi_hop::LINK_DOC);
    assert_eq!(answer, scenario.expected_full_context_answer);
    assert_eq!(answer, "Daniel Okafor");
}

#[test]
fn multi_hop_link_removal_flips_to_the_distractor_coach() {
    let scenario = multi_hop::scenario();
    let (_, answer) = retrieval_and_answer(&scenario, &[multi_hop::LINK_DOC]);
    assert_eq!(answer, "Viktor Brandt");
}

#[test]
fn multi_hop_without_any_coach_falls_back_to_the_champion() {
    let scenario = multi_hop::scenario();
    let (_, answer) =
        retrieval_and_answer(&scenario, &[multi_hop::LINK_DOC, multi_hop::DISTRACTOR_DOC]);
    assert_eq!(answer, "Mira Solis");
}

#[test]
fn multi_hop_empty_context_uses_the_stale_prior() {
    let scenario = multi_hop::scenario();
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let generation = llm.generate(&LlmInput::without_context(scenario.question.clone()));
    assert_eq!(generation.answer, scenario.expected_empty_context_answer);
}

#[test]
fn adversarial_answer_follows_the_canonical_tie_broken_layout() {
    let scenario = adversarial::scenario();
    let (order, answer) = retrieval_and_answer(&scenario, &[]);
    // Twin claims tie exactly, ids break the ties, and the camp holding the prime
    // position wins the contradiction.
    assert_eq!(order[0], "claim-1-marin");
    assert_eq!(order[1], "claim-1-voss");
    assert_eq!(answer, scenario.expected_full_context_answer);
    assert_eq!(answer, adversarial::CAMP_MARIN);
}

#[test]
fn adversarial_removing_the_winning_camp_flips_the_answer() {
    let scenario = adversarial::scenario();
    let (_, answer) = retrieval_and_answer(
        &scenario,
        &["claim-0-marin", "claim-1-marin", "claim-2-marin"],
    );
    assert_eq!(answer, adversarial::CAMP_VOSS);
}

#[test]
fn entity_registry_affiliation_resolves_to_the_canonical_name() {
    let scenario = entity_registry::scenario(EntityRegistryConfig::default());
    assert!(scenario.corpus_size() >= 4096);
    let (order, answer) = retrieval_and_answer(&scenario, &[]);
    assert_eq!(order.len(), scenario.retrieval_k);
    // The target record ranks first and the model reads its canonical name off it.
    let target = entity_registry::org_record(scenario.corpus_size() / 2);
    assert_eq!(order[0], target.doc_id);
    assert_eq!(answer, scenario.expected_full_context_answer);
    assert_eq!(answer, target.canonical);
}

#[test]
fn entity_registry_empty_context_uses_the_prior() {
    let scenario = entity_registry::scenario(EntityRegistryConfig::default());
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let generation = llm.generate(&LlmInput::without_context(scenario.question.clone()));
    assert_eq!(generation.answer, scenario.expected_empty_context_answer);
}

#[test]
fn large_corpus_needles_are_found_and_answered_at_full_size() {
    let scenario = large_corpus::scenario(LargeCorpusConfig::default());
    assert!(scenario.corpus_size() >= 2048);
    let (order, answer) = retrieval_and_answer(&scenario, &[]);
    assert_eq!(order.len(), scenario.retrieval_k);
    assert!(order.iter().all(|id| id.starts_with("synthetic-")));
    assert_eq!(answer, scenario.expected_full_context_answer);
    assert_eq!(answer, "Alice Archer");
}
