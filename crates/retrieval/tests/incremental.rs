//! The incremental-equivalence suite: a mutated [`ShardedIndex`] must be
//! indistinguishable — identical rankings, bit-identical scores, identical global
//! statistics — from a fresh [`ShardedIndexBuilder::build`] over the same live
//! document set, at every step of any interleaving of add/remove/update/compact, for
//! every shard count.
//!
//! This is the mutation half of the sharding contract; `crates/retrieval/tests/
//! sharding.rs` pins the read-only half and `crates/report/tests/` prove both survive
//! the whole explanation engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rage_retrieval::{
    corpus_fingerprint, Corpus, Document, IndexBuilder, Searcher, ShardedIndex,
    ShardedIndexBuilder, ShardedSearcher,
};

const SHARD_COUNTS: &[usize] = &[1, 2, 3, 7, 16];

const VOCABULARY: &[&str] = &[
    "grand", "slam", "title", "match", "win", "clay", "court", "rank", "week", "final", "serve",
    "rally", "season", "open", "tour", "point", "record", "champion",
];

fn random_text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(3..9);
    let words: Vec<&str> = (0..len)
        .map(|_| VOCABULARY[rng.gen_range(0..VOCABULARY.len())])
        .collect();
    words.join(" ")
}

fn random_corpus(seed: u64, num_docs: usize) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Corpus::new();
    for i in 0..num_docs {
        corpus.push(Document::new(
            format!("doc-{:03}", num_docs - 1 - i),
            String::new(),
            random_text(&mut rng),
        ));
    }
    corpus
}

fn random_query(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..5);
    let words: Vec<&str> = (0..len)
        .map(|_| VOCABULARY[rng.gen_range(0..VOCABULARY.len())])
        .collect();
    words.join(" ")
}

/// Assert the mutated index is bit-equal to a from-scratch rebuild of `mirror` (and,
/// transitively, to a single unsharded index): rankings, score bits, `score_document`
/// bits and the global statistics.
fn assert_equals_rebuild(index: &ShardedIndex, mirror: &Corpus, shards: usize, context: &str) {
    let live = ShardedSearcher::new(index.clone());
    let rebuilt = ShardedSearcher::new(ShardedIndexBuilder::new(shards).build(mirror));
    let single = Searcher::new(IndexBuilder::default().build(mirror));

    assert_eq!(index.num_docs(), mirror.len(), "{context}: num_docs");
    assert_eq!(
        index.avg_doc_len().to_bits(),
        rebuilt.index().avg_doc_len().to_bits(),
        "{context}: avg_doc_len bits"
    );
    assert_eq!(
        index.corpus_version().fingerprint,
        corpus_fingerprint(mirror),
        "{context}: fingerprint"
    );
    for term in VOCABULARY {
        assert_eq!(
            index.doc_freq(term),
            rebuilt.index().doc_freq(term),
            "{context}: doc_freq({term})"
        );
    }

    let mut rng = StdRng::seed_from_u64(0x5eed ^ mirror.len() as u64 ^ (shards as u64) << 32);
    for _ in 0..4 {
        let query = random_query(&mut rng);
        for k in [1, 3, mirror.len() / 2 + 1, mirror.len() + 5] {
            let a = rebuilt.search(&query, k);
            let b = live.search(&query, k);
            let c = single.search(&query, k);
            assert_eq!(a.len(), b.len(), "{context}: length for {query:?} k={k}");
            for ((x, y), z) in a.iter().zip(&b).zip(&c) {
                assert_eq!(x.doc_id, y.doc_id, "{context}: order for {query:?}");
                assert_eq!(x.rank, y.rank, "{context}: rank for {query:?}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{context}: score bits for {query:?} on {}",
                    x.doc_id
                );
                assert_eq!(x.document, y.document, "{context}: document for {query:?}");
                assert_eq!(x.doc_id, z.doc_id, "{context}: single order for {query:?}");
                assert_eq!(
                    x.score.to_bits(),
                    z.score.to_bits(),
                    "{context}: single score bits for {query:?}"
                );
            }
        }
        for doc in mirror.iter() {
            let a = rebuilt.score_document(&query, &doc.id).unwrap();
            let b = live.score_document(&query, &doc.id).unwrap();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{context}: score_document bits for {query:?} on {}",
                doc.id
            );
        }
    }
}

#[test]
fn property_random_mutation_interleavings_equal_rebuild_at_every_step() {
    for &shards in SHARD_COUNTS {
        let mut mirror = random_corpus(77, 24);
        let mut index = ShardedIndexBuilder::new(shards).build(&mirror);
        let mut rng = StdRng::seed_from_u64(0xFACE ^ shards as u64);
        let mut next_id = 0usize;
        let mut expected_version = 1u64;

        assert_equals_rebuild(&index, &mirror, shards, &format!("shards={shards} initial"));
        for step in 0..30 {
            let context = format!("shards={shards} step={step}");
            match rng.gen_range(0..10) {
                // add (weight 3)
                0..=2 => {
                    let doc = Document::new(
                        format!("new-{next_id:03}"),
                        String::new(),
                        random_text(&mut rng),
                    );
                    next_id += 1;
                    mirror.push(doc.clone());
                    index.add(doc).unwrap();
                    expected_version += 1;
                }
                // remove (weight 3)
                3..=5 if !mirror.is_empty() => {
                    let victim = mirror.documents()[rng.gen_range(0..mirror.len())]
                        .id
                        .clone();
                    let removed = index.remove(&victim).unwrap();
                    let mirrored = mirror.remove(&victim).unwrap();
                    assert_eq!(removed, mirrored, "{context}: removed document");
                    expected_version += 1;
                }
                // update (weight 3)
                6..=8 if !mirror.is_empty() => {
                    let target = mirror.documents()[rng.gen_range(0..mirror.len())]
                        .id
                        .clone();
                    let doc = Document::new(target, String::new(), random_text(&mut rng));
                    index.update(doc.clone()).unwrap();
                    mirror.replace(doc).unwrap();
                    expected_version += 1;
                }
                // explicit compaction (weight 1, plus the no-op arms above)
                _ => index.compact(),
            }
            assert_eq!(
                index.corpus_version().version,
                expected_version,
                "{context}: version"
            );
            assert_equals_rebuild(&index, &mirror, shards, &context);
        }
    }
}

#[test]
fn removing_every_document_guards_the_avg_doc_len_zero_path() {
    for &shards in SHARD_COUNTS {
        let mirror = random_corpus(88, 6);
        let mut index = ShardedIndexBuilder::new(shards).build(&mirror);
        let ids: Vec<String> = mirror.iter().map(|d| d.id.clone()).collect();
        let mut remaining = mirror.clone();
        for id in &ids {
            index.remove(id).unwrap();
            remaining.remove(id).unwrap();
            assert_equals_rebuild(
                &index,
                &remaining,
                shards,
                &format!("shards={shards} removed={id}"),
            );
        }
        assert_eq!(index.num_docs(), 0, "shards={shards}");
        assert_eq!(
            index.avg_doc_len().to_bits(),
            0f64.to_bits(),
            "shards={shards}"
        );
        assert!(ShardedSearcher::new(index.clone())
            .search("grand slam", 5)
            .is_empty());

        // The empty index accepts new documents and matches a fresh build again.
        let reborn = Document::new("reborn", "", "grand slam champion record");
        index.add(reborn.clone()).unwrap();
        let mut mirror = Corpus::new();
        mirror.push(reborn);
        assert_equals_rebuild(&index, &mirror, shards, &format!("shards={shards} reborn"));
    }
}

#[test]
fn mutations_on_mostly_empty_shards_stay_exact() {
    // 4 documents across 16 shards: at least 12 shards start empty, and additions
    // land in empty shards first (the least-loaded placement rule).
    let mut mirror = random_corpus(99, 4);
    let mut index = ShardedIndexBuilder::new(16).build(&mirror);
    for i in 0..6 {
        let doc = Document::new(format!("fill-{i}"), String::new(), "serve rally point");
        mirror.push(doc.clone());
        index.add(doc).unwrap();
        assert_equals_rebuild(&index, &mirror, 16, &format!("empty-shards add {i}"));
    }
    let victim = mirror.documents()[0].id.clone();
    index.remove(&victim).unwrap();
    mirror.remove(&victim).unwrap();
    assert_equals_rebuild(&index, &mirror, 16, "empty-shards remove");
    index.compact();
    assert_equals_rebuild(&index, &mirror, 16, "empty-shards compacted");
}

#[test]
fn compaction_folds_tombstones_and_deltas_without_changing_results() {
    let mut mirror = random_corpus(111, 40);
    let mut index = ShardedIndexBuilder::new(3).build(&mirror);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    // Enough removals to trip the tombstone-ratio auto-compaction on some shards.
    for _ in 0..18 {
        let victim = mirror.documents()[rng.gen_range(0..mirror.len())]
            .id
            .clone();
        index.remove(&victim).unwrap();
        mirror.remove(&victim).unwrap();
    }
    for i in 0..10 {
        let doc = Document::new(format!("delta-{i}"), String::new(), random_text(&mut rng));
        mirror.push(doc.clone());
        index.add(doc).unwrap();
    }
    assert_equals_rebuild(&index, &mirror, 3, "before explicit compaction");
    let version = index.corpus_version();
    index.compact();
    assert_eq!(
        index.corpus_version(),
        version,
        "compaction must not move the version"
    );
    assert_equals_rebuild(&index, &mirror, 3, "after explicit compaction");
}
