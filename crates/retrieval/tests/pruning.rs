//! The pruning-equivalence suite: the dynamically pruned production query path must
//! be indistinguishable — identical result sets, identical orderings, bit-identical
//! scores — from exhaustive dense scoring, over seeded corpora, every shard count,
//! random mutation interleavings, and `k` up to and beyond the corpus size.
//!
//! This is the exactness half of the pruning contract (the speed half is measured by
//! `crates/bench/benches/retrieval.rs`). The pruned path takes MaxScore-style
//! shortcuts — admissible per-term upper bounds, OR→AND switching, a cross-segment
//! threshold — and this suite pins that none of them ever shows up in the output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rage_retrieval::searcher::RankedSource;
use rage_retrieval::{
    Bm25Params, Corpus, Document, IndexBuilder, Searcher, ShardedIndexBuilder, ShardedSearcher,
};

const SHARD_COUNTS: &[usize] = &[1, 2, 3, 7, 16];

/// A skewed vocabulary: the leading words appear in most documents (long postings
/// lists the pruner wants to skip), the trailing words are rare (high-idf terms that
/// dominate the bounds). That mix is what makes pruning decisions non-trivial.
const COMMON: &[&str] = &["the", "data", "query", "system", "model", "result"];
const MID: &[&str] = &[
    "index", "shard", "score", "rank", "merge", "budget", "engine", "search",
];
const RARE: &[&str] = &[
    "zanzibar",
    "quasar",
    "obelisk",
    "palindrome",
    "rhubarb",
    "katabatic",
    "vermilion",
    "syzygy",
];

fn random_text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(4..40);
    let words: Vec<&str> = (0..len)
        .map(|_| {
            let roll = rng.gen_range(0..10);
            if roll < 6 {
                COMMON[rng.gen_range(0..COMMON.len())]
            } else if roll < 9 {
                MID[rng.gen_range(0..MID.len())]
            } else {
                RARE[rng.gen_range(0..RARE.len())]
            }
        })
        .collect();
    words.join(" ")
}

fn random_corpus(seed: u64, num_docs: usize) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Corpus::new();
    for i in 0..num_docs {
        corpus.push(Document::new(
            format!("doc-{i:04}"),
            String::new(),
            random_text(&mut rng),
        ));
    }
    corpus
}

/// Queries that stress distinct pruning regimes: single rare term (one essential
/// list), all-common (every list long, θ rises fast), mixed, duplicated terms
/// (repeat accumulation), and an unknown term (df = 0 skip).
fn queries() -> Vec<String> {
    vec![
        "quasar".to_string(),
        "the data query system".to_string(),
        "zanzibar index the".to_string(),
        "score score score shard".to_string(),
        "rhubarb syzygy vermilion".to_string(),
        "data nonexistentterm quasar".to_string(),
    ]
}

fn assert_same_ranking(oracle: &[RankedSource], pruned: &[RankedSource], context: &str) {
    assert_eq!(oracle.len(), pruned.len(), "{context}: result length");
    for (o, p) in oracle.iter().zip(pruned) {
        assert_eq!(o.doc_id, p.doc_id, "{context}: order");
        assert_eq!(o.rank, p.rank, "{context}: rank of {}", o.doc_id);
        assert_eq!(
            o.score.to_bits(),
            p.score.to_bits(),
            "{context}: score bits of {}",
            o.doc_id
        );
        assert_eq!(
            o.document, p.document,
            "{context}: document of {}",
            o.doc_id
        );
    }
}

fn check_sharded(searcher: &ShardedSearcher, n: usize, context: &str) {
    for query in queries() {
        for k in [1, 3, 10, n / 2 + 1, n, n + 13] {
            let oracle = searcher.try_search_exhaustive(&query, k).unwrap();
            let pruned = searcher.try_search(&query, k).unwrap();
            assert_same_ranking(&oracle, &pruned, &format!("{context} {query:?} k={k}"));
        }
    }
}

#[test]
fn property_pruned_equals_exhaustive_across_shard_counts() {
    for &shards in SHARD_COUNTS {
        for (seed, n) in [(41, 30), (42, 120), (43, 500)] {
            let corpus = random_corpus(seed, n);
            let searcher = ShardedSearcher::new(ShardedIndexBuilder::new(shards).build(&corpus));
            check_sharded(&searcher, n, &format!("shards={shards} n={n}"));
        }
    }
}

#[test]
fn property_single_index_pruned_equals_exhaustive() {
    for (seed, n) in [(7, 60), (8, 400)] {
        let corpus = random_corpus(seed, n);
        for params in [Bm25Params::default(), Bm25Params::robertson()] {
            let searcher =
                Searcher::new(IndexBuilder::default().build(&corpus)).with_params(params);
            for query in queries() {
                for k in [1, 5, n / 2 + 1, n + 13] {
                    let oracle = searcher.try_search_exhaustive(&query, k).unwrap();
                    let pruned = searcher.try_search(&query, k).unwrap();
                    assert_same_ranking(
                        &oracle,
                        &pruned,
                        &format!("single n={n} {params:?} {query:?} k={k}"),
                    );
                }
            }
        }
    }
}

#[test]
fn property_pruned_equals_exhaustive_under_mutation_interleavings() {
    // Random add/remove/update/compact interleavings populate tombstones and delta
    // segments; the pruned path must stay exact at every step. (The rebuild
    // equivalence of the mutated index itself is pinned by tests/incremental.rs.)
    for &shards in [1, 3, 16].iter() {
        let mut searcher =
            ShardedSearcher::new(ShardedIndexBuilder::new(shards).build(&random_corpus(1234, 50)));
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ shards as u64);
        let mut next_id = 0usize;
        let mut live_ids: Vec<String> = (0..50).map(|i| format!("doc-{i:04}")).collect();

        for step in 0..25 {
            match rng.gen_range(0..8) {
                0..=2 => {
                    let id = format!("new-{next_id:03}");
                    next_id += 1;
                    let text = random_text(&mut rng);
                    searcher
                        .index_mut()
                        .add(Document::new(id.clone(), String::new(), text))
                        .unwrap();
                    live_ids.push(id);
                }
                3..=4 if !live_ids.is_empty() => {
                    let victim = live_ids.swap_remove(rng.gen_range(0..live_ids.len()));
                    searcher.index_mut().remove(&victim).unwrap();
                }
                5..=6 if !live_ids.is_empty() => {
                    let target = live_ids[rng.gen_range(0..live_ids.len())].clone();
                    let text = random_text(&mut rng);
                    searcher
                        .index_mut()
                        .update(Document::new(target, String::new(), text))
                        .unwrap();
                }
                _ => searcher.index_mut().compact(),
            }
            let n = searcher.index().num_docs();
            check_sharded(&searcher, n.max(1), &format!("shards={shards} step={step}"));
        }
    }
}

#[test]
fn tie_saturated_corpora_rank_identically() {
    // Dozens of documents with byte-identical text produce dense score ties at every
    // heap boundary; ordering must come out of the id tie-break alone, identically on
    // both paths, for every shard count.
    let mut corpus = Corpus::new();
    for i in [23, 7, 41, 2, 38, 15, 30, 9, 47, 4, 19, 33, 11, 26, 44, 0] {
        corpus.push(Document::new(
            format!("tie-{i:02}"),
            String::new(),
            "quasar index data query",
        ));
    }
    for i in 0..4 {
        corpus.push(Document::new(
            format!("heavy-{i}"),
            String::new(),
            "quasar quasar index data query",
        ));
    }
    for &shards in SHARD_COUNTS {
        let searcher = ShardedSearcher::new(ShardedIndexBuilder::new(shards).build(&corpus));
        for k in [1, 3, 4, 5, 16, 19, 20, 21, 40] {
            let oracle = searcher.try_search_exhaustive("quasar index", k).unwrap();
            let pruned = searcher.try_search("quasar index", k).unwrap();
            assert_same_ranking(&oracle, &pruned, &format!("ties shards={shards} k={k}"));
        }
    }
}
