//! The sharding equivalence suite: `ShardedSearcher` must be indistinguishable from
//! `Searcher` — identical document sets, identical order, bit-identical scores — for
//! every shard count, corpus shape and query, including the edge cases (k larger than
//! a shard or the corpus, empty shards, exact score ties).
//!
//! This is the retrieval half of the sharding contract; `crates/report/tests/sharded.rs`
//! proves the property survives the whole explanation engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rage_retrieval::{
    Bm25Params, Corpus, Document, IndexBuilder, Retriever, Searcher, ShardedIndexBuilder,
    ShardedSearcher,
};

const SHARD_COUNTS: &[usize] = &[1, 2, 3, 7, 16];

/// A small shared vocabulary so random documents overlap heavily (plenty of partial
/// matches) and duplicates arise (exact score ties).
const VOCABULARY: &[&str] = &[
    "grand", "slam", "title", "match", "win", "clay", "court", "rank", "week", "final", "serve",
    "rally", "season", "open", "tour", "point", "record", "champion",
];

/// A seeded random corpus of `num_docs` documents with 3-8 words each.
///
/// Ids are assigned in *reverse* numeric order (`doc-099`, `doc-098`, ...), so id
/// order disagrees with insertion order and any tie broken by corpus layout instead
/// of document id shows up as a mismatch.
fn random_corpus(seed: u64, num_docs: usize) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Corpus::new();
    for i in 0..num_docs {
        let len = rng.gen_range(3..9);
        let words: Vec<&str> = (0..len)
            .map(|_| VOCABULARY[rng.gen_range(0..VOCABULARY.len())])
            .collect();
        corpus.push(Document::new(
            format!("doc-{:03}", num_docs - 1 - i),
            String::new(),
            words.join(" "),
        ));
    }
    corpus
}

/// A seeded random query over the same vocabulary.
fn random_query(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..5);
    let words: Vec<&str> = (0..len)
        .map(|_| VOCABULARY[rng.gen_range(0..VOCABULARY.len())])
        .collect();
    words.join(" ")
}

/// Full equivalence: same ids, same ranks, bit-identical scores, same documents.
fn assert_hits_identical(
    single: &Searcher,
    sharded: &ShardedSearcher,
    query: &str,
    k: usize,
    context: &str,
) {
    let a = single.search(query, k);
    let b = sharded.search(query, k);
    assert_eq!(a.len(), b.len(), "{context}: result length for {query:?}");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.doc_id, y.doc_id, "{context}: order for {query:?}");
        assert_eq!(x.rank, y.rank, "{context}: rank for {query:?}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{context}: score bits for {query:?} on {}",
            x.doc_id
        );
        assert_eq!(x.document, y.document, "{context}: document for {query:?}");
    }
}

#[test]
fn property_sharded_top_k_equals_single_top_k() {
    // 3 corpus shapes × 5 shard counts × 12 queries × 4 depths, scores compared
    // bit-for-bit. Corpus sizes are chosen so shards are uneven and, for the smallest
    // corpus, some of the 16 shards are empty.
    for (seed, num_docs) in [(11u64, 10usize), (12, 57), (13, 200)] {
        let corpus = random_corpus(seed, num_docs);
        let single = Searcher::new(IndexBuilder::default().build(&corpus));
        for &shards in SHARD_COUNTS {
            let sharded = ShardedSearcher::from_corpus(&corpus, shards);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..12 {
                let query = random_query(&mut rng);
                for k in [1, 3, num_docs / 2 + 1, num_docs + 7] {
                    assert_hits_identical(
                        &single,
                        &sharded,
                        &query,
                        k,
                        &format!("docs={num_docs} shards={shards}"),
                    );
                }
            }
        }
    }
}

#[test]
fn k_larger_than_any_shard_still_merges_exactly() {
    // Each of 7 shards holds at most 5 documents, but k = 20 spans many shards; the
    // merge must pull deep results from every shard, not just shard-local winners.
    let corpus = random_corpus(21, 33);
    let single = Searcher::new(IndexBuilder::default().build(&corpus));
    let sharded = ShardedSearcher::from_corpus(&corpus, 7);
    for query in ["grand slam", "clay court rank", "win"] {
        assert_hits_identical(&single, &sharded, query, 20, "k > shard size");
        assert_hits_identical(&single, &sharded, query, 40, "k > corpus size");
    }
}

#[test]
fn empty_shards_do_not_disturb_results() {
    // 4 documents across 16 shards: at least 12 shards are empty.
    let corpus = random_corpus(31, 4);
    let single = Searcher::new(IndexBuilder::default().build(&corpus));
    let sharded = ShardedSearcher::from_corpus(&corpus, 16);
    assert_eq!(sharded.index().num_shards(), 16);
    assert_eq!(
        sharded
            .index()
            .shard_sizes()
            .iter()
            .filter(|&&n| n == 0)
            .count(),
        12
    );
    for query in ["grand slam title", "serve rally", "champion"] {
        assert_hits_identical(&single, &sharded, query, 4, "empty shards");
    }
}

#[test]
fn equal_score_duplicates_merge_in_id_order_for_every_shard_count() {
    // Regression for the tie-break satellite: identical documents (exactly tied
    // scores) inserted in an id order that disagrees with insertion order. Whatever
    // the partitioning, ties must come back in ascending id order — the shard merge
    // can never reorder equal-score documents.
    let mut corpus = Corpus::new();
    for id in ["tie-f", "tie-b", "tie-d", "tie-a", "tie-e", "tie-c"] {
        corpus.push(Document::new(id, "", "grand slam title match"));
    }
    // A couple of non-tied documents so the ties sit in the middle of a real ranking.
    corpus.push(Document::new(
        "strong",
        "",
        "grand slam title match grand slam title match",
    ));
    corpus.push(Document::new("weak", "", "match point"));

    let single = Searcher::new(IndexBuilder::default().build(&corpus));
    for &shards in SHARD_COUNTS {
        let sharded = ShardedSearcher::from_corpus(&corpus, shards);
        let hits = sharded.search("grand slam title match", 8);
        let ids: Vec<&str> = hits.iter().map(|h| h.doc_id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["strong", "tie-a", "tie-b", "tie-c", "tie-d", "tie-e", "tie-f", "weak"],
            "shards={shards}"
        );
        let tie_scores: Vec<u64> = hits[1..7].iter().map(|h| h.score.to_bits()).collect();
        assert!(
            tie_scores.windows(2).all(|w| w[0] == w[1]),
            "shards={shards}: duplicates must tie exactly"
        );
        assert_hits_identical(&single, &sharded, "grand slam title match", 8, "ties");
        // The tie group also behaves at a k that cuts through it.
        assert_hits_identical(&single, &sharded, "grand slam title match", 4, "ties cut");
    }
}

#[test]
fn score_document_is_bit_identical_for_every_shard_count() {
    let corpus = random_corpus(41, 30);
    let single = Searcher::new(IndexBuilder::default().build(&corpus));
    for &shards in SHARD_COUNTS {
        let sharded = ShardedSearcher::from_corpus(&corpus, shards);
        for doc in corpus.iter() {
            let a = single.score_document("grand slam win", &doc.id).unwrap();
            let b = sharded.score_document("grand slam win", &doc.id).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "shards={shards} doc={}", doc.id);
        }
    }
}

#[test]
fn equivalence_holds_under_custom_params_and_sequential_build() {
    let corpus = random_corpus(51, 64);
    let single =
        Searcher::new(IndexBuilder::default().build(&corpus)).with_params(Bm25Params::robertson());
    for &shards in SHARD_COUNTS {
        let sharded = ShardedSearcher::new(
            ShardedIndexBuilder::new(shards)
                .with_parallel_build(false)
                .build(&corpus),
        )
        .with_params(Bm25Params::robertson());
        assert_hits_identical(&single, &sharded, "clay court final", 10, "robertson");
    }
}

#[test]
fn both_backends_agree_through_the_retriever_trait() {
    let corpus = random_corpus(61, 40);
    let backends: Vec<Box<dyn Retriever>> = vec![
        Box::new(Searcher::new(IndexBuilder::default().build(&corpus))),
        Box::new(ShardedSearcher::from_corpus(&corpus, 5)),
    ];
    let reference = backends[0].search("grand slam title", 10);
    for backend in &backends {
        assert_eq!(backend.num_docs(), 40);
        assert_eq!(backend.search("grand slam title", 10), reference);
    }
}
