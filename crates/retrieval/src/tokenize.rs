//! Text analysis: tokenisation, stopword removal and light stemming.
//!
//! The analyzer mirrors the behaviour of Lucene's `EnglishAnalyzer` (used by Pyserini's
//! default BM25 configuration) closely enough for ranking parity on the corpora RAGE
//! works with: Unicode-aware lowercasing word segmentation, a small English stopword
//! list, and a conservative suffix stemmer (a light variant of the Porter S1 rules).

use serde::{Deserialize, Serialize};

/// English stopwords removed by the default analyzer.
///
/// The list matches Lucene's `EnglishAnalyzer::ENGLISH_STOP_WORDS_SET`.
pub const ENGLISH_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

/// Configuration of the analysis chain.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Lowercase tokens before further processing.
    pub lowercase: bool,
    /// Remove the stopwords in [`ENGLISH_STOPWORDS`].
    pub remove_stopwords: bool,
    /// Apply the light suffix stemmer.
    pub stem: bool,
    /// Minimum token length kept after analysis (shorter tokens are dropped).
    pub min_token_len: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            lowercase: true,
            remove_stopwords: true,
            stem: true,
            min_token_len: 1,
        }
    }
}

/// A tokenizer + normaliser used for both indexing and query analysis.
///
/// Both sides of retrieval must use the *same* analyzer for scores to make sense, so
/// [`crate::index::IndexBuilder`] stores the tokenizer inside the built index.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Tokenizer {
    config: AnalyzerConfig,
}

impl Tokenizer {
    /// Create a tokenizer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        Self { config }
    }

    /// A tokenizer that only splits and lowercases (no stopword removal, no stemming).
    ///
    /// Useful when exact surface forms matter, e.g. for answer-string matching.
    pub fn whitespace() -> Self {
        Self {
            config: AnalyzerConfig {
                lowercase: true,
                remove_stopwords: false,
                stem: false,
                min_token_len: 1,
            },
        }
    }

    /// The analyzer configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Split raw text into analysed terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        self.raw_tokens(text)
            .into_iter()
            .filter_map(|tok| self.normalize(&tok))
            .collect()
    }

    /// Split raw text into surface tokens without normalisation (keeps case, stopwords).
    pub fn raw_tokens(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                current.push(ch);
            } else if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
        tokens
    }

    /// Normalise a single surface token; returns `None` if the token is filtered out.
    pub fn normalize(&self, token: &str) -> Option<String> {
        let mut tok = if self.config.lowercase {
            token.to_lowercase()
        } else {
            token.to_string()
        };
        // Strip possessive suffix before stopword / stemming decisions ("Federer's" -> "federer").
        if let Some(stripped) = tok.strip_suffix("'s") {
            tok = stripped.to_string();
        }
        tok = tok.trim_matches('\'').to_string();
        if tok.is_empty() || tok.chars().count() < self.config.min_token_len {
            return None;
        }
        if self.config.remove_stopwords && ENGLISH_STOPWORDS.contains(&tok.as_str()) {
            return None;
        }
        if self.config.stem {
            tok = light_stem(&tok);
        }
        if tok.is_empty() {
            None
        } else {
            Some(tok)
        }
    }
}

/// A conservative English suffix stemmer (light variant of the Porter step-1 rules).
///
/// It only removes plural and simple verbal suffixes, never rewriting the stem itself,
/// which keeps it safe for proper nouns ("federer", "djokovic") that dominate the RAGE
/// demonstration corpora.
pub fn light_stem(token: &str) -> String {
    let t = token;
    let len = t.chars().count();
    // Never stem very short tokens or tokens with digits (years, counts).
    if len <= 3 || t.chars().any(|c| c.is_ascii_digit()) {
        return t.to_string();
    }
    if let Some(stem) = t.strip_suffix("sses") {
        return format!("{stem}ss");
    }
    if let Some(stem) = t.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if t.ends_with("ss") || t.ends_with("us") || t.ends_with("is") {
        return t.to_string();
    }
    if let Some(stem) = t.strip_suffix("ings") {
        if stem.chars().count() >= 3 {
            return stem.to_string();
        }
    }
    if let Some(stem) = t.strip_suffix("ing") {
        if stem.chars().count() >= 3 {
            return stem.to_string();
        }
    }
    if let Some(stem) = t.strip_suffix("ed") {
        if stem.chars().count() >= 3 {
            return stem.to_string();
        }
    }
    if let Some(stem) = t.strip_suffix('s') {
        if !stem.ends_with('s') {
            return stem.to_string();
        }
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_and_lowercases() {
        let tok = Tokenizer::default();
        let terms = tok.tokenize("Roger Federer WON 369 matches!");
        assert_eq!(terms, vec!["roger", "federer", "won", "369", "matche"]);
    }

    #[test]
    fn removes_stopwords() {
        let tok = Tokenizer::default();
        let terms = tok.tokenize("the best of the big three");
        assert!(!terms.contains(&"the".to_string()));
        assert!(!terms.contains(&"of".to_string()));
        assert!(terms.contains(&"best".to_string()));
        assert!(terms.contains(&"big".to_string()));
    }

    #[test]
    fn whitespace_tokenizer_keeps_stopwords() {
        let tok = Tokenizer::whitespace();
        let terms = tok.tokenize("The Answer Is Federer");
        assert_eq!(terms, vec!["the", "answer", "is", "federer"]);
    }

    #[test]
    fn strips_possessive() {
        let tok = Tokenizer::default();
        let terms = tok.tokenize("Djokovic's titles");
        assert_eq!(terms, vec!["djokovic", "title"]);
    }

    #[test]
    fn stemmer_plural_rules() {
        assert_eq!(light_stem("matches"), "matche"); // light stemmer: only strips final s
        assert_eq!(light_stem("wins"), "win");
        assert_eq!(light_stem("ladies"), "lady");
        assert_eq!(light_stem("classes"), "class");
        assert_eq!(light_stem("tennis"), "tennis");
        assert_eq!(light_stem("surplus"), "surplus");
    }

    #[test]
    fn stemmer_verbal_rules() {
        assert_eq!(light_stem("ranked"), "rank");
        assert_eq!(light_stem("ranking"), "rank");
        assert_eq!(light_stem("rankings"), "rank");
        // Short stems are preserved.
        assert_eq!(light_stem("ring"), "ring");
        assert_eq!(light_stem("red"), "red");
    }

    #[test]
    fn stemmer_preserves_numbers_and_years() {
        assert_eq!(light_stem("2023s"), "2023s");
        assert_eq!(light_stem("369"), "369");
    }

    #[test]
    fn empty_and_punctuation_only_input() {
        let tok = Tokenizer::default();
        assert!(tok.tokenize("").is_empty());
        assert!(tok.tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let tok = Tokenizer::default();
        let terms = tok.tokenize("Gaël Monfils était présent");
        assert!(terms.contains(&"gaël".to_string()));
        assert!(terms.contains(&"était".to_string()));
    }

    #[test]
    fn min_token_len_filters_short_tokens() {
        let tok = Tokenizer::new(AnalyzerConfig {
            min_token_len: 3,
            remove_stopwords: false,
            ..AnalyzerConfig::default()
        });
        let terms = tok.tokenize("a an the best");
        assert_eq!(terms, vec!["the", "best"]);
    }

    #[test]
    fn raw_tokens_preserve_case() {
        let tok = Tokenizer::default();
        assert_eq!(
            tok.raw_tokens("Coco Gauff, 2023"),
            vec!["Coco", "Gauff", "2023"]
        );
    }
}
