//! The inverted index, in a compact arena layout.
//!
//! [`InvertedIndex`] stores, for every analysed term, a postings list of
//! `(document ordinal, term frequency)` pairs, plus per-document lengths and the corpus
//! itself. It is the in-memory stand-in for the Lucene index RAGE's prototype queried
//! through Pyserini.
//!
//! ## Layout
//!
//! The dictionary and the postings both live in contiguous arenas rather than a
//! per-term `BTreeMap<String, Vec<Posting>>`:
//!
//! * **Term dictionary** — every distinct term is interned into one sorted string
//!   arena ([`InvertedIndex::term_str`] slices it through an offset table). A term id
//!   is the term's rank in that sorted order, so lookups are a binary search over
//!   arena slices and [`InvertedIndex::terms`] is a linear walk — no per-term `String`
//!   allocations, no tree nodes.
//! * **Postings arena** — all postings lists are concatenated into a single
//!   `Vec<Posting>`; per term the dictionary stores an `(offset, len)` slice. Each
//!   list is ordered by ascending document ordinal (documents are indexed in corpus
//!   order), which the pruned query path relies on for per-candidate binary probes.
//! * **Document stats** — ids, integer token counts, and the counts pre-converted to
//!   `f64` (the BM25 length norm operand) are split into parallel arrays, so the
//!   scoring loop touches a dense `f64` array instead of striding over structs, and an
//!   id → ordinal map replaces the former linear scan in
//!   [`ordinal_of`](InvertedIndex::ordinal_of).
//!
//! ## Per-term score bound statistics
//!
//! At build time every term also records the **maximum term frequency** and the
//! **minimum analysed document length** over its postings. Because the BM25 per-term
//! contribution is monotone non-decreasing in `tf` and non-increasing in document
//! length (for `k1 ≥ 0`, `0 ≤ b ≤ 1`), evaluating the term score at `(max_tf,
//! min_dl)` yields an *admissible upper bound* on the term's contribution to any
//! document in this index — the quantity that drives the exact dynamic pruning in
//! [`crate::topk`]. The bounds are recomputed whenever an index is (re)built — which
//! is exactly when a delta segment mutates or a shard compacts — and they stay
//! admissible under tombstoned removals without recomputation, because a maximum over
//! a superset of the live documents can only over-estimate, never under-estimate (see
//! the crate docs for the full contract).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::document::{Corpus, Document};
use crate::tokenize::Tokenizer;

/// One posting: a document ordinal and the term's frequency inside that document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Ordinal of the document inside the indexed corpus (0-based, insertion order).
    pub doc: u32,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

/// Builder for [`InvertedIndex`].
#[derive(Debug, Clone, Default)]
pub struct IndexBuilder {
    tokenizer: Tokenizer,
}

impl IndexBuilder {
    /// Use a custom tokenizer for analysis.
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Analyse and index every document of the corpus.
    pub fn build(&self, corpus: &Corpus) -> InvertedIndex {
        let analysed: Vec<Vec<String>> = corpus
            .iter()
            .map(|doc| self.tokenizer.tokenize(&doc.full_text()))
            .collect();
        self.build_analysed(corpus, &analysed)
    }

    /// Index documents whose token streams were already analysed.
    ///
    /// `analysed` must be parallel to the corpus and hold, per document, exactly the
    /// tokens this builder's tokenizer would produce for
    /// [`Document::full_text`] — analysis is deterministic, so callers that cache
    /// token streams (the sharded delta segments do) get an index bit-identical to
    /// [`IndexBuilder::build`] without re-analysing unchanged documents.
    ///
    /// # Panics
    /// If `analysed` and the corpus differ in length.
    pub fn build_analysed(&self, corpus: &Corpus, analysed: &[Vec<String>]) -> InvertedIndex {
        assert_eq!(
            corpus.len(),
            analysed.len(),
            "one analysed token stream per document"
        );

        // Accumulate per-term postings. Documents are visited in corpus order and each
        // contributes at most one posting per term, so every list is already sorted by
        // ascending ordinal — no per-list sort needed.
        let mut dict: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_ids = Vec::with_capacity(corpus.len());
        let mut doc_lens = Vec::with_capacity(corpus.len());
        let mut total_len: u64 = 0;

        for (ordinal, (doc, terms)) in corpus.iter().zip(analysed).enumerate() {
            let mut freqs: HashMap<&str, u32> = HashMap::new();
            for term in terms {
                *freqs.entry(term.as_str()).or_insert(0) += 1;
            }
            for (term, tf) in freqs {
                let posting = Posting {
                    doc: ordinal as u32,
                    tf,
                };
                match dict.get_mut(term) {
                    Some(list) => list.push(posting),
                    None => {
                        dict.insert(term.to_string(), vec![posting]);
                    }
                }
            }
            let len = terms.len() as u32;
            total_len += u64::from(len);
            doc_ids.push(doc.id.clone());
            doc_lens.push(len);
        }

        let avg_doc_len = if doc_ids.is_empty() {
            0.0
        } else {
            total_len as f64 / doc_ids.len() as f64
        };

        // Intern the dictionary in sorted order and concatenate the postings arena.
        let mut sorted_terms: Vec<(String, Vec<Posting>)> = dict.into_iter().collect();
        sorted_terms.sort_by(|a, b| a.0.cmp(&b.0));

        let num_terms = sorted_terms.len();
        let mut term_arena = String::new();
        let mut term_offsets = Vec::with_capacity(num_terms + 1);
        let mut posting_offsets = Vec::with_capacity(num_terms + 1);
        let mut postings = Vec::with_capacity(sorted_terms.iter().map(|(_, l)| l.len()).sum());
        let mut term_max_tf = Vec::with_capacity(num_terms);
        let mut term_min_dl = Vec::with_capacity(num_terms);
        term_offsets.push(0u32);
        posting_offsets.push(0u32);
        for (term, list) in sorted_terms {
            term_arena.push_str(&term);
            term_offsets.push(term_arena.len() as u32);
            let mut max_tf = 0u32;
            let mut min_dl = u32::MAX;
            for p in &list {
                max_tf = max_tf.max(p.tf);
                min_dl = min_dl.min(doc_lens[p.doc as usize]);
            }
            term_max_tf.push(max_tf);
            term_min_dl.push(min_dl);
            postings.extend_from_slice(&list);
            posting_offsets.push(postings.len() as u32);
        }

        let doc_norm_lens = doc_lens.iter().map(|&len| f64::from(len)).collect();
        let ordinals = doc_ids
            .iter()
            .enumerate()
            .map(|(ordinal, id)| (id.clone(), ordinal as u32))
            .collect();

        InvertedIndex {
            term_arena,
            term_offsets,
            posting_offsets,
            postings,
            term_max_tf,
            term_min_dl,
            doc_ids,
            doc_lens,
            doc_norm_lens,
            ordinals,
            avg_doc_len,
            tokenizer: self.tokenizer.clone(),
            corpus: corpus.clone(),
        }
    }
}

/// An immutable in-memory inverted index over a [`Corpus`] (see the [module
/// docs](self) for the arena layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// All distinct terms, sorted, concatenated.
    term_arena: String,
    /// `num_terms + 1` byte offsets into `term_arena`; term `i` is the slice
    /// `term_arena[term_offsets[i]..term_offsets[i + 1]]`.
    term_offsets: Vec<u32>,
    /// `num_terms + 1` offsets into `postings`; term `i`'s list is the slice
    /// `postings[posting_offsets[i]..posting_offsets[i + 1]]`.
    posting_offsets: Vec<u32>,
    /// One contiguous arena of all postings lists, each sorted by ascending ordinal.
    postings: Vec<Posting>,
    /// Per term: the maximum `tf` over its postings (admissible bound operand).
    term_max_tf: Vec<u32>,
    /// Per term: the minimum analysed length over its posting documents (admissible
    /// bound operand).
    term_min_dl: Vec<u32>,
    /// Document ids by ordinal.
    doc_ids: Vec<String>,
    /// Analysed token counts by ordinal.
    doc_lens: Vec<u32>,
    /// `doc_lens` pre-converted to `f64` — the BM25 length-norm operand, precomputed
    /// once at build time instead of per posting per query.
    doc_norm_lens: Vec<f64>,
    /// Document id → ordinal.
    ordinals: HashMap<String, u32>,
    avg_doc_len: f64,
    tokenizer: Tokenizer,
    corpus: Corpus,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// Number of distinct terms in the dictionary.
    pub fn num_terms(&self) -> usize {
        self.term_max_tf.len()
    }

    /// Average analysed document length (in tokens).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// The tokenizer that analysed this index (queries must use the same one).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The corpus backing the index.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The interned term with the given id (its rank in the sorted dictionary).
    fn term_str(&self, term_id: usize) -> &str {
        let start = self.term_offsets[term_id] as usize;
        let end = self.term_offsets[term_id + 1] as usize;
        &self.term_arena[start..end]
    }

    /// Dictionary lookup: the id of a term, if it occurs in the corpus. A binary
    /// search over the sorted term arena.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        let mut lo = 0usize;
        let mut hi = self.num_terms();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.term_str(mid).cmp(term) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }

    /// Postings list for a term id (ascending document ordinal).
    pub fn postings_by_id(&self, term_id: u32) -> &[Posting] {
        let start = self.posting_offsets[term_id as usize] as usize;
        let end = self.posting_offsets[term_id as usize + 1] as usize;
        &self.postings[start..end]
    }

    /// Maximum term frequency over the term's postings (bound operand; see the
    /// [module docs](self)).
    pub fn term_max_tf(&self, term_id: u32) -> u32 {
        self.term_max_tf[term_id as usize]
    }

    /// Minimum analysed document length over the term's posting documents (bound
    /// operand; see the [module docs](self)).
    pub fn term_min_dl(&self, term_id: u32) -> u32 {
        self.term_min_dl[term_id as usize]
    }

    /// Postings list for a term, if the term occurs in the corpus.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.term_id(term).map(|id| self.postings_by_id(id))
    }

    /// Document frequency: the number of documents containing the term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_id(term)
            .map_or(0, |id| self.postings_by_id(id).len())
    }

    /// Length (analysed token count) of the document with the given ordinal.
    pub fn doc_len(&self, ordinal: u32) -> u32 {
        self.doc_lens.get(ordinal as usize).copied().unwrap_or(0)
    }

    /// Length of the document with the given ordinal as `f64` — precomputed at build
    /// time, bit-identical to `f64::from(self.doc_len(ordinal))`.
    ///
    /// # Panics
    /// If the ordinal is out of range.
    pub fn doc_norm_len(&self, ordinal: u32) -> f64 {
        self.doc_norm_lens[ordinal as usize]
    }

    /// Id of the document with the given ordinal.
    pub fn doc_id(&self, ordinal: u32) -> Option<&str> {
        self.doc_ids.get(ordinal as usize).map(String::as_str)
    }

    /// The full document with the given ordinal.
    pub fn document(&self, ordinal: u32) -> Option<&Document> {
        self.corpus.documents().get(ordinal as usize)
    }

    /// Ordinal of a document id, if indexed. A hash lookup (the former linear scan
    /// made every by-id operation O(corpus)).
    pub fn ordinal_of(&self, doc_id: &str) -> Option<u32> {
        self.ordinals.get(doc_id).copied()
    }

    /// Iterate over the dictionary in sorted term order (terms and their document
    /// frequencies).
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        (0..self.num_terms()).map(|id| (self.term_str(id), self.postings_by_id(id as u32).len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn index() -> InvertedIndex {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("a", "", "federer wins match wins"));
        corpus.push(Document::new("b", "", "djokovic wins slam"));
        corpus.push(Document::new("c", "", "nadal clay"));
        IndexBuilder::default().build(&corpus)
    }

    #[test]
    fn counts_documents_and_terms() {
        let idx = index();
        assert_eq!(idx.num_docs(), 3);
        assert!(idx.num_terms() >= 6);
    }

    #[test]
    fn postings_carry_term_frequencies() {
        let idx = index();
        // "wins" stems to "win"; appears twice in doc a and once in doc b.
        let postings = idx.postings("win").expect("term indexed");
        assert_eq!(postings.len(), 2);
        assert_eq!(postings[0], Posting { doc: 0, tf: 2 });
        assert_eq!(postings[1], Posting { doc: 1, tf: 1 });
    }

    #[test]
    fn doc_freq_and_lengths() {
        let idx = index();
        assert_eq!(idx.doc_freq("win"), 2);
        assert_eq!(idx.doc_freq("clay"), 1);
        assert_eq!(idx.doc_freq("absent"), 0);
        assert_eq!(idx.doc_len(0), 4);
        assert_eq!(idx.doc_len(2), 2);
    }

    #[test]
    fn average_length() {
        let idx = index();
        let expected = (4.0 + 3.0 + 2.0) / 3.0;
        assert!((idx.avg_doc_len() - expected).abs() < 1e-9);
    }

    #[test]
    fn ordinal_and_id_round_trip() {
        let idx = index();
        assert_eq!(idx.doc_id(1), Some("b"));
        assert_eq!(idx.ordinal_of("b"), Some(1));
        assert_eq!(idx.ordinal_of("zzz"), None);
        assert_eq!(idx.document(2).unwrap().id, "c");
        assert!(idx.document(9).is_none());
    }

    #[test]
    fn empty_corpus_index() {
        let idx = IndexBuilder::default().build(&Corpus::new());
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.num_terms(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert!(idx.postings("anything").is_none());
        assert!(idx.terms().next().is_none());
    }

    #[test]
    fn title_is_indexed() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("t", "Wimbledon Final", "the match"));
        let idx = IndexBuilder::default().build(&corpus);
        assert_eq!(idx.doc_freq("wimbledon"), 1);
    }

    #[test]
    fn terms_iterator_is_sorted() {
        let idx = index();
        let terms: Vec<_> = idx.terms().map(|(t, _)| t.to_string()).collect();
        let mut sorted = terms.clone();
        sorted.sort();
        assert_eq!(terms, sorted);
    }

    #[test]
    fn term_id_round_trips_the_dictionary() {
        let idx = index();
        for (term, df) in idx.terms() {
            let id = idx.term_id(term).expect("term in dictionary");
            assert_eq!(idx.postings_by_id(id).len(), df);
            assert_eq!(idx.postings(term).unwrap(), idx.postings_by_id(id));
        }
        assert_eq!(idx.term_id("zzz-absent"), None);
        assert_eq!(idx.term_id(""), None);
    }

    #[test]
    fn norm_lens_match_integer_lengths() {
        let idx = index();
        for ordinal in 0..idx.num_docs() as u32 {
            assert_eq!(
                idx.doc_norm_len(ordinal).to_bits(),
                f64::from(idx.doc_len(ordinal)).to_bits()
            );
        }
    }

    #[test]
    fn bound_stats_cover_every_posting() {
        let idx = index();
        for (term, _) in idx.terms() {
            let id = idx.term_id(term).unwrap();
            let list = idx.postings_by_id(id);
            let max_tf = list.iter().map(|p| p.tf).max().unwrap();
            let min_dl = list.iter().map(|p| idx.doc_len(p.doc)).min().unwrap();
            assert_eq!(idx.term_max_tf(id), max_tf, "{term}");
            assert_eq!(idx.term_min_dl(id), min_dl, "{term}");
        }
        // "win" has tf 2 in doc a (len 4) and tf 1 in doc b (len 3).
        let win = idx.term_id("win").unwrap();
        assert_eq!(idx.term_max_tf(win), 2);
        assert_eq!(idx.term_min_dl(win), 3);
    }

    #[test]
    fn postings_lists_are_ordinal_sorted() {
        let idx = index();
        for (term, _) in idx.terms() {
            let list = idx.postings(term).unwrap();
            assert!(list.windows(2).all(|w| w[0].doc < w[1].doc), "{term}");
        }
    }

    #[test]
    fn build_analysed_matches_build() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("a", "Match wins", "federer wins match wins"));
        corpus.push(Document::new("b", "", "djokovic wins slam"));
        let builder = IndexBuilder::default();
        let tokens: Vec<Vec<String>> = corpus
            .iter()
            .map(|d| builder.tokenizer.tokenize(&d.full_text()))
            .collect();
        let from_tokens = builder.build_analysed(&corpus, &tokens);
        let from_scratch = builder.build(&corpus);
        assert_eq!(from_tokens.num_terms(), from_scratch.num_terms());
        assert_eq!(
            from_tokens.avg_doc_len().to_bits(),
            from_scratch.avg_doc_len().to_bits()
        );
        for (term, df) in from_scratch.terms() {
            assert_eq!(from_tokens.doc_freq(term), df);
            assert_eq!(from_tokens.postings(term), from_scratch.postings(term));
        }
    }

    #[test]
    #[should_panic(expected = "one analysed token stream per document")]
    fn build_analysed_rejects_length_mismatch() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("a", "", "text"));
        IndexBuilder::default().build_analysed(&corpus, &[]);
    }
}
