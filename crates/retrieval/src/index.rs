//! The inverted index.
//!
//! [`InvertedIndex`] stores, for every analysed term, a postings list of
//! `(document ordinal, term frequency)` pairs, plus per-document lengths and the corpus
//! itself. It is the in-memory stand-in for the Lucene index RAGE's prototype queried
//! through Pyserini.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::document::{Corpus, Document};
use crate::tokenize::Tokenizer;

/// One posting: a document ordinal and the term's frequency inside that document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Ordinal of the document inside the indexed corpus (0-based, insertion order).
    pub doc: u32,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

/// Per-document statistics kept by the index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocStats {
    /// Document id.
    pub id: String,
    /// Number of analysed tokens in the document (its "length" for BM25 normalisation).
    pub len: u32,
}

/// Builder for [`InvertedIndex`].
#[derive(Debug, Clone, Default)]
pub struct IndexBuilder {
    tokenizer: Tokenizer,
}

impl IndexBuilder {
    /// Use a custom tokenizer for analysis.
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Analyse and index every document of the corpus.
    pub fn build(&self, corpus: &Corpus) -> InvertedIndex {
        let mut postings: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
        let mut doc_stats = Vec::with_capacity(corpus.len());
        let mut total_len: u64 = 0;

        for (ordinal, doc) in corpus.iter().enumerate() {
            let terms = self.tokenizer.tokenize(&doc.full_text());
            let mut freqs: HashMap<&str, u32> = HashMap::new();
            for term in &terms {
                *freqs.entry(term.as_str()).or_insert(0) += 1;
            }
            for (term, tf) in freqs {
                postings.entry(term.to_string()).or_default().push(Posting {
                    doc: ordinal as u32,
                    tf,
                });
            }
            let len = terms.len() as u32;
            total_len += u64::from(len);
            doc_stats.push(DocStats {
                id: doc.id.clone(),
                len,
            });
        }

        // Postings are accumulated per document in corpus order except that HashMap
        // iteration above interleaves terms; sort each list so scans are ordinal-ordered.
        for list in postings.values_mut() {
            list.sort_by_key(|p| p.doc);
        }

        let avg_len = if doc_stats.is_empty() {
            0.0
        } else {
            total_len as f64 / doc_stats.len() as f64
        };

        InvertedIndex {
            postings,
            doc_stats,
            avg_doc_len: avg_len,
            tokenizer: self.tokenizer.clone(),
            corpus: corpus.clone(),
        }
    }
}

/// An immutable in-memory inverted index over a [`Corpus`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: BTreeMap<String, Vec<Posting>>,
    doc_stats: Vec<DocStats>,
    avg_doc_len: f64,
    tokenizer: Tokenizer,
    corpus: Corpus,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_stats.len()
    }

    /// Number of distinct terms in the dictionary.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Average analysed document length (in tokens).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// The tokenizer that analysed this index (queries must use the same one).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The corpus backing the index.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Postings list for a term, if the term occurs in the corpus.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.postings.get(term).map(|v| v.as_slice())
    }

    /// Document frequency: the number of documents containing the term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, |p| p.len())
    }

    /// Length (analysed token count) of the document with the given ordinal.
    pub fn doc_len(&self, ordinal: u32) -> u32 {
        self.doc_stats
            .get(ordinal as usize)
            .map_or(0, |stats| stats.len)
    }

    /// Id of the document with the given ordinal.
    pub fn doc_id(&self, ordinal: u32) -> Option<&str> {
        self.doc_stats
            .get(ordinal as usize)
            .map(|stats| stats.id.as_str())
    }

    /// The full document with the given ordinal.
    pub fn document(&self, ordinal: u32) -> Option<&Document> {
        self.corpus.documents().get(ordinal as usize)
    }

    /// Ordinal of a document id, if indexed.
    pub fn ordinal_of(&self, doc_id: &str) -> Option<u32> {
        self.doc_stats
            .iter()
            .position(|stats| stats.id == doc_id)
            .map(|pos| pos as u32)
    }

    /// Iterate over the dictionary (terms and their document frequencies).
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.postings.iter().map(|(t, p)| (t.as_str(), p.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn index() -> InvertedIndex {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("a", "", "federer wins match wins"));
        corpus.push(Document::new("b", "", "djokovic wins slam"));
        corpus.push(Document::new("c", "", "nadal clay"));
        IndexBuilder::default().build(&corpus)
    }

    #[test]
    fn counts_documents_and_terms() {
        let idx = index();
        assert_eq!(idx.num_docs(), 3);
        assert!(idx.num_terms() >= 6);
    }

    #[test]
    fn postings_carry_term_frequencies() {
        let idx = index();
        // "wins" stems to "win"; appears twice in doc a and once in doc b.
        let postings = idx.postings("win").expect("term indexed");
        assert_eq!(postings.len(), 2);
        assert_eq!(postings[0], Posting { doc: 0, tf: 2 });
        assert_eq!(postings[1], Posting { doc: 1, tf: 1 });
    }

    #[test]
    fn doc_freq_and_lengths() {
        let idx = index();
        assert_eq!(idx.doc_freq("win"), 2);
        assert_eq!(idx.doc_freq("clay"), 1);
        assert_eq!(idx.doc_freq("absent"), 0);
        assert_eq!(idx.doc_len(0), 4);
        assert_eq!(idx.doc_len(2), 2);
    }

    #[test]
    fn average_length() {
        let idx = index();
        let expected = (4.0 + 3.0 + 2.0) / 3.0;
        assert!((idx.avg_doc_len() - expected).abs() < 1e-9);
    }

    #[test]
    fn ordinal_and_id_round_trip() {
        let idx = index();
        assert_eq!(idx.doc_id(1), Some("b"));
        assert_eq!(idx.ordinal_of("b"), Some(1));
        assert_eq!(idx.ordinal_of("zzz"), None);
        assert_eq!(idx.document(2).unwrap().id, "c");
        assert!(idx.document(9).is_none());
    }

    #[test]
    fn empty_corpus_index() {
        let idx = IndexBuilder::default().build(&Corpus::new());
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.num_terms(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
    }

    #[test]
    fn title_is_indexed() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("t", "Wimbledon Final", "the match"));
        let idx = IndexBuilder::default().build(&corpus);
        assert_eq!(idx.doc_freq("wimbledon"), 1);
    }

    #[test]
    fn terms_iterator_is_sorted() {
        let idx = index();
        let terms: Vec<_> = idx.terms().map(|(t, _)| t.to_string()).collect();
        let mut sorted = terms.clone();
        sorted.sort();
        assert_eq!(terms, sorted);
    }
}
