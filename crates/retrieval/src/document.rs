//! Documents, corpora and JSONL persistence.
//!
//! RAGE's knowledge sources are plain documents with an identifier, a title and a body.
//! A [`Corpus`] is an ordered collection of documents with unique identifiers; it is the
//! unit that gets indexed. Corpora can be round-tripped through the JSONL interchange
//! format Pyserini uses (`{"id": ..., "contents": ...}` one object per line).

use std::collections::{BTreeMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::RetrievalError;
use crate::json::{write_json_string, JsonValue};

/// A single knowledge source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Stable identifier, unique within a corpus.
    pub id: String,
    /// Short human-readable title.
    pub title: String,
    /// Main body text used for indexing and prompting.
    pub text: String,
    /// Optional key/value metadata (e.g. `year`, `metric`, `recency`).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub fields: BTreeMap<String, String>,
}

impl Document {
    /// Create a document with empty metadata.
    pub fn new(id: impl Into<String>, title: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            text: text.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Attach a metadata field (builder style).
    pub fn with_field(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Title and body concatenated — the text that gets indexed and shown to the LLM.
    pub fn full_text(&self) -> String {
        if self.title.is_empty() {
            self.text.clone()
        } else {
            format!("{}. {}", self.title, self.text)
        }
    }

    /// Number of Unicode scalar values in the body.
    pub fn len_chars(&self) -> usize {
        self.text.chars().count()
    }
}

/// An ordered collection of documents with unique ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    documents: Vec<Document>,
    /// Ids of `documents`, kept in lockstep so the uniqueness check on every append
    /// is a hash probe instead of a linear scan (building a registry-scale corpus
    /// document by document used to be quadratic in corpus size).
    ids: HashSet<String>,
}

impl PartialEq for Corpus {
    fn eq(&self, other: &Self) -> bool {
        // `ids` is derived state; document order and content define equality.
        self.documents == other.documents
    }
}

impl Corpus {
    /// Create an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a corpus from documents, failing on duplicate ids.
    pub fn from_documents(documents: Vec<Document>) -> Result<Self, RetrievalError> {
        let mut corpus = Corpus::new();
        for doc in documents {
            corpus.try_push(doc)?;
        }
        Ok(corpus)
    }

    /// Append a document, panicking on a duplicate id.
    ///
    /// Use [`Corpus::try_push`] when the id provenance is untrusted.
    pub fn push(&mut self, doc: Document) {
        self.try_push(doc).expect("duplicate document id");
    }

    /// Append a document, failing on a duplicate id.
    pub fn try_push(&mut self, doc: Document) -> Result<(), RetrievalError> {
        if self.ids.contains(&doc.id) {
            return Err(RetrievalError::DuplicateDocumentId(doc.id));
        }
        self.ids.insert(doc.id.clone());
        self.documents.push(doc);
        Ok(())
    }

    /// Remove a document by id, returning it. `None` when the id is not present.
    pub fn remove(&mut self, id: &str) -> Option<Document> {
        if !self.ids.remove(id) {
            return None;
        }
        let pos = self.documents.iter().position(|d| d.id == id)?;
        Some(self.documents.remove(pos))
    }

    /// Replace the document carrying `doc.id` in place, returning the previous
    /// version. Fails with [`RetrievalError::UnknownDocument`] when no document with
    /// that id exists.
    pub fn replace(&mut self, doc: Document) -> Result<Document, RetrievalError> {
        match self.documents.iter_mut().find(|d| d.id == doc.id) {
            Some(slot) => Ok(std::mem::replace(slot, doc)),
            None => Err(RetrievalError::UnknownDocument(doc.id)),
        }
    }

    /// Insert or replace: replace the document carrying `doc.id` if present, append
    /// it otherwise. Returns the previous version when there was one.
    pub fn upsert(&mut self, doc: Document) -> Option<Document> {
        match self.documents.iter_mut().find(|d| d.id == doc.id) {
            Some(slot) => Some(std::mem::replace(slot, doc)),
            None => {
                self.ids.insert(doc.id.clone());
                self.documents.push(doc);
                None
            }
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Iterate over documents in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter()
    }

    /// All documents as a slice, in insertion order.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Find a document by id.
    pub fn get(&self, id: &str) -> Option<&Document> {
        self.documents.iter().find(|d| d.id == id)
    }

    /// Read a corpus from a JSONL reader: one JSON document object per line.
    ///
    /// Each line must carry at least an `id`; the body may be under `text` or (as in
    /// Pyserini collections) `contents`.
    pub fn read_jsonl<R: Read>(reader: R) -> Result<Self, RetrievalError> {
        // An optional string member: absent or null yields `None`, any other
        // non-string type is a loud error (matching the strictness of a typed
        // deserializer, so corpus corruption cannot load silently).
        fn optional_string(value: &JsonValue, key: &str) -> Result<Option<String>, String> {
            match value.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(JsonValue::String(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("field `{key}` must be a string")),
            }
        }

        fn parse_record(line: &str) -> Result<Document, String> {
            let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
            if !matches!(value, JsonValue::Object(_)) {
                return Err("expected a JSON object".to_string());
            }
            let id = optional_string(&value, "id")?.ok_or("missing string field `id`")?;
            let title = optional_string(&value, "title")?.unwrap_or_default();
            let text = match optional_string(&value, "text")? {
                Some(text) => text,
                None => optional_string(&value, "contents")?.unwrap_or_default(),
            };
            let fields = match value.get("fields") {
                None | Some(JsonValue::Null) => BTreeMap::new(),
                Some(fields @ JsonValue::Object(members)) => {
                    if members
                        .iter()
                        .any(|(_, v)| !matches!(v, JsonValue::String(_)))
                    {
                        return Err("field `fields` must map strings to strings".to_string());
                    }
                    fields.string_map()
                }
                Some(_) => return Err("field `fields` must be an object".to_string()),
            };
            Ok(Document {
                id,
                title,
                text,
                fields,
            })
        }

        let buf = BufReader::new(reader);
        let mut corpus = Corpus::new();
        for (lineno, line) in buf.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let document = parse_record(&line).map_err(|message| RetrievalError::CorpusParse {
                line: lineno + 1,
                message,
            })?;
            corpus.try_push(document)?;
        }
        Ok(corpus)
    }

    /// Write the corpus as JSONL.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), RetrievalError> {
        for doc in &self.documents {
            let mut line = String::new();
            line.push_str("{\"id\":");
            write_json_string(&mut line, &doc.id);
            line.push_str(",\"title\":");
            write_json_string(&mut line, &doc.title);
            line.push_str(",\"text\":");
            write_json_string(&mut line, &doc.text);
            if !doc.fields.is_empty() {
                line.push_str(",\"fields\":{");
                for (i, (key, value)) in doc.fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    write_json_string(&mut line, key);
                    line.push(':');
                    write_json_string(&mut line, value);
                }
                line.push('}');
            }
            line.push('}');
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }

    /// Load a corpus from a JSONL file on disk.
    pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Self, RetrievalError> {
        let file = std::fs::File::open(path)?;
        Self::read_jsonl(file)
    }

    /// Save the corpus to a JSONL file on disk.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> Result<(), RetrievalError> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(file)
    }
}

impl FromIterator<Document> for Corpus {
    fn from_iter<T: IntoIterator<Item = Document>>(iter: T) -> Self {
        let mut corpus = Corpus::new();
        for doc in iter {
            corpus.push(doc);
        }
        corpus
    }
}

impl IntoIterator for Corpus {
    type Item = Document;
    type IntoIter = std::vec::IntoIter<Document>;

    fn into_iter(self) -> Self::IntoIter {
        self.documents.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new();
        c.push(
            Document::new("d1", "Match wins", "Federer has 369 match wins")
                .with_field("metric", "match_wins"),
        );
        c.push(Document::new(
            "d2",
            "Grand slams",
            "Djokovic has 24 grand slams",
        ));
        c
    }

    #[test]
    fn push_and_get() {
        let c = sample();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("d1").unwrap().title, "Match wins");
        assert!(c.get("missing").is_none());
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut c = sample();
        let err = c.try_push(Document::new("d1", "dup", "dup")).unwrap_err();
        assert!(matches!(err, RetrievalError::DuplicateDocumentId(_)));
    }

    #[test]
    fn remove_replace_and_upsert() {
        let mut c = sample();
        let removed = c.remove("d1").unwrap();
        assert_eq!(removed.title, "Match wins");
        assert!(c.remove("d1").is_none());
        assert_eq!(c.len(), 1);

        let old = c
            .replace(Document::new("d2", "Slams", "Djokovic has 24 majors"))
            .unwrap();
        assert_eq!(old.title, "Grand slams");
        assert_eq!(c.get("d2").unwrap().title, "Slams");
        assert!(matches!(
            c.replace(Document::new("ghost", "", "x")),
            Err(RetrievalError::UnknownDocument(_))
        ));

        assert!(c.upsert(Document::new("d3", "", "new doc")).is_none());
        assert!(c.upsert(Document::new("d3", "", "newer doc")).is_some());
        assert_eq!(c.get("d3").unwrap().text, "newer doc");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn from_documents_checks_duplicates() {
        let docs = vec![Document::new("a", "", "x"), Document::new("a", "", "y")];
        assert!(Corpus::from_documents(docs).is_err());
    }

    #[test]
    fn full_text_includes_title() {
        let d = Document::new("d", "Title", "Body");
        assert_eq!(d.full_text(), "Title. Body");
        let d = Document::new("d", "", "Body only");
        assert_eq!(d.full_text(), "Body only");
    }

    #[test]
    fn jsonl_round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_jsonl(&mut buf).unwrap();
        let restored = Corpus::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(c, restored);
    }

    #[test]
    fn jsonl_null_text_falls_back_to_contents() {
        let jsonl = r#"{"id": "p1", "text": null, "contents": "US Open 2023 champion Coco Gauff"}"#;
        let c = Corpus::read_jsonl(jsonl.as_bytes()).unwrap();
        assert_eq!(
            c.get("p1").unwrap().text,
            "US Open 2023 champion Coco Gauff"
        );
    }

    #[test]
    fn jsonl_rejects_wrongly_typed_members() {
        for bad in [
            r#"{"id": 3, "text": "x"}"#,
            r#"{"id": "d", "title": 3}"#,
            r#"{"id": "d", "text": ["x"]}"#,
            r#"{"id": "d", "fields": {"year": 2023}}"#,
            r#"{"id": "d", "fields": "not a map"}"#,
        ] {
            let err = Corpus::read_jsonl(bad.as_bytes()).unwrap_err();
            assert!(
                matches!(err, RetrievalError::CorpusParse { line: 1, .. }),
                "input {bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn jsonl_accepts_pyserini_contents_field() {
        let jsonl = r#"{"id": "p1", "contents": "US Open 2023 champion Coco Gauff"}"#;
        let c = Corpus::read_jsonl(jsonl.as_bytes()).unwrap();
        assert_eq!(
            c.get("p1").unwrap().text,
            "US Open 2023 champion Coco Gauff"
        );
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let jsonl = "\n{\"id\": \"a\", \"text\": \"x\"}\n\n{\"id\": \"b\", \"text\": \"y\"}\n";
        let c = Corpus::read_jsonl(jsonl.as_bytes()).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn jsonl_reports_line_numbers_on_error() {
        let jsonl = "{\"id\": \"a\", \"text\": \"x\"}\nnot json\n";
        let err = Corpus::read_jsonl(jsonl.as_bytes()).unwrap_err();
        match err {
            RetrievalError::CorpusParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rage_retrieval_doc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.jsonl");
        let c = sample();
        c.save_jsonl(&path).unwrap();
        let restored = Corpus::load_jsonl(&path).unwrap();
        assert_eq!(c, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collect_from_iterator() {
        let c: Corpus = (0..5)
            .map(|i| Document::new(format!("d{i}"), "", format!("text {i}")))
            .collect();
        assert_eq!(c.len(), 5);
        let ids: Vec<_> = c.into_iter().map(|d| d.id).collect();
        assert_eq!(ids, vec!["d0", "d1", "d2", "d3", "d4"]);
    }
}
