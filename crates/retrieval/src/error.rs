//! Error taxonomy for the retrieval substrate.

use std::fmt;

/// Errors produced while loading corpora or querying the index.
#[derive(Debug)]
pub enum RetrievalError {
    /// The corpus contained two documents with the same identifier.
    DuplicateDocumentId(String),
    /// A JSONL corpus line could not be parsed.
    CorpusParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// An I/O failure while reading or writing a corpus file.
    Io(std::io::Error),
    /// The query produced no indexable terms (e.g. only stopwords or punctuation).
    EmptyQuery,
    /// A document id was requested that is not part of the index.
    UnknownDocument(String),
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::DuplicateDocumentId(id) => {
                write!(f, "duplicate document id in corpus: {id}")
            }
            RetrievalError::CorpusParse { line, message } => {
                write!(f, "failed to parse corpus line {line}: {message}")
            }
            RetrievalError::Io(err) => write!(f, "corpus I/O error: {err}"),
            RetrievalError::EmptyQuery => {
                write!(f, "query contains no indexable terms after analysis")
            }
            RetrievalError::UnknownDocument(id) => write!(f, "unknown document id: {id}"),
        }
    }
}

impl std::error::Error for RetrievalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrievalError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RetrievalError {
    fn from(err: std::io::Error) -> Self {
        RetrievalError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_duplicate_id() {
        let err = RetrievalError::DuplicateDocumentId("d7".into());
        assert!(err.to_string().contains("d7"));
    }

    #[test]
    fn display_corpus_parse() {
        let err = RetrievalError::CorpusParse {
            line: 3,
            message: "bad json".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("bad json"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let err: RetrievalError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn empty_query_and_unknown_document_display() {
        assert!(RetrievalError::EmptyQuery
            .to_string()
            .contains("no indexable"));
        assert!(RetrievalError::UnknownDocument("x".into())
            .to_string()
            .contains("unknown document"));
    }
}
