//! Sharded BM25 retrieval: per-shard indexes, globally exact merged rankings.
//!
//! [`ShardedSearcher`] partitions a corpus into `N` contiguous shards, builds one
//! [`InvertedIndex`] per shard (optionally in parallel), and answers queries by merging
//! per-shard top-k selections. The merged ranking is **bit-identical** to what a single
//! [`Searcher`](crate::searcher::Searcher) over the whole corpus returns, for every
//! shard count — this is the contract the sharding equivalence suite
//! (`crates/retrieval/tests/sharding.rs`) pins.
//!
//! Two mechanisms make exactness possible:
//!
//! 1. **Global statistics.** BM25's `idf` and length normalisation depend on
//!    collection-level statistics (document count, per-term document frequencies,
//!    average document length). Each shard is therefore scored with the statistics of
//!    the *whole* corpus via [`score_all_with`], so every per-document score is
//!    computed from exactly the same operands in exactly the same order as in the
//!    single-index path.
//! 2. **Layout-free tie-breaking.** All rankings order by descending score under
//!    `f64::total_cmp` with ties broken by ascending document id (never by an
//!    index-local ordinal), so the ranking is a pure function of the `(document,
//!    score)` set. Each shard's local top-k necessarily contains every member of the
//!    global top-k that lives in that shard, which makes the `N·k`-candidate merge
//!    exact rather than approximate.

use std::thread;

use crate::bm25::{score_all_with, Bm25Params, CollectionStats};
use crate::document::Corpus;
use crate::error::RetrievalError;
use crate::index::{IndexBuilder, InvertedIndex};
use crate::retriever::Retriever;
use crate::searcher::{rank_cmp, select_top_k, RankedSource};
use crate::tokenize::Tokenizer;

/// Builder for [`ShardedIndex`]: how many shards, which tokenizer, and whether the
/// per-shard indexes are built on worker threads.
#[derive(Debug, Clone)]
pub struct ShardedIndexBuilder {
    tokenizer: Tokenizer,
    num_shards: usize,
    parallel_build: bool,
}

impl ShardedIndexBuilder {
    /// Create a builder that partitions corpora into `num_shards` contiguous shards.
    ///
    /// Shard sizes are balanced (they differ by at most one document); when
    /// `num_shards` exceeds the corpus size the trailing shards are simply empty.
    ///
    /// # Panics
    /// If `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard required");
        Self {
            tokenizer: Tokenizer::default(),
            num_shards,
            parallel_build: true,
        }
    }

    /// Use a custom tokenizer for analysis (all shards share it).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Build the per-shard indexes on one worker thread per shard (the default) or
    /// sequentially on the calling thread. The built index is identical either way;
    /// this only trades wall-clock time for threads on multicore machines.
    pub fn with_parallel_build(mut self, parallel: bool) -> Self {
        self.parallel_build = parallel;
        self
    }

    /// Analyse and index every document of the corpus, one index per shard.
    pub fn build(&self, corpus: &Corpus) -> ShardedIndex {
        let docs = corpus.documents();
        let bounds = partition_bounds(docs.len(), self.num_shards);
        let index_builder = IndexBuilder::default().with_tokenizer(self.tokenizer.clone());

        let build_one = |(start, end): (usize, usize)| -> InvertedIndex {
            let sub = Corpus::from_documents(docs[start..end].to_vec())
                .expect("parent corpus ids are unique");
            index_builder.build(&sub)
        };

        let indexes: Vec<InvertedIndex> = if self.parallel_build && self.num_shards > 1 {
            // PR 2's scoped-worker pattern: one thread per shard, results collected in
            // shard order so the outcome is independent of scheduling.
            thread::scope(|scope| {
                let build_one = &build_one;
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&b| scope.spawn(move || build_one(b)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard index build panicked"))
                    .collect()
            })
        } else {
            bounds.iter().map(|&b| build_one(b)).collect()
        };

        // Exact global statistics: summing integer token counts is order-independent,
        // so the average equals the single-index computation bit-for-bit.
        let num_docs = docs.len();
        let total_len: u64 = indexes
            .iter()
            .flat_map(|index| (0..index.num_docs()).map(|o| u64::from(index.doc_len(o as u32))))
            .sum();
        let avg_doc_len = if num_docs == 0 {
            0.0
        } else {
            total_len as f64 / num_docs as f64
        };

        ShardedIndex {
            shards: indexes,
            num_docs,
            avg_doc_len,
            tokenizer: self.tokenizer.clone(),
        }
    }
}

/// Balanced contiguous partition of `n` documents into `shards` ranges.
fn partition_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = n / shards;
    let remainder = n % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < remainder);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// A corpus partitioned into per-shard inverted indexes plus the global collection
/// statistics needed to score each shard exactly as part of the whole.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<InvertedIndex>,
    num_docs: usize,
    avg_doc_len: f64,
    tokenizer: Tokenizer,
}

impl ShardedIndex {
    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of indexed documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Global average analysed document length (identical to the single-index value).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// Documents per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_docs()).collect()
    }

    /// The tokenizer shared by every shard (queries must use the same one).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Global document frequency of an analysed term (summed over shards).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.shards.iter().map(|s| s.doc_freq(term)).sum()
    }

    /// Global document frequencies for a whole query, parallel to `terms`.
    fn doc_freqs(&self, terms: &[String]) -> Vec<usize> {
        terms.iter().map(|t| self.doc_freq(t)).collect()
    }

    /// The global collection statistics every shard must be scored with. Both query
    /// paths ([`ShardedSearcher::try_search`] and
    /// [`ShardedSearcher::score_document`]) assemble their stats here, so the
    /// bit-identity contract has a single implementation to keep correct.
    fn stats<'a>(&self, doc_freqs: &'a [usize]) -> CollectionStats<'a> {
        CollectionStats {
            num_docs: self.num_docs,
            avg_doc_len: self.avg_doc_len,
            doc_freqs,
        }
    }

    /// Find the shard holding a document id, with the document's shard-local ordinal.
    fn locate(&self, doc_id: &str) -> Option<(&InvertedIndex, u32)> {
        self.shards
            .iter()
            .find_map(|shard| shard.ordinal_of(doc_id).map(|local| (shard, local)))
    }
}

/// BM25 searcher over a [`ShardedIndex`], rank-identical to [`Searcher`] over the same
/// corpus (see the [module docs](self)).
///
/// [`Searcher`]: crate::searcher::Searcher
#[derive(Debug, Clone)]
pub struct ShardedSearcher {
    index: ShardedIndex,
    params: Bm25Params,
}

impl ShardedSearcher {
    /// Create a searcher with default (Pyserini) BM25 parameters.
    pub fn new(index: ShardedIndex) -> Self {
        Self {
            index,
            params: Bm25Params::default(),
        }
    }

    /// Convenience: partition, index and wrap a corpus in one step with defaults.
    pub fn from_corpus(corpus: &Corpus, num_shards: usize) -> Self {
        Self::new(ShardedIndexBuilder::new(num_shards).build(corpus))
    }

    /// Override the BM25 parameters.
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Retrieve the `k` most relevant sources for `query`, most relevant first.
    /// Identical results to [`Searcher::search`](crate::searcher::Searcher::search)
    /// over the unpartitioned corpus.
    pub fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Like [`ShardedSearcher::search`] but reports empty/unanalysable queries as
    /// errors.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer.tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs == 0 {
            return Ok(Vec::new());
        }

        let doc_freqs = self.index.doc_freqs(&terms);
        let stats = self.index.stats(&doc_freqs);

        // Per-shard bounded top-k, then an exact merge of at most `shards · k`
        // candidates under the shared rank order.
        let mut candidates: Vec<(f64, &str, &InvertedIndex, u32)> = Vec::new();
        for shard in &self.index.shards {
            let scores = score_all_with(shard, &terms, self.params, &stats);
            let id_of = |ordinal: u32| {
                shard
                    .doc_id(ordinal)
                    .expect("ordinal produced by scoring must exist")
            };
            for (local, score) in select_top_k(&scores, k, id_of) {
                candidates.push((score, id_of(local), shard, local));
            }
        }
        candidates.sort_by(|a, b| rank_cmp(a.0, a.1, b.0, b.1));
        candidates.truncate(k);

        Ok(candidates
            .into_iter()
            .enumerate()
            .map(|(rank, (score, _, index, local))| {
                let document = index
                    .document(local)
                    .expect("ordinal produced by scoring must exist")
                    .clone();
                RankedSource {
                    doc_id: document.id.clone(),
                    rank,
                    score,
                    document,
                }
            })
            .collect())
    }

    /// Score a single document (by id) against a query, even if it would not rank
    /// top-k. Bit-identical to the single-index
    /// [`Searcher::score_document`](crate::searcher::Searcher::score_document).
    pub fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        let terms = self.index.tokenizer.tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        let (shard, local) = self
            .index
            .locate(doc_id)
            .ok_or_else(|| RetrievalError::UnknownDocument(doc_id.to_string()))?;
        let doc_freqs = self.index.doc_freqs(&terms);
        let stats = self.index.stats(&doc_freqs);
        let scores = score_all_with(shard, &terms, self.params, &stats);
        Ok(scores[local as usize])
    }
}

impl Retriever for ShardedSearcher {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        ShardedSearcher::try_search(self, query, k)
    }

    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        ShardedSearcher::search(self, query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        ShardedSearcher::score_document(self, query, doc_id)
    }

    fn num_docs(&self) -> usize {
        self.index.num_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::searcher::Searcher;

    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads with 369 total match wins in his career",
        ));
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds 24 grand slam titles, the most of the big three",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one",
        ));
        corpus.push(Document::new(
            "clay",
            "Clay courts",
            "Rafael Nadal dominates on clay with fourteen French Open titles",
        ));
        corpus.push(Document::new(
            "cooking",
            "Pasta",
            "Boil water, add salt, cook the pasta until al dente",
        ));
        corpus
    }

    fn assert_same_hits(single: &[RankedSource], sharded: &[RankedSource]) {
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(sharded) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.rank, b.rank);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "score drift on {}",
                a.doc_id
            );
            assert_eq!(a.document, b.document);
        }
    }

    #[test]
    fn matches_single_index_for_every_shard_count() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus));
        for shards in 1..=7 {
            let sharded = ShardedSearcher::from_corpus(&corpus, shards);
            for query in [
                "grand slam titles",
                "djokovic federer nadal titles wins",
                "pasta",
            ] {
                for k in [1, 2, 5, 10] {
                    assert_same_hits(&single.search(query, k), &sharded.search(query, k));
                }
            }
        }
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        assert_eq!(partition_bounds(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(partition_bounds(6, 3), vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(partition_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(partition_bounds(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
    }

    #[test]
    fn empty_shards_are_harmless() {
        let corpus = corpus();
        let sharded = ShardedSearcher::from_corpus(&corpus, 9);
        assert_eq!(sharded.index().num_shards(), 9);
        assert!(sharded.index().shard_sizes().contains(&0));
        let hits = sharded.search("grand slam titles", 3);
        assert_eq!(hits[0].doc_id, "slams");
    }

    #[test]
    fn global_stats_match_single_index() {
        let corpus = corpus();
        let single = IndexBuilder::default().build(&corpus);
        let sharded = ShardedIndexBuilder::new(3).build(&corpus);
        assert_eq!(sharded.num_docs(), single.num_docs());
        assert_eq!(
            sharded.avg_doc_len().to_bits(),
            single.avg_doc_len().to_bits()
        );
        for term in ["djokovic", "titl", "most", "absent"] {
            assert_eq!(sharded.doc_freq(term), single.doc_freq(term), "{term}");
        }
    }

    #[test]
    fn sequential_build_is_identical_to_parallel() {
        let corpus = corpus();
        let parallel = ShardedSearcher::new(ShardedIndexBuilder::new(3).build(&corpus));
        let sequential = ShardedSearcher::new(
            ShardedIndexBuilder::new(3)
                .with_parallel_build(false)
                .build(&corpus),
        );
        assert_same_hits(
            &parallel.search("most titles", 5),
            &sequential.search("most titles", 5),
        );
    }

    #[test]
    fn score_document_matches_single_index_bitwise() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus));
        let sharded = ShardedSearcher::from_corpus(&corpus, 4);
        for id in ["wins", "slams", "weeks", "clay", "cooking"] {
            let a = single.score_document("most grand slam titles", id).unwrap();
            let b = sharded
                .score_document("most grand slam titles", id)
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{id}");
        }
        assert!(matches!(
            sharded.score_document("titles", "nope"),
            Err(RetrievalError::UnknownDocument(_))
        ));
        assert!(matches!(
            sharded.score_document("", "wins"),
            Err(RetrievalError::EmptyQuery)
        ));
    }

    #[test]
    fn empty_query_and_empty_corpus() {
        let sharded = ShardedSearcher::from_corpus(&corpus(), 2);
        assert!(matches!(
            sharded.try_search("the of and", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        assert!(sharded.search("anything", 0).is_empty());
        let empty = ShardedSearcher::from_corpus(&Corpus::new(), 4);
        assert!(empty.search("anything", 5).is_empty());
        assert_eq!(empty.index().num_docs(), 0);
    }

    #[test]
    fn custom_params_are_respected() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus))
            .with_params(Bm25Params::robertson());
        let sharded = ShardedSearcher::from_corpus(&corpus, 3).with_params(Bm25Params::robertson());
        assert_same_hits(
            &single.search("grand slam titles", 5),
            &sharded.search("grand slam titles", 5),
        );
        assert_eq!(sharded.params(), Bm25Params::robertson());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedIndexBuilder::new(0);
    }
}
