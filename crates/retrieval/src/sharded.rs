//! Sharded BM25 retrieval: per-shard indexes, globally exact merged rankings, and
//! incremental mutation through per-shard delta segments.
//!
//! [`ShardedSearcher`] partitions a corpus into `N` contiguous shards, builds one
//! [`InvertedIndex`] per shard (optionally in parallel), and answers queries by merging
//! per-shard top-k selections. The merged ranking is **bit-identical** to what a single
//! [`Searcher`](crate::searcher::Searcher) over the whole corpus returns, for every
//! shard count — this is the contract the sharding equivalence suite
//! (`crates/retrieval/tests/sharding.rs`) pins.
//!
//! Two mechanisms make exactness possible:
//!
//! 1. **Global statistics.** BM25's `idf` and length normalisation depend on
//!    collection-level statistics (document count, per-term document frequencies,
//!    average document length). Each shard is therefore scored with the statistics of
//!    the *whole* corpus, so every per-document score is computed from exactly the
//!    same operands in exactly the same order as in the single-index path.
//! 2. **Layout-free tie-breaking.** All rankings order by descending score under
//!    `f64::total_cmp` with ties broken by ascending document id (never by an
//!    index-local ordinal), so the ranking is a pure function of the `(document,
//!    score)` set. Each shard's local top-k necessarily contains every member of the
//!    global top-k that lives in that shard, which makes the merge exact rather than
//!    approximate.
//!
//! Queries run through the exact dynamic-pruning engine
//! ([`pruned_top_k`](crate::topk)): each segment is searched term-at-a-time with
//! admissible per-term upper bounds, tombstoned ordinals excluded at candidate
//! generation, and — because segments are visited in sequence — the running global
//! k-th best candidate score is handed to later segments as an initial pruning
//! threshold (a document scoring strictly below it cannot enter the merged top-k, so
//! skipping it is exact). Every emitted score is still produced by the shared
//! query-order rescoring kernel, preserving bit-identity; parameter settings outside
//! the bounds' admissibility envelope fall back to exhaustive scoring
//! ([`try_search_exhaustive`](ShardedSearcher::try_search_exhaustive), which is also
//! the differential oracle the pruning suite compares against).
//!
//! ## The delta/compaction contract
//!
//! [`ShardedIndex`] is mutable: [`add`](ShardedIndex::add),
//! [`remove`](ShardedIndex::remove) and [`update`](ShardedIndex::update) change the
//! live document set without rebuilding the whole index. Each shard holds two
//! segments:
//!
//! * a **base** segment — the immutable index built at construction (or at the last
//!   compaction), with a set of *tombstoned* ordinals for documents removed since;
//! * a **delta** segment — a small index over the documents added since, rebuilt on
//!   each mutation (the delta is bounded, so this is cheap).
//!
//! The global collection statistics (`num_docs`, total analysed length and therefore
//! `avg_doc_len`, per-term `doc_freq`) are maintained **exactly** on every mutation:
//! integer token counts are added/subtracted (order-independent), and tombstoned
//! documents are subtracted from the per-term document frequencies they contributed
//! to. Queries score every segment with these global stats and exclude tombstoned
//! ordinals from candidacy, so by the two mechanisms above the ranking and every
//! score are **bit-identical to a from-scratch
//! [`ShardedIndexBuilder::build`]** of the current live document set — at every
//! version. The incremental-equivalence suite
//! (`crates/retrieval/tests/incremental.rs`) pins this across random interleavings of
//! mutations and compactions.
//!
//! **Compaction** merges a shard's live base documents and delta documents into a new
//! base segment and clears the tombstones. It is a pure layout change: scores,
//! rankings, statistics, the [`CorpusVersion`] and the fingerprint are all unchanged.
//! Compaction runs automatically when a shard's delta grows past a fixed bound or
//! tombstones outnumber half its base, and on demand via
//! [`compact`](ShardedIndex::compact).
//!
//! Every mutation increments the index's [`CorpusVersion`] (a fresh build is
//! version 1) and maintains an order-independent content fingerprint; downstream
//! caches key on the version to invalidate stale results.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;

use crate::bm25::{score_all_with, score_doc_with, Bm25Params, CollectionStats};
use crate::document::{Corpus, Document};
use crate::error::RetrievalError;
use crate::index::{IndexBuilder, InvertedIndex};
use crate::retriever::{CorpusVersion, Retriever};
use crate::searcher::{rank_cmp, select_top_k, RankedSource};
use crate::tokenize::Tokenizer;
use crate::topk::{prunable, pruned_top_k, ScoreWorkspace};

/// A delta segment larger than this triggers automatic compaction of its shard.
const DELTA_COMPACT_LIMIT: usize = 64;

/// FNV-1a 64-bit offset basis / prime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Field separator so concatenation ambiguities cannot collide trivially.
    *hash ^= 0xff;
    *hash = hash.wrapping_mul(FNV_PRIME);
}

/// Content hash of one document (id, title, text and metadata fields).
pub fn document_fingerprint(doc: &Document) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, doc.id.as_bytes());
    fnv1a(&mut hash, doc.title.as_bytes());
    fnv1a(&mut hash, doc.text.as_bytes());
    for (key, value) in &doc.fields {
        fnv1a(&mut hash, key.as_bytes());
        fnv1a(&mut hash, value.as_bytes());
    }
    hash
}

/// Order-independent content fingerprint of a whole corpus: the wrapping sum of its
/// [`document_fingerprint`]s. Two corpora holding the same documents in any order
/// fingerprint identically; it is what [`CorpusVersion::fingerprint`] carries.
pub fn corpus_fingerprint(corpus: &Corpus) -> u64 {
    corpus
        .iter()
        .fold(0u64, |acc, doc| acc.wrapping_add(document_fingerprint(doc)))
}

/// Builder for [`ShardedIndex`]: how many shards, which tokenizer, and whether the
/// per-shard indexes are built on worker threads.
#[derive(Debug, Clone)]
pub struct ShardedIndexBuilder {
    tokenizer: Tokenizer,
    num_shards: usize,
    parallel_build: bool,
}

impl ShardedIndexBuilder {
    /// Create a builder that partitions corpora into `num_shards` contiguous shards.
    ///
    /// Shard sizes are balanced (they differ by at most one document); when
    /// `num_shards` exceeds the corpus size the trailing shards are simply empty.
    ///
    /// # Panics
    /// If `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard required");
        Self {
            tokenizer: Tokenizer::default(),
            num_shards,
            parallel_build: true,
        }
    }

    /// Use a custom tokenizer for analysis (all shards share it).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Build the per-shard indexes on one worker thread per shard (the default) or
    /// sequentially on the calling thread. The built index is identical either way;
    /// this only trades wall-clock time for threads on multicore machines.
    pub fn with_parallel_build(mut self, parallel: bool) -> Self {
        self.parallel_build = parallel;
        self
    }

    /// Analyse and index every document of the corpus, one index per shard.
    pub fn build(&self, corpus: &Corpus) -> ShardedIndex {
        let docs = corpus.documents();
        let bounds = partition_bounds(docs.len(), self.num_shards);
        let index_builder = IndexBuilder::default().with_tokenizer(self.tokenizer.clone());

        let build_one = |(start, end): (usize, usize)| -> InvertedIndex {
            let sub = Corpus::from_documents(docs[start..end].to_vec())
                .expect("parent corpus ids are unique");
            index_builder.build(&sub)
        };

        let indexes: Vec<InvertedIndex> = if self.parallel_build && self.num_shards > 1 {
            // PR 2's scoped-worker pattern: one thread per shard, results collected in
            // shard order so the outcome is independent of scheduling.
            thread::scope(|scope| {
                let build_one = &build_one;
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&b| scope.spawn(move || build_one(b)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard index build panicked"))
                    .collect()
            })
        } else {
            bounds.iter().map(|&b| build_one(b)).collect()
        };

        // Exact global statistics: summing integer token counts is order-independent,
        // so the average equals the single-index computation bit-for-bit.
        let num_docs = docs.len();
        let total_len: u64 = indexes
            .iter()
            .flat_map(|index| (0..index.num_docs()).map(|o| u64::from(index.doc_len(o as u32))))
            .sum();
        let avg_doc_len = if num_docs == 0 {
            0.0
        } else {
            total_len as f64 / num_docs as f64
        };

        let empty_delta = index_builder.build(&Corpus::new());
        let shards = indexes
            .into_iter()
            .map(|base| Shard {
                base,
                dead: HashSet::new(),
                dead_terms: HashMap::new(),
                delta_docs: Vec::new(),
                delta_tokens: Vec::new(),
                delta: empty_delta.clone(),
            })
            .collect();

        ShardedIndex {
            shards,
            num_docs,
            total_len,
            avg_doc_len,
            tokenizer: self.tokenizer.clone(),
            version: 1,
            fingerprint: corpus_fingerprint(corpus),
        }
    }
}

/// Balanced contiguous partition of `n` documents into `shards` ranges.
fn partition_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = n / shards;
    let remainder = n % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < remainder);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// One shard: an immutable base segment with tombstones plus a small delta segment of
/// documents added since the last compaction (see the
/// [delta/compaction contract](self)).
#[derive(Debug, Clone)]
struct Shard {
    base: InvertedIndex,
    /// Tombstoned *ordinals* of the base segment. Ordinal-level (not id-level)
    /// tombstones mean a removed-then-re-added id can never resurrect old content.
    dead: HashSet<u32>,
    /// Per-term count of tombstoned base documents containing the term — the exact
    /// correction applied to the base segment's document frequencies.
    dead_terms: HashMap<String, usize>,
    /// The live documents of the delta segment, in insertion order.
    delta_docs: Vec<Document>,
    /// Cached analysed token streams, parallel to `delta_docs`. Analysis is
    /// deterministic, so re-indexing from the cache is bit-identical to re-analysing —
    /// it just spares every rebuild a full tokenizer pass over the whole delta.
    delta_tokens: Vec<Vec<String>>,
    /// Index over `delta_docs`, rebuilt on each mutation of this shard.
    delta: InvertedIndex,
}

impl Shard {
    /// Live documents in this shard (base minus tombstones, plus delta).
    fn live_docs(&self) -> usize {
        self.base.num_docs() - self.dead.len() + self.delta.num_docs()
    }

    /// Exact live document frequency of a term within this shard.
    fn doc_freq(&self, term: &str) -> usize {
        self.base.doc_freq(term) - self.dead_terms.get(term).copied().unwrap_or(0)
            + self.delta.doc_freq(term)
    }

    fn rebuild_delta(&mut self, builder: &IndexBuilder) {
        let corpus =
            Corpus::from_documents(self.delta_docs.clone()).expect("delta document ids are unique");
        self.delta = builder.build_analysed(&corpus, &self.delta_tokens);
    }

    /// Whether this shard's pending state warrants folding into a new base segment.
    fn wants_compaction(&self) -> bool {
        self.delta_docs.len() >= DELTA_COMPACT_LIMIT || self.dead.len() * 2 > self.base.num_docs()
    }

    /// Merge live base documents and delta documents into a fresh base segment; a
    /// pure layout change (no statistic, version or fingerprint moves).
    fn compact(&mut self, builder: &IndexBuilder) {
        if self.dead.is_empty() && self.delta_docs.is_empty() {
            return;
        }
        let mut docs: Vec<Document> = (0..self.base.num_docs() as u32)
            .filter(|ordinal| !self.dead.contains(ordinal))
            .map(|ordinal| {
                self.base
                    .document(ordinal)
                    .expect("ordinal in range")
                    .clone()
            })
            .collect();
        docs.append(&mut self.delta_docs);
        self.delta_tokens.clear();
        let corpus = Corpus::from_documents(docs).expect("live ids are unique");
        self.base = builder.build(&corpus);
        self.dead.clear();
        self.dead_terms.clear();
        self.delta = builder.build(&Corpus::new());
    }
}

/// A corpus partitioned into per-shard segmented indexes plus the global collection
/// statistics needed to score each shard exactly as part of the whole.
///
/// The index is mutable — see the [delta/compaction contract](self) for how
/// [`add`](Self::add)/[`remove`](Self::remove)/[`update`](Self::update) keep every
/// score bit-identical to a from-scratch rebuild while the [`CorpusVersion`] tracks
/// each mutation.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    num_docs: usize,
    total_len: u64,
    avg_doc_len: f64,
    tokenizer: Tokenizer,
    version: u64,
    fingerprint: u64,
}

impl ShardedIndex {
    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of live documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Global average analysed document length (identical to the single-index value).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// Live documents per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.live_docs()).collect()
    }

    /// The tokenizer shared by every shard (queries must use the same one).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Global document frequency of an analysed term over live documents.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.shards.iter().map(|s| s.doc_freq(term)).sum()
    }

    /// The current corpus identity: mutation counter plus content fingerprint.
    pub fn corpus_version(&self) -> CorpusVersion {
        CorpusVersion {
            version: self.version,
            fingerprint: self.fingerprint,
        }
    }

    /// Override the version counter (the fingerprint is content-derived and cannot be
    /// set). Services holding one authoritative version per corpus use this to align
    /// a freshly built index with the corpus's true mutation count.
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Whether a live document with this id exists.
    pub fn contains(&self, doc_id: &str) -> bool {
        self.locate(doc_id).is_some()
    }

    /// Add a new document. Fails with [`RetrievalError::DuplicateDocumentId`] when a
    /// live document with the same id exists; increments the version on success.
    pub fn add(&mut self, doc: Document) -> Result<(), RetrievalError> {
        if self.contains(&doc.id) {
            return Err(RetrievalError::DuplicateDocumentId(doc.id));
        }
        self.add_internal(doc);
        self.version += 1;
        Ok(())
    }

    /// Remove a live document by id, returning it. Fails with
    /// [`RetrievalError::UnknownDocument`] when absent; increments the version on
    /// success.
    pub fn remove(&mut self, doc_id: &str) -> Result<Document, RetrievalError> {
        let doc = self.remove_internal(doc_id)?;
        self.version += 1;
        Ok(doc)
    }

    /// Replace the live document carrying `doc.id` with `doc`, returning the previous
    /// version. Fails with [`RetrievalError::UnknownDocument`] when absent; counts as
    /// one mutation (the version increments once).
    pub fn update(&mut self, doc: Document) -> Result<Document, RetrievalError> {
        let old = self.remove_internal(&doc.id)?;
        self.add_internal(doc);
        self.version += 1;
        Ok(old)
    }

    /// Compact every shard (see the [delta/compaction contract](self)). Scores,
    /// statistics, version and fingerprint are unchanged — only the layout moves.
    pub fn compact(&mut self) {
        let builder = self.index_builder();
        for shard in &mut self.shards {
            shard.compact(&builder);
        }
    }

    fn index_builder(&self) -> IndexBuilder {
        IndexBuilder::default().with_tokenizer(self.tokenizer.clone())
    }

    fn recompute_avg(&mut self) {
        self.avg_doc_len = if self.num_docs == 0 {
            0.0
        } else {
            self.total_len as f64 / self.num_docs as f64
        };
    }

    fn add_internal(&mut self, doc: Document) {
        // Analyse exactly once: the token stream feeds both the global length
        // statistics and (via the shard's token cache) every delta rebuild.
        let tokens = self.tokenizer.tokenize(&doc.full_text());
        let len = tokens.len() as u64;
        self.fingerprint = self.fingerprint.wrapping_add(document_fingerprint(&doc));
        let target = (0..self.shards.len())
            .min_by_key(|&s| (self.shards[s].live_docs(), s))
            .expect("at least one shard");
        let builder = self.index_builder();
        let shard = &mut self.shards[target];
        shard.delta_docs.push(doc);
        shard.delta_tokens.push(tokens);
        shard.rebuild_delta(&builder);
        self.num_docs += 1;
        self.total_len += len;
        self.recompute_avg();
        if self.shards[target].wants_compaction() {
            self.shards[target].compact(&builder);
        }
    }

    fn remove_internal(&mut self, doc_id: &str) -> Result<Document, RetrievalError> {
        let builder = self.index_builder();
        for s in 0..self.shards.len() {
            // The live copy may sit in the delta segment...
            if let Some(pos) = self.shards[s]
                .delta_docs
                .iter()
                .position(|d| d.id == doc_id)
            {
                let shard = &mut self.shards[s];
                let ordinal = shard
                    .delta
                    .ordinal_of(doc_id)
                    .expect("delta index mirrors delta_docs");
                let len = u64::from(shard.delta.doc_len(ordinal));
                let doc = shard.delta_docs.remove(pos);
                shard.delta_tokens.remove(pos);
                shard.rebuild_delta(&builder);
                self.finish_removal(&doc, len);
                return Ok(doc);
            }
            // ...or in the base segment, where removal is a tombstone plus an exact
            // correction of the per-term document frequencies it contributed to.
            if let Some(ordinal) = self.shards[s].base.ordinal_of(doc_id) {
                if !self.shards[s].dead.contains(&ordinal) {
                    let shard = &mut self.shards[s];
                    let doc = shard
                        .base
                        .document(ordinal)
                        .expect("ordinal in range")
                        .clone();
                    let len = u64::from(shard.base.doc_len(ordinal));
                    shard.dead.insert(ordinal);
                    let terms: BTreeSet<String> = shard
                        .base
                        .tokenizer()
                        .tokenize(&doc.full_text())
                        .into_iter()
                        .collect();
                    for term in terms {
                        *shard.dead_terms.entry(term).or_insert(0) += 1;
                    }
                    self.finish_removal(&doc, len);
                    if self.shards[s].wants_compaction() {
                        self.shards[s].compact(&builder);
                    }
                    return Ok(doc);
                }
                // Tombstoned here — the live copy (if any) lives elsewhere.
            }
        }
        Err(RetrievalError::UnknownDocument(doc_id.to_string()))
    }

    fn finish_removal(&mut self, doc: &Document, len: u64) {
        self.fingerprint = self.fingerprint.wrapping_sub(document_fingerprint(doc));
        self.num_docs -= 1;
        self.total_len -= len;
        self.recompute_avg();
    }

    /// Global document frequencies for a whole query, parallel to `terms`.
    fn doc_freqs(&self, terms: &[String]) -> Vec<usize> {
        terms.iter().map(|t| self.doc_freq(t)).collect()
    }

    /// The global collection statistics every segment must be scored with. Both query
    /// paths ([`ShardedSearcher::try_search`] and
    /// [`ShardedSearcher::score_document`]) assemble their stats here, so the
    /// bit-identity contract has a single implementation to keep correct.
    fn stats<'a>(&self, doc_freqs: &'a [usize]) -> CollectionStats<'a> {
        CollectionStats {
            num_docs: self.num_docs,
            avg_doc_len: self.avg_doc_len,
            doc_freqs,
        }
    }

    /// Find the segment holding the *live* copy of a document id, with the document's
    /// segment-local ordinal. Tombstoned base entries never match.
    fn locate(&self, doc_id: &str) -> Option<(&InvertedIndex, u32)> {
        for shard in &self.shards {
            if let Some(local) = shard.delta.ordinal_of(doc_id) {
                return Some((&shard.delta, local));
            }
            if let Some(local) = shard.base.ordinal_of(doc_id) {
                if !shard.dead.contains(&local) {
                    return Some((&shard.base, local));
                }
            }
        }
        None
    }
}

/// BM25 searcher over a [`ShardedIndex`], rank-identical to [`Searcher`] over the same
/// corpus (see the [module docs](self)).
///
/// [`Searcher`]: crate::searcher::Searcher
#[derive(Debug)]
pub struct ShardedSearcher {
    index: ShardedIndex,
    params: Bm25Params,
    /// Reusable sparse scoring workspace shared by every segment of a query (sized to
    /// the largest segment touched). Queries that find it busy fall back to a
    /// throwaway workspace — results are identical either way.
    workspace: Mutex<ScoreWorkspace>,
}

impl Clone for ShardedSearcher {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            params: self.params,
            workspace: Mutex::new(ScoreWorkspace::new()),
        }
    }
}

impl ShardedSearcher {
    /// Create a searcher with default (Pyserini) BM25 parameters.
    pub fn new(index: ShardedIndex) -> Self {
        Self {
            index,
            params: Bm25Params::default(),
            workspace: Mutex::new(ScoreWorkspace::new()),
        }
    }

    /// Convenience: partition, index and wrap a corpus in one step with defaults.
    pub fn from_corpus(corpus: &Corpus, num_shards: usize) -> Self {
        Self::new(ShardedIndexBuilder::new(num_shards).build(corpus))
    }

    /// Override the BM25 parameters.
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Mutable access to the underlying index, for incremental mutations.
    pub fn index_mut(&mut self) -> &mut ShardedIndex {
        &mut self.index
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Retrieve the `k` most relevant sources for `query`, most relevant first.
    /// Identical results to [`Searcher::search`](crate::searcher::Searcher::search)
    /// over the unpartitioned corpus.
    pub fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Like [`ShardedSearcher::search`] but reports empty/unanalysable queries as
    /// errors.
    ///
    /// Runs the exact dynamic-pruning engine over every segment (see the
    /// [module docs](self)); parameters outside the pruning admissibility envelope
    /// fall back to exhaustive scoring. Either way the result is bit-identical to
    /// [`try_search_exhaustive`](Self::try_search_exhaustive).
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer.tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs == 0 {
            return Ok(Vec::new());
        }
        if !prunable(self.params) {
            return self.exhaustive_with_terms(&terms, k);
        }
        let doc_freqs = self.index.doc_freqs(&terms);
        let stats = self.index.stats(&doc_freqs);
        match self.workspace.try_lock() {
            Ok(mut ws) => self.pruned_with_terms(&terms, k, &stats, &mut ws),
            Err(_) => self.pruned_with_terms(&terms, k, &stats, &mut ScoreWorkspace::new()),
        }
    }

    /// Exhaustive-scoring oracle: identical results to [`try_search`](Self::try_search)
    /// computed by densely scoring every document of every segment.
    ///
    /// This is the reference implementation the differential pruning suite
    /// (`crates/retrieval/tests/pruning.rs`) and the retrieval benchmark compare
    /// against; production queries should use [`try_search`](Self::try_search).
    pub fn try_search_exhaustive(
        &self,
        query: &str,
        k: usize,
    ) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer.tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs == 0 {
            return Ok(Vec::new());
        }
        self.exhaustive_with_terms(&terms, k)
    }

    /// Pruned per-segment top-k with a running cross-segment threshold, then an exact
    /// merge of the candidates under the shared rank order.
    fn pruned_with_terms(
        &self,
        terms: &[String],
        k: usize,
        stats: &CollectionStats<'_>,
        ws: &mut ScoreWorkspace,
    ) -> Result<Vec<RankedSource>, RetrievalError> {
        let mut candidates: Vec<(f64, &str, &InvertedIndex, u32)> = Vec::new();
        // Once k candidates exist globally, their k-th best (exact) score is a valid
        // initial pruning threshold for every later segment: a document scoring
        // strictly below it cannot displace any of them in the merged ranking.
        let mut floor: Option<f64> = None;
        for shard in &self.index.shards {
            let dead = (!shard.dead.is_empty()).then_some(&shard.dead);
            let segments = [(&shard.base, dead), (&shard.delta, None)];
            for (segment, dead) in segments {
                if segment.num_docs() == 0 {
                    continue;
                }
                let selected = pruned_top_k(segment, terms, self.params, stats, k, dead, floor, ws);
                for (local, score) in selected {
                    let id = segment
                        .doc_id(local)
                        .expect("ordinal produced by scoring must exist");
                    candidates.push((score, id, segment, local));
                }
                candidates.sort_by(|a, b| rank_cmp(a.0, a.1, b.0, b.1));
                candidates.truncate(k);
                if candidates.len() == k {
                    floor = Some(candidates[k - 1].0);
                }
            }
        }
        Ok(Self::to_ranked(candidates))
    }

    /// Dense scoring of every segment; tombstoned base ordinals are zeroed before
    /// selection (`select_top_k` never returns non-positive scores), so dead documents
    /// are indistinguishable from absent ones.
    fn exhaustive_with_terms(
        &self,
        terms: &[String],
        k: usize,
    ) -> Result<Vec<RankedSource>, RetrievalError> {
        let doc_freqs = self.index.doc_freqs(terms);
        let stats = self.index.stats(&doc_freqs);
        let mut candidates: Vec<(f64, &str, &InvertedIndex, u32)> = Vec::new();
        for shard in &self.index.shards {
            let mut scores = score_all_with(&shard.base, terms, self.params, &stats);
            for &dead in &shard.dead {
                if let Some(slot) = scores.get_mut(dead as usize) {
                    *slot = 0.0;
                }
            }
            self.select_into(&shard.base, &scores, k, &mut candidates);
            if shard.delta.num_docs() > 0 {
                let scores = score_all_with(&shard.delta, terms, self.params, &stats);
                self.select_into(&shard.delta, &scores, k, &mut candidates);
            }
        }
        candidates.sort_by(|a, b| rank_cmp(a.0, a.1, b.0, b.1));
        candidates.truncate(k);
        Ok(Self::to_ranked(candidates))
    }

    fn to_ranked(candidates: Vec<(f64, &str, &InvertedIndex, u32)>) -> Vec<RankedSource> {
        candidates
            .into_iter()
            .enumerate()
            .map(|(rank, (score, _, index, local))| {
                let document = index
                    .document(local)
                    .expect("ordinal produced by scoring must exist")
                    .clone();
                RankedSource {
                    doc_id: document.id.clone(),
                    rank,
                    score,
                    document,
                }
            })
            .collect()
    }

    fn select_into<'a>(
        &self,
        segment: &'a InvertedIndex,
        scores: &[f64],
        k: usize,
        candidates: &mut Vec<(f64, &'a str, &'a InvertedIndex, u32)>,
    ) {
        let id_of = |ordinal: u32| {
            segment
                .doc_id(ordinal)
                .expect("ordinal produced by scoring must exist")
        };
        for (local, score) in select_top_k(scores, k, id_of) {
            candidates.push((score, id_of(local), segment, local));
        }
    }

    /// Score a single document (by id) against a query, even if it would not rank
    /// top-k. Bit-identical to the single-index
    /// [`Searcher::score_document`](crate::searcher::Searcher::score_document).
    pub fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        let terms = self.index.tokenizer.tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        let (segment, local) = self
            .index
            .locate(doc_id)
            .ok_or_else(|| RetrievalError::UnknownDocument(doc_id.to_string()))?;
        let doc_freqs = self.index.doc_freqs(&terms);
        let stats = self.index.stats(&doc_freqs);
        Ok(score_doc_with(segment, &terms, self.params, &stats, local))
    }
}

impl Retriever for ShardedSearcher {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        ShardedSearcher::try_search(self, query, k)
    }

    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        ShardedSearcher::search(self, query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        ShardedSearcher::score_document(self, query, doc_id)
    }

    fn num_docs(&self) -> usize {
        self.index.num_docs()
    }

    fn corpus_version(&self) -> Option<CorpusVersion> {
        Some(self.index.corpus_version())
    }
}

/// A thread-safe, mutable retrieval backend: a [`ShardedSearcher`] behind a `RwLock`.
///
/// Queries take a read lock (and so run concurrently); mutations take the write lock
/// and apply incrementally through the [delta/compaction contract](self). A pipeline
/// holding an `Arc<LiveSearcher>` observes every mutation on its next query — no
/// rebuild, no re-wiring — and can read the current [`CorpusVersion`] through
/// [`Retriever::corpus_version`] to invalidate anything it cached.
#[derive(Debug)]
pub struct LiveSearcher {
    inner: RwLock<ShardedSearcher>,
}

impl LiveSearcher {
    /// Wrap an existing searcher.
    pub fn new(searcher: ShardedSearcher) -> Self {
        Self {
            inner: RwLock::new(searcher),
        }
    }

    /// Partition, index and wrap a corpus in one step with defaults.
    pub fn from_corpus(corpus: &Corpus, num_shards: usize) -> Self {
        Self::new(ShardedSearcher::from_corpus(corpus, num_shards))
    }

    fn read(&self) -> RwLockReadGuard<'_, ShardedSearcher> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, ShardedSearcher> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Add a new document; returns the new corpus version. Fails with
    /// [`RetrievalError::DuplicateDocumentId`] when the id is already live.
    pub fn add(&self, doc: Document) -> Result<CorpusVersion, RetrievalError> {
        let mut inner = self.write();
        inner.index_mut().add(doc)?;
        Ok(inner.index().corpus_version())
    }

    /// Remove a live document by id; returns it with the new corpus version. Fails
    /// with [`RetrievalError::UnknownDocument`] when absent.
    pub fn remove(&self, doc_id: &str) -> Result<(Document, CorpusVersion), RetrievalError> {
        let mut inner = self.write();
        let doc = inner.index_mut().remove(doc_id)?;
        Ok((doc, inner.index().corpus_version()))
    }

    /// Replace the live document carrying `doc.id`; returns the previous version of
    /// the document with the new corpus version. Fails with
    /// [`RetrievalError::UnknownDocument`] when absent.
    pub fn update(&self, doc: Document) -> Result<(Document, CorpusVersion), RetrievalError> {
        let mut inner = self.write();
        let old = inner.index_mut().update(doc)?;
        Ok((old, inner.index().corpus_version()))
    }

    /// Update the document if its id is live, add it otherwise; one mutation either
    /// way. Returns the new corpus version.
    pub fn upsert(&self, doc: Document) -> Result<CorpusVersion, RetrievalError> {
        let mut inner = self.write();
        if inner.index().contains(&doc.id) {
            inner.index_mut().update(doc)?;
        } else {
            inner.index_mut().add(doc)?;
        }
        Ok(inner.index().corpus_version())
    }

    /// Compact every shard (a pure layout change; the version does not move).
    pub fn compact(&self) {
        self.write().index_mut().compact();
    }

    /// The current corpus identity.
    pub fn version(&self) -> CorpusVersion {
        self.read().index().corpus_version()
    }

    /// Override the version counter (see [`ShardedIndex::set_version`]).
    pub fn set_version(&self, version: u64) {
        self.write().index_mut().set_version(version);
    }
}

impl Retriever for LiveSearcher {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        self.read().try_search(query, k)
    }

    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.read().search(query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        self.read().score_document(query, doc_id)
    }

    fn num_docs(&self) -> usize {
        self.read().index().num_docs()
    }

    fn corpus_version(&self) -> Option<CorpusVersion> {
        Some(self.read().index().corpus_version())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::searcher::Searcher;

    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads with 369 total match wins in his career",
        ));
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds 24 grand slam titles, the most of the big three",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one",
        ));
        corpus.push(Document::new(
            "clay",
            "Clay courts",
            "Rafael Nadal dominates on clay with fourteen French Open titles",
        ));
        corpus.push(Document::new(
            "cooking",
            "Pasta",
            "Boil water, add salt, cook the pasta until al dente",
        ));
        corpus
    }

    fn assert_same_hits(single: &[RankedSource], sharded: &[RankedSource]) {
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(sharded) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.rank, b.rank);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "score drift on {}",
                a.doc_id
            );
            assert_eq!(a.document, b.document);
        }
    }

    #[test]
    fn matches_single_index_for_every_shard_count() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus));
        for shards in 1..=7 {
            let sharded = ShardedSearcher::from_corpus(&corpus, shards);
            for query in [
                "grand slam titles",
                "djokovic federer nadal titles wins",
                "pasta",
            ] {
                for k in [1, 2, 5, 10] {
                    assert_same_hits(&single.search(query, k), &sharded.search(query, k));
                }
            }
        }
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        assert_eq!(partition_bounds(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(partition_bounds(6, 3), vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(partition_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(partition_bounds(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
    }

    #[test]
    fn empty_shards_are_harmless() {
        let corpus = corpus();
        let sharded = ShardedSearcher::from_corpus(&corpus, 9);
        assert_eq!(sharded.index().num_shards(), 9);
        assert!(sharded.index().shard_sizes().contains(&0));
        let hits = sharded.search("grand slam titles", 3);
        assert_eq!(hits[0].doc_id, "slams");
    }

    #[test]
    fn global_stats_match_single_index() {
        let corpus = corpus();
        let single = IndexBuilder::default().build(&corpus);
        let sharded = ShardedIndexBuilder::new(3).build(&corpus);
        assert_eq!(sharded.num_docs(), single.num_docs());
        assert_eq!(
            sharded.avg_doc_len().to_bits(),
            single.avg_doc_len().to_bits()
        );
        for term in ["djokovic", "titl", "most", "absent"] {
            assert_eq!(sharded.doc_freq(term), single.doc_freq(term), "{term}");
        }
    }

    #[test]
    fn sequential_build_is_identical_to_parallel() {
        let corpus = corpus();
        let parallel = ShardedSearcher::new(ShardedIndexBuilder::new(3).build(&corpus));
        let sequential = ShardedSearcher::new(
            ShardedIndexBuilder::new(3)
                .with_parallel_build(false)
                .build(&corpus),
        );
        assert_same_hits(
            &parallel.search("most titles", 5),
            &sequential.search("most titles", 5),
        );
    }

    #[test]
    fn score_document_matches_single_index_bitwise() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus));
        let sharded = ShardedSearcher::from_corpus(&corpus, 4);
        for id in ["wins", "slams", "weeks", "clay", "cooking"] {
            let a = single.score_document("most grand slam titles", id).unwrap();
            let b = sharded
                .score_document("most grand slam titles", id)
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{id}");
        }
        assert!(matches!(
            sharded.score_document("titles", "nope"),
            Err(RetrievalError::UnknownDocument(_))
        ));
        assert!(matches!(
            sharded.score_document("", "wins"),
            Err(RetrievalError::EmptyQuery)
        ));
    }

    #[test]
    fn empty_query_and_empty_corpus() {
        let sharded = ShardedSearcher::from_corpus(&corpus(), 2);
        assert!(matches!(
            sharded.try_search("the of and", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        assert!(sharded.search("anything", 0).is_empty());
        let empty = ShardedSearcher::from_corpus(&Corpus::new(), 4);
        assert!(empty.search("anything", 5).is_empty());
        assert_eq!(empty.index().num_docs(), 0);
    }

    #[test]
    fn custom_params_are_respected() {
        let corpus = corpus();
        let single = Searcher::new(IndexBuilder::default().build(&corpus))
            .with_params(Bm25Params::robertson());
        let sharded = ShardedSearcher::from_corpus(&corpus, 3).with_params(Bm25Params::robertson());
        assert_same_hits(
            &single.search("grand slam titles", 5),
            &sharded.search("grand slam titles", 5),
        );
        assert_eq!(sharded.params(), Bm25Params::robertson());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedIndexBuilder::new(0);
    }

    #[test]
    fn mutations_match_a_fresh_rebuild() {
        let mut index = ShardedIndexBuilder::new(3).build(&corpus());
        index
            .add(Document::new(
                "doubles",
                "Doubles",
                "The Bryan brothers dominated doubles for a decade",
            ))
            .unwrap();
        index.remove("cooking").unwrap();
        index
            .update(Document::new(
                "clay",
                "Clay courts",
                "Rafael Nadal won a record fourteenth French Open title on clay",
            ))
            .unwrap();

        let mut mirror = corpus();
        mirror.push(Document::new(
            "doubles",
            "Doubles",
            "The Bryan brothers dominated doubles for a decade",
        ));
        mirror.remove("cooking").unwrap();
        mirror
            .replace(Document::new(
                "clay",
                "Clay courts",
                "Rafael Nadal won a record fourteenth French Open title on clay",
            ))
            .unwrap();

        let live = ShardedSearcher::new(index.clone());
        let rebuilt = ShardedSearcher::new(ShardedIndexBuilder::new(3).build(&mirror));
        assert_same_hits(
            &live.search("french open clay titles", 5),
            &rebuilt.search("french open clay titles", 5),
        );
        assert_eq!(
            live.index().avg_doc_len().to_bits(),
            rebuilt.index().avg_doc_len().to_bits()
        );
        assert_eq!(
            live.index().corpus_version().fingerprint,
            rebuilt.index().corpus_version().fingerprint
        );

        // Compaction changes layout only.
        index.compact();
        let compacted = ShardedSearcher::new(index);
        assert_same_hits(
            &compacted.search("french open clay titles", 5),
            &rebuilt.search("french open clay titles", 5),
        );
    }

    #[test]
    fn pruned_matches_exhaustive_through_mutations() {
        // The production (pruned) path and the dense oracle must agree bit-for-bit at
        // every mutation step — including with tombstones in the base segments and
        // live delta segments. The full property suite lives in tests/pruning.rs;
        // this pins the wiring.
        let mut searcher = ShardedSearcher::from_corpus(&corpus(), 3);
        let queries = [
            "grand slam titles",
            "djokovic federer nadal titles wins",
            "pasta",
            "most most most weeks", // duplicate terms exercise repeat accumulation
        ];
        let check = |s: &ShardedSearcher| {
            for query in queries {
                for k in [1, 2, 3, 10] {
                    let pruned = s.try_search(query, k).unwrap();
                    let oracle = s.try_search_exhaustive(query, k).unwrap();
                    assert_same_hits(&oracle, &pruned);
                }
            }
        };
        check(&searcher);
        searcher
            .index_mut()
            .add(Document::new(
                "doubles",
                "Doubles",
                "The Bryan brothers dominated doubles grand slam draws",
            ))
            .unwrap();
        check(&searcher);
        searcher.index_mut().remove("weeks").unwrap();
        check(&searcher);
        searcher
            .index_mut()
            .update(Document::new(
                "clay",
                "Clay",
                "Nadal took a fourteenth French Open title on clay",
            ))
            .unwrap();
        check(&searcher);
        searcher.index_mut().compact();
        check(&searcher);
    }

    #[test]
    fn exotic_params_still_answer_via_fallback() {
        let exotic = Bm25Params { k1: 0.9, b: 1.5 };
        let searcher = ShardedSearcher::from_corpus(&corpus(), 2).with_params(exotic);
        let hits = searcher.try_search("grand slam titles", 3).unwrap();
        let oracle = searcher
            .try_search_exhaustive("grand slam titles", 3)
            .unwrap();
        assert_same_hits(&oracle, &hits);
        assert!(!hits.is_empty());
    }

    #[test]
    fn duplicate_add_and_unknown_removal_are_typed_errors() {
        let mut index = ShardedIndexBuilder::new(2).build(&corpus());
        assert!(matches!(
            index.add(Document::new("slams", "", "dup")),
            Err(RetrievalError::DuplicateDocumentId(_))
        ));
        assert!(matches!(
            index.remove("ghost"),
            Err(RetrievalError::UnknownDocument(_))
        ));
        assert!(matches!(
            index.update(Document::new("ghost", "", "x")),
            Err(RetrievalError::UnknownDocument(_))
        ));
        // Failed mutations never move the version.
        assert_eq!(index.corpus_version().version, 1);
    }

    #[test]
    fn version_counts_mutations_and_compaction_is_free() {
        let mut index = ShardedIndexBuilder::new(2).build(&corpus());
        assert_eq!(index.corpus_version().version, 1);
        index
            .add(Document::new("extra", "", "one more doc"))
            .unwrap();
        assert_eq!(index.corpus_version().version, 2);
        index.remove("extra").unwrap();
        assert_eq!(index.corpus_version().version, 3);
        index
            .update(Document::new("wins", "Match wins", "Federer match wins"))
            .unwrap();
        assert_eq!(index.corpus_version().version, 4);
        let before = index.corpus_version();
        index.compact();
        assert_eq!(index.corpus_version(), before);
    }

    #[test]
    fn removed_then_readded_id_serves_the_new_content() {
        let mut index = ShardedIndexBuilder::new(2).build(&corpus());
        index.remove("weeks").unwrap();
        index
            .add(Document::new(
                "weeks",
                "Weeks",
                "A completely different text",
            ))
            .unwrap();
        let searcher = ShardedSearcher::new(index);
        let score = searcher
            .score_document("completely different", "weeks")
            .unwrap();
        assert!(score > 0.0);
        let hits = searcher.search("djokovic ranked number one", 5);
        assert!(hits.iter().all(|h| h.doc_id != "weeks"));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let forward = corpus_fingerprint(&corpus());
        let mut reversed = Corpus::new();
        for doc in corpus().documents().iter().rev() {
            reversed.push(doc.clone());
        }
        assert_eq!(forward, corpus_fingerprint(&reversed));
        assert_ne!(forward, corpus_fingerprint(&Corpus::new()));
    }

    #[test]
    fn live_searcher_mutates_through_shared_references() {
        let live = std::sync::Arc::new(LiveSearcher::from_corpus(&corpus(), 3));
        let retriever: Box<dyn Retriever> = Box::new(std::sync::Arc::clone(&live));
        assert_eq!(retriever.corpus_version().unwrap().version, 1);
        assert_eq!(retriever.num_docs(), 5);

        let version = live
            .add(Document::new("extra", "", "brand new document text"))
            .unwrap();
        assert_eq!(version.version, 2);
        // The pipeline-side handle observes the mutation immediately.
        assert_eq!(retriever.num_docs(), 6);
        assert_eq!(retriever.corpus_version().unwrap().version, 2);
        assert!(retriever.score_document("brand new", "extra").unwrap() > 0.0);

        let (doc, version) = live.remove("extra").unwrap();
        assert_eq!(doc.id, "extra");
        assert_eq!(version.version, 3);
        assert!(matches!(
            retriever.score_document("brand new", "extra"),
            Err(RetrievalError::UnknownDocument(_))
        ));

        live.upsert(Document::new("upserted", "", "inserted fresh"))
            .unwrap();
        let (old, _) = live
            .update(Document::new("upserted", "", "replaced body"))
            .unwrap();
        assert_eq!(old.text, "inserted fresh");
        live.set_version(41);
        live.upsert(Document::new("upserted", "", "replaced again"))
            .unwrap();
        assert_eq!(live.version().version, 42);
        live.compact();
        assert_eq!(live.version().version, 42);
    }
}
