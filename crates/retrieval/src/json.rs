//! Re-export of the shared [`rage_json`] crate.
//!
//! The JSON module was born here (the JSONL corpus format was its first
//! consumer) and later lifted into the workspace-level `rage-json` crate so
//! the report and bench crates can depend on it without pulling in retrieval.
//! This module re-exports the whole crate so existing
//! `rage_retrieval::json::JsonValue` paths keep working.

pub use rage_json::*;
