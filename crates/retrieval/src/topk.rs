//! Sparse accumulation and exact dynamic pruning for top-k queries.
//!
//! This module is the pruned hot path behind [`Searcher::search`] and
//! [`ShardedSearcher::try_search`]: a term-at-a-time scorer that (a) accumulates into
//! a reusable **sparse accumulator** so per-query cost scales with postings touched
//! rather than corpus size, and (b) uses per-term **admissible score upper bounds** to
//! skip non-essential postings lists MaxScore-style — while returning a top-k whose
//! set, order and score *bits* are provably identical to the exhaustive dense path
//! ([`score_all_with`] + full selection).
//!
//! [`Searcher::search`]: crate::searcher::Searcher::search
//! [`ShardedSearcher::try_search`]: crate::sharded::ShardedSearcher::try_search
//! [`score_all_with`]: crate::bm25::score_all_with
//!
//! ## How exactness survives pruning
//!
//! 1. **Admissible bounds.** For every term the index stores the maximum term
//!    frequency and minimum document length over its postings
//!    ([`InvertedIndex::term_max_tf`]/[`term_min_dl`]). The BM25 per-term
//!    contribution is monotone non-decreasing in `tf` and non-increasing in document
//!    length whenever `k1 ≥ 0` and `0 ≤ b ≤ 1` (checked by [`prunable`]; other
//!    parameterisations fall back to the exhaustive path), so evaluating the term
//!    score at `(max_tf, min_dl)` bounds the term's contribution to *any* document.
//! 2. **Candidate-generation order is free.** Query-term occurrences are processed in
//!    descending bound order, so rare, high-impact terms establish the top-k
//!    threshold before the long common lists are reached. Once the accumulator holds
//!    `k` documents whose partial scores all exceed the *remaining* suffix bound sum,
//!    no unseen document can reach the top-k: every partial score is a lower bound on
//!    its final score (contributions are non-negative), and an unseen document's
//!    whole score is at most the remaining bound sum. From that point the scorer
//!    stops admitting new documents (OR → AND mode) and only updates existing
//!    candidates — probing each candidate by binary search when the candidate set is
//!    much smaller than the postings list, which is what actually skips the long
//!    lists.
//! 3. **Emitted bits come from a query-order rescore.** Accumulating in
//!    descending-bound order changes floating-point summation order, so accumulator
//!    values are only used as *selection* evidence, never emitted. Surviving
//!    candidates that matched more than one query-term occurrence are rescored in
//!    original query order with exactly the operands the dense path uses
//!    (single-occurrence candidates already carry exact bits — their score is one
//!    unsummed [`term_score_dl`] value). The rescore probes each term's
//!    ordinal-sorted postings by binary search: O(terms · log postings) per
//!    candidate, and only the handful of candidates at or above the final threshold
//!    pay it.
//! 4. **Slack absorbs rounding.** Every pruning comparison goes through
//!    [`definitely_less`], which demands a relative margin of `1e-9` — about five
//!    orders of magnitude wider than the worst-case accumulated rounding error of
//!    these sums, and applied only in the conservative direction. Pruning needs
//!    admissibility, not tightness: a slightly loose bound can only *reduce* how much
//!    is skipped, never change the result. Equal-score ties are safe for the same
//!    reason: a document is discarded only when its score is *strictly* below the
//!    threshold by the margin, and tie-breaking among surviving candidates uses the
//!    exact shared rank order ([`rank_cmp`]).
//!
//! [`InvertedIndex::term_max_tf`]: crate::index::InvertedIndex::term_max_tf
//! [`term_min_dl`]: crate::index::InvertedIndex::term_min_dl
//! [`term_score_dl`]: crate::bm25::term_score_dl
//! [`rank_cmp`]: crate::searcher::rank_cmp
//!
//! The differential property suite (`crates/retrieval/tests/pruning.rs`) pins
//! pruned ≡ exhaustive — set, order and score bits — across seeded corpora, shard
//! counts, mutation interleavings and `k` beyond corpus size.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::bm25::{idf, term_score_dl, Bm25Params, CollectionStats};
use crate::index::InvertedIndex;
use crate::searcher::select_top_k_entries;

/// Relative slack for pruning comparisons. Worst-case relative rounding error of the
/// bound sums involved is on the order of `terms · 2⁻⁵²` (≈ 1e-14 even for very long
/// queries); `1e-9` leaves five orders of magnitude of headroom while being far too
/// small to forgo meaningful pruning.
const RELATIVE_SLACK: f64 = 1e-9;

/// Conservative strict comparison: `a` is below `b` by more than the combined
/// rounding slack. Operands are non-negative in every call site.
fn definitely_less(a: f64, b: f64) -> bool {
    a * (1.0 + RELATIVE_SLACK) < b * (1.0 - RELATIVE_SLACK)
}

/// Whether the admissibility argument holds for these parameters (see the [module
/// docs](self)): the BM25 term score is monotone non-decreasing in `tf` and
/// non-increasing in document length only for `k1 ≥ 0` and `0 ≤ b ≤ 1`. Exotic
/// parameterisations are scored exhaustively instead.
pub(crate) fn prunable(params: Bm25Params) -> bool {
    params.k1 >= 0.0 && (0.0..=1.0).contains(&params.b)
}

/// A reusable sparse score accumulator: ordinal → partial score for the documents a
/// query actually touches.
///
/// Backed by dense arrays stamped with a query epoch, so clearing between queries is
/// a counter increment — per query the cost is O(postings touched), with no O(corpus)
/// zeroing or scanning. One workspace serves any number of sequential queries (and
/// any number of segments within one query); searchers keep one behind a `Mutex` and
/// fall back to a fresh one under contention.
#[derive(Debug, Default)]
pub struct ScoreWorkspace {
    /// Partial score per ordinal; valid only where `stamp` matches `epoch`.
    scores: Vec<f64>,
    /// Epoch stamp per ordinal.
    stamp: Vec<u32>,
    /// Whether the ordinal accumulated more than one occurrence this epoch (single
    /// contributions are exact; sums need the query-order rescore).
    multi: Vec<bool>,
    epoch: u32,
    /// Ordinals touched this epoch, in first-touch order.
    touched: Vec<u32>,
}

impl ScoreWorkspace {
    /// Create an empty workspace; it grows to the largest segment it scores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new accumulation over `n` ordinals.
    fn begin(&mut self, n: usize) {
        if self.scores.len() < n {
            self.scores.resize(n, 0.0);
            self.stamp.resize(n, 0);
            self.multi.resize(n, false);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: re-zero the stamps once every u32::MAX queries.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Accumulate onto `doc`, admitting it if unseen this epoch.
    fn add(&mut self, doc: u32, value: f64) {
        let i = doc as usize;
        if self.stamp[i] == self.epoch {
            self.scores[i] += value;
            self.multi[i] = true;
        } else {
            self.stamp[i] = self.epoch;
            // `0.0 + value` is bitwise `value`, so first touches match the dense
            // path's accumulation onto a zeroed vector exactly.
            self.scores[i] = value;
            self.multi[i] = false;
            self.touched.push(doc);
        }
    }

    /// Accumulate onto `doc` only if it was already admitted this epoch (AND mode).
    fn add_existing(&mut self, doc: u32, value: f64) {
        let i = doc as usize;
        if self.stamp[i] == self.epoch {
            self.scores[i] += value;
            self.multi[i] = true;
        }
    }

    fn score(&self, doc: u32) -> f64 {
        self.scores[doc as usize]
    }

    /// Drop candidates whose partial score fails `keep`, un-stamping them so later
    /// scans skip them too. `begin` always leaves `epoch ≥ 1`, so stamp `0` is free.
    fn retain_touched(&mut self, mut keep: impl FnMut(f64) -> bool) {
        let scores = &self.scores;
        let stamp = &mut self.stamp;
        self.touched.retain(|&doc| {
            let i = doc as usize;
            if keep(scores[i]) {
                true
            } else {
                stamp[i] = 0;
                false
            }
        });
    }

    fn is_multi(&self, doc: u32) -> bool {
        self.multi[doc as usize]
    }
}

/// Total-order f64 wrapper so score thresholds can live in a heap.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The k-th best partial score in the accumulator (requires ≥ k touched documents).
/// Partial scores only grow, so this is a valid (lazy) lower bound on the final k-th
/// best score.
fn kth_best_score(ws: &ScoreWorkspace, k: usize) -> f64 {
    debug_assert!(ws.touched.len() >= k && k > 0);
    let mut heap: BinaryHeap<Reverse<OrdF64>> = BinaryHeap::with_capacity(k + 1);
    for &doc in &ws.touched {
        let s = ws.score(doc);
        if heap.len() < k {
            heap.push(Reverse(OrdF64(s)));
        } else if s > heap.peek().expect("non-empty").0 .0 {
            heap.pop();
            heap.push(Reverse(OrdF64(s)));
        }
    }
    heap.peek().expect("k > 0").0 .0
}

/// One live query-term occurrence: its dictionary id in the segment being scored,
/// its global idf, and its admissible score upper bound. Kept in original query
/// order so the exact rescore replays the dense path's accumulation order.
struct Occurrence {
    term_id: u32,
    idf: f64,
    bound: f64,
}

/// Exact rescore of one candidate in original query order — the same contributions,
/// added in the same order, as `score_all_with` produces for this ordinal.
fn rescore(
    index: &InvertedIndex,
    occurrences: &[Occurrence],
    params: Bm25Params,
    avg_doc_len: f64,
    doc: u32,
) -> f64 {
    let dl = index.doc_norm_len(doc);
    let mut score = 0.0;
    for occ in occurrences {
        let postings = index.postings_by_id(occ.term_id);
        if let Ok(pos) = postings.binary_search_by_key(&doc, |p| p.doc) {
            score += term_score_dl(params, occ.idf, postings[pos].tf, dl, avg_doc_len);
        }
    }
    score
}

/// Top-k selection over one index segment with exact dynamic pruning (see the
/// [module docs](self) for the algorithm and its exactness argument).
///
/// * `dead` — tombstoned ordinals to exclude (a sharded base segment's removals).
/// * `floor` — an optional external score threshold: the k-th best *final* score
///   among candidates already collected from other segments of the same logical
///   query. Documents provably below it cannot survive the global merge, so
///   cross-segment search prunes harder than scoring each segment in isolation.
///
/// Returns `(ordinal, score)` pairs in final rank order; scores are bit-identical to
/// `score_all_with(index, ..)[ordinal]`. Only documents with positive scores are
/// returned, matching the dense selection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pruned_top_k(
    index: &InvertedIndex,
    query_terms: &[String],
    params: Bm25Params,
    stats: &CollectionStats<'_>,
    k: usize,
    dead: Option<&HashSet<u32>>,
    floor: Option<f64>,
    ws: &mut ScoreWorkspace,
) -> Vec<(u32, f64)> {
    debug_assert_eq!(query_terms.len(), stats.doc_freqs.len());
    debug_assert!(prunable(params));
    if k == 0 || index.num_docs() == 0 {
        return Vec::new();
    }

    // Resolve live occurrences in query order: global df > 0 and present in this
    // segment. Duplicate query terms stay duplicated — the dense path accumulates
    // them twice and so must we.
    let mut occurrences: Vec<Occurrence> = Vec::with_capacity(query_terms.len());
    for (term, &df) in query_terms.iter().zip(stats.doc_freqs) {
        if df == 0 {
            continue;
        }
        let Some(term_id) = index.term_id(term) else {
            continue;
        };
        let idf = idf(stats.num_docs, df);
        let bound = term_score_dl(
            params,
            idf,
            index.term_max_tf(term_id),
            f64::from(index.term_min_dl(term_id)),
            stats.avg_doc_len,
        );
        occurrences.push(Occurrence {
            term_id,
            idf,
            bound,
        });
    }
    if occurrences.is_empty() {
        return Vec::new();
    }

    // Candidate generation runs in descending bound order (ties by query position)
    // so that selective terms establish the threshold before the long lists.
    let mut order: Vec<usize> = (0..occurrences.len()).collect();
    order.sort_by(|&a, &b| {
        occurrences[b]
            .bound
            .total_cmp(&occurrences[a].bound)
            .then(a.cmp(&b))
    });
    // suffix[p] = Σ bounds of occurrences from processing position p onward.
    let mut suffix = vec![0.0f64; order.len() + 1];
    for p in (0..order.len()).rev() {
        suffix[p] = suffix[p + 1] + occurrences[order[p]].bound;
    }

    let is_dead = |doc: u32| dead.is_some_and(|set| set.contains(&doc));
    ws.begin(index.num_docs());

    let mut theta: Option<f64> = floor;
    let mut inserting = true;
    for (p, &oi) in order.iter().enumerate() {
        let occ = &occurrences[oi];
        if inserting && theta.is_some_and(|t| definitely_less(suffix[p], t)) {
            // No unseen document can accumulate enough from the remaining
            // occurrences to displace the current k candidates: stop admitting.
            inserting = false;
        }
        let postings = index.postings_by_id(occ.term_id);
        if inserting {
            for posting in postings {
                if is_dead(posting.doc) {
                    continue;
                }
                let dl = index.doc_norm_len(posting.doc);
                ws.add(
                    posting.doc,
                    term_score_dl(params, occ.idf, posting.tf, dl, stats.avg_doc_len),
                );
            }
            if ws.touched.len() >= k {
                let kth = kth_best_score(ws, k);
                theta = Some(theta.map_or(kth, |t| t.max(kth)));
            }
        } else {
            // AND mode: update existing candidates only. First evict candidates that
            // cannot reach the threshold even if every remaining occurrence paid its
            // full bound — their final score is at most `partial + suffix[p]`, and a
            // document strictly below θ (which only grows) can never rank top-k. The
            // handful of survivors is then cheap to probe by binary search, which is
            // where a long common list gets skipped almost entirely.
            if let Some(t) = theta {
                let max_remaining = suffix[p];
                ws.retain_touched(|partial| !definitely_less(partial + max_remaining, t));
            }
            let candidates = ws.touched.len();
            let log_len = (usize::BITS - postings.len().leading_zeros()) as usize;
            if candidates * (log_len + 2) < postings.len() {
                for i in 0..candidates {
                    let doc = ws.touched[i];
                    if let Ok(pos) = postings.binary_search_by_key(&doc, |p| p.doc) {
                        let dl = index.doc_norm_len(doc);
                        ws.add(
                            doc,
                            term_score_dl(params, occ.idf, postings[pos].tf, dl, stats.avg_doc_len),
                        );
                    }
                }
            } else {
                for posting in postings {
                    let dl = index.doc_norm_len(posting.doc);
                    ws.add_existing(
                        posting.doc,
                        term_score_dl(params, occ.idf, posting.tf, dl, stats.avg_doc_len),
                    );
                }
            }
            // Partial scores only grow, so the k-th best among survivors keeps θ a
            // valid lower bound on the final k-th best score — raising it tightens
            // the eviction before the next (even longer) list.
            if ws.touched.len() >= k {
                let kth = kth_best_score(ws, k);
                theta = Some(theta.map_or(kth, |t| t.max(kth)));
            }
        }
    }

    // Final threshold: candidates provably below it cannot rank top-k (locally or in
    // the caller's merge), so only the survivors pay the exact rescore.
    let tau = if ws.touched.len() >= k {
        let kth = kth_best_score(ws, k);
        Some(floor.map_or(kth, |f| f.max(kth)))
    } else {
        floor
    };

    let mut exact: Vec<(u32, f64)> = Vec::new();
    for i in 0..ws.touched.len() {
        let doc = ws.touched[i];
        let approx = ws.score(doc);
        if let Some(tau) = tau {
            if definitely_less(approx, tau) {
                continue;
            }
        }
        let score = if ws.is_multi(doc) {
            rescore(index, &occurrences, params, stats.avg_doc_len, doc)
        } else {
            approx
        };
        if score > 0.0 {
            exact.push((doc, score));
        }
    }

    select_top_k_entries(exact.into_iter(), k, |ordinal| {
        index
            .doc_id(ordinal)
            .expect("ordinal produced by scoring must exist")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::score_all_with;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;
    use crate::searcher::select_top_k;

    /// Deterministic toy corpus mixing rare and common terms, duplicates and ties.
    fn corpus(n: usize) -> Corpus {
        let mut corpus = Corpus::new();
        for i in 0..n {
            let common = "shared registry entry";
            let rare = match i % 7 {
                0 => "alpha laboratory",
                1 => "beta institute",
                2 => "gamma university",
                3 => "delta polytechnic",
                4 => "epsilon academy",
                5 => "zeta observatory",
                _ => "eta consortium",
            };
            let filler = "filler ".repeat(i % 5);
            corpus.push(Document::new(
                format!("doc-{i:04}"),
                "",
                format!("{common} {rare} {filler}"),
            ));
        }
        corpus
    }

    fn check_equivalence(corpus: &Corpus, query: &str, k: usize) {
        let index = IndexBuilder::default().build(corpus);
        let params = Bm25Params::default();
        let terms = index.tokenizer().tokenize(query);
        let doc_freqs: Vec<usize> = terms.iter().map(|t| index.doc_freq(t)).collect();
        let stats = CollectionStats {
            num_docs: index.num_docs(),
            avg_doc_len: index.avg_doc_len(),
            doc_freqs: &doc_freqs,
        };

        let dense = score_all_with(&index, &terms, params, &stats);
        let expected = select_top_k(&dense, k, |o| index.doc_id(o).unwrap());

        let mut ws = ScoreWorkspace::new();
        let pruned = pruned_top_k(&index, &terms, params, &stats, k, None, None, &mut ws);

        assert_eq!(expected.len(), pruned.len(), "query {query:?} k {k}");
        for (e, p) in expected.iter().zip(&pruned) {
            assert_eq!(e.0, p.0, "ordinal for {query:?} k {k}");
            assert_eq!(
                e.1.to_bits(),
                p.1.to_bits(),
                "score bits for {query:?} k {k}"
            );
        }
    }

    #[test]
    fn pruned_matches_dense_selection() {
        let corpus = corpus(200);
        for query in [
            "alpha laboratory",
            "shared registry",
            "gamma university shared",
            "registry registry registry", // duplicate occurrences count twice
            "zeta observatory filler shared entry",
            "unknownterm alpha",
        ] {
            for k in [1, 3, 10, 50, 1000] {
                check_equivalence(&corpus, query, k);
            }
        }
    }

    #[test]
    fn tie_heavy_corpus_is_exact() {
        let mut corpus = Corpus::new();
        for i in 0..64 {
            corpus.push(Document::new(
                format!("tie-{i:02}"),
                "",
                "identical registry entry text",
            ));
        }
        for k in [1, 5, 63, 64, 65, 200] {
            check_equivalence(&corpus, "identical registry entry", k);
        }
    }

    #[test]
    fn dead_ordinals_are_never_candidates() {
        let corpus = corpus(50);
        let index = IndexBuilder::default().build(&corpus);
        let params = Bm25Params::default();
        let terms = index.tokenizer().tokenize("shared registry entry");
        let doc_freqs: Vec<usize> = terms.iter().map(|t| index.doc_freq(t)).collect();
        let stats = CollectionStats {
            num_docs: index.num_docs(),
            avg_doc_len: index.avg_doc_len(),
            doc_freqs: &doc_freqs,
        };
        let dead: HashSet<u32> = (0..25).collect();
        let mut ws = ScoreWorkspace::new();
        let got = pruned_top_k(
            &index,
            &terms,
            params,
            &stats,
            100,
            Some(&dead),
            None,
            &mut ws,
        );
        assert!(!got.is_empty());
        assert!(got.iter().all(|&(o, _)| o >= 25));

        // Dense equivalent: score everything, zero the dead, select.
        let mut dense = score_all_with(&index, &terms, params, &stats);
        for &d in &dead {
            dense[d as usize] = 0.0;
        }
        let expected = select_top_k(&dense, 100, |o| index.doc_id(o).unwrap());
        assert_eq!(expected.len(), got.len());
        for (e, p) in expected.iter().zip(&got) {
            assert_eq!(e.0, p.0);
            assert_eq!(e.1.to_bits(), p.1.to_bits());
        }
    }

    #[test]
    fn floor_only_prunes_below_merged_threshold() {
        // With a floor far above every score, nothing survives; with a floor of
        // zero, results match the floorless run exactly.
        let corpus = corpus(80);
        let index = IndexBuilder::default().build(&corpus);
        let params = Bm25Params::default();
        let terms = index.tokenizer().tokenize("alpha laboratory shared");
        let doc_freqs: Vec<usize> = terms.iter().map(|t| index.doc_freq(t)).collect();
        let stats = CollectionStats {
            num_docs: index.num_docs(),
            avg_doc_len: index.avg_doc_len(),
            doc_freqs: &doc_freqs,
        };
        let mut ws = ScoreWorkspace::new();
        let no_floor = pruned_top_k(&index, &terms, params, &stats, 5, None, None, &mut ws);
        assert!(!no_floor.is_empty());
        let zero_floor = pruned_top_k(&index, &terms, params, &stats, 5, None, Some(0.0), &mut ws);
        assert_eq!(no_floor, zero_floor);
        let sky_floor = pruned_top_k(&index, &terms, params, &stats, 5, None, Some(1e9), &mut ws);
        assert!(sky_floor.is_empty());
    }

    #[test]
    fn workspace_is_reusable_across_queries_and_segments() {
        let big = corpus(120);
        let small = corpus(30);
        let big_index = IndexBuilder::default().build(&big);
        let small_index = IndexBuilder::default().build(&small);
        let params = Bm25Params::default();
        let mut ws = ScoreWorkspace::new();
        for _ in 0..3 {
            for (index, label) in [(&big_index, "big"), (&small_index, "small")] {
                let terms = index.tokenizer().tokenize("gamma university shared entry");
                let doc_freqs: Vec<usize> = terms.iter().map(|t| index.doc_freq(t)).collect();
                let stats = CollectionStats {
                    num_docs: index.num_docs(),
                    avg_doc_len: index.avg_doc_len(),
                    doc_freqs: &doc_freqs,
                };
                let dense = score_all_with(index, &terms, params, &stats);
                let expected = select_top_k(&dense, 7, |o| index.doc_id(o).unwrap());
                let got = pruned_top_k(index, &terms, params, &stats, 7, None, None, &mut ws);
                assert_eq!(expected.len(), got.len(), "{label}");
                for (e, p) in expected.iter().zip(&got) {
                    assert_eq!(e.0, p.0, "{label}");
                    assert_eq!(e.1.to_bits(), p.1.to_bits(), "{label}");
                }
            }
        }
    }

    #[test]
    fn prunable_rejects_exotic_parameters() {
        assert!(prunable(Bm25Params::default()));
        assert!(prunable(Bm25Params::robertson()));
        assert!(prunable(Bm25Params { k1: 0.0, b: 0.0 }));
        assert!(prunable(Bm25Params { k1: 2.0, b: 1.0 }));
        assert!(!prunable(Bm25Params { k1: -0.1, b: 0.4 }));
        assert!(!prunable(Bm25Params { k1: 0.9, b: 1.5 }));
        assert!(!prunable(Bm25Params { k1: 0.9, b: -0.2 }));
    }

    #[test]
    fn definitely_less_requires_margin() {
        assert!(definitely_less(1.0, 2.0));
        assert!(!definitely_less(2.0, 1.0));
        // Within the slack band nothing is "definitely" less.
        assert!(!definitely_less(1.0, 1.0));
        assert!(!definitely_less(1.0 - 1e-12, 1.0));
        assert!(definitely_less(1.0 - 1e-6, 1.0));
    }
}
