//! # rage-retrieval
//!
//! A self-contained BM25 retrieval substrate for the RAGE explanation engine.
//!
//! The RAGE paper (ICDE 2024) retrieves its context sources with a BM25 model from the
//! Pyserini toolkit backed by a Lucene inverted index. This crate reproduces that
//! substrate from scratch in safe Rust:
//!
//! * [`tokenize`] — lowercasing word tokenizer, light suffix stemmer and stopword list,
//!   mirroring Lucene's `EnglishAnalyzer` defaults closely enough for ranking parity.
//! * [`document`] — the [`Document`](document::Document) and [`Corpus`](document::Corpus)
//!   types plus JSONL (one-JSON-object-per-line) persistence, the same interchange format
//!   Pyserini uses for its document collections.
//! * [`index`] — an in-memory inverted index in a compact arena layout (interned term
//!   dictionary, contiguous postings arena, precomputed per-document BM25 length
//!   norms), built by [`IndexBuilder`](index::IndexBuilder).
//! * [`bm25`] — Okapi BM25 scoring with tunable `k1`/`b`.
//! * [`topk`] — the pruned query hot path: sparse accumulation plus MaxScore-style
//!   exact dynamic pruning over per-term score upper bounds.
//! * [`searcher`] — the [`Searcher`](searcher::Searcher) facade producing the ranked
//!   context `Dq` (a sequence of [`RankedSource`](searcher::RankedSource)) that RAGE
//!   perturbs.
//! * [`retriever`] — the [`Retriever`](retriever::Retriever) trait every retrieval
//!   backend implements.
//! * [`sharded`] — the partitioned [`ShardedSearcher`](sharded::ShardedSearcher)
//!   backend for large corpora, with incremental mutation
//!   ([`ShardedIndex::add`](sharded::ShardedIndex::add)/`remove`/`update`) through
//!   per-shard delta segments, and the thread-safe mutable
//!   [`LiveSearcher`](sharded::LiveSearcher). Every mutation advances a
//!   [`CorpusVersion`](retriever::CorpusVersion) (monotonic counter plus
//!   order-independent content fingerprint) that caches key on; see the `sharded`
//!   module docs for the delta/compaction contract.
//!
//! ## The Retriever trait + sharding
//!
//! RAGE's pipeline is generic over [`Retriever`](retriever::Retriever): anything that
//! can return a ranked, scored top-`k` context (plus score an individual document) can
//! serve as the paper's retrieval model `M`. Two backends ship in this crate:
//!
//! * [`Searcher`](searcher::Searcher) — one inverted index over the whole corpus; the
//!   right choice for the paper-scale demonstration corpora.
//! * [`ShardedSearcher`](sharded::ShardedSearcher) — the corpus is partitioned into
//!   `N` contiguous shards with one index each (built in parallel by default), and
//!   queries merge per-shard top-k selections into one ranking.
//!
//! Sharding is **exact**, not approximate: every shard is scored with the *global*
//! collection statistics ([`bm25::CollectionStats`]), and every ranking — single or
//! merged — orders by descending score under `f64::total_cmp` with ties broken by
//! ascending document id. Together these make `ShardedSearcher` return bit-identical
//! scores and identical orderings to `Searcher` for every shard count, which is pinned
//! by the equivalence suite in `crates/retrieval/tests/sharding.rs`:
//!
//! ```
//! use rage_retrieval::document::{Corpus, Document};
//! use rage_retrieval::index::IndexBuilder;
//! use rage_retrieval::searcher::Searcher;
//! use rage_retrieval::sharded::ShardedSearcher;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new("d1", "Tennis rankings", "Federer leads total match wins"));
//! corpus.push(Document::new("d2", "Grand slams", "Djokovic holds the most grand slam titles"));
//! corpus.push(Document::new("d3", "Clay", "Nadal dominates the French Open on clay"));
//!
//! let single = Searcher::new(IndexBuilder::default().build(&corpus));
//! let sharded = ShardedSearcher::from_corpus(&corpus, 2);
//! let query = "who has the most grand slam titles";
//! assert_eq!(single.search(query, 2), sharded.search(query, 2));
//! ```
//!
//! ## The query hot path: compact layout + exact dynamic pruning
//!
//! Top-k queries do **not** score every document. The hot path is built from three
//! layers, each preserving the public API and the exact ranking:
//!
//! 1. **Layout** ([`index`]) — the searchable term dictionary is a sorted string
//!    arena addressed by interned term ids, postings lists live in one contiguous
//!    arena ordered by ascending document ordinal, and per-document BM25 length
//!    norms are precomputed into a dense `f64` array.
//! 2. **Sparse scoring** ([`topk::ScoreWorkspace`]) — term-at-a-time accumulation
//!    into a reusable epoch-stamped sparse accumulator, so per-query cost scales
//!    with postings touched rather than corpus size.
//! 3. **Exact pruning** ([`topk`]) — per-term admissible score upper bounds drive
//!    MaxScore-style skipping of long, low-impact postings lists.
//!
//! ### The upper-bound admissibility contract
//!
//! For every term the index records the maximum term frequency and minimum analysed
//! document length over its postings ([`InvertedIndex::term_max_tf`] /
//! [`InvertedIndex::term_min_dl`](index::InvertedIndex::term_min_dl)). The BM25
//! per-term contribution is monotone non-decreasing in `tf` and non-increasing in
//! document length whenever `k1 ≥ 0` and `0 ≤ b ≤ 1`, so the term score evaluated at
//! `(max_tf, min_dl)` bounds the term's contribution to *any* document of the
//! segment. The contract has three clauses:
//!
//! * **Recomputation** — bounds are recomputed at every index (re)build, including
//!   every delta-segment rebuild and shard compaction; there is no code path that
//!   mutates a postings list without rebuilding its bound statistics.
//! * **Tombstones** — a base segment's bounds are *not* recomputed on tombstoned
//!   removals. They remain admissible because a bound over a superset of the live
//!   documents can only over-estimate; a loose bound reduces how much is skipped but
//!   can never change the result.
//! * **Parameter guard** — the monotonicity argument (and therefore pruning) only
//!   holds for `k1 ≥ 0`, `0 ≤ b ≤ 1`. Exotic parameterisations are detected and
//!   scored exhaustively instead.
//!
//! Pruned and exhaustive paths return identical rankings down to the score *bits*;
//! [`Searcher::try_search_exhaustive`](searcher::Searcher::try_search_exhaustive) and
//! [`ShardedSearcher::try_search_exhaustive`](sharded::ShardedSearcher::try_search_exhaustive)
//! expose the dense oracle the differential suite (`crates/retrieval/tests/pruning.rs`)
//! compares against.
//!
//! [`InvertedIndex::term_max_tf`]: index::InvertedIndex::term_max_tf
//!
//! ## Example
//!
//! ```
//! use rage_retrieval::document::{Corpus, Document};
//! use rage_retrieval::index::IndexBuilder;
//! use rage_retrieval::searcher::Searcher;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new("d1", "Tennis rankings", "Federer leads total match wins"));
//! corpus.push(Document::new("d2", "Grand slams", "Djokovic holds the most grand slam titles"));
//!
//! let index = IndexBuilder::default().build(&corpus);
//! let searcher = Searcher::new(index);
//! let hits = searcher.search("who has the most grand slam titles", 2);
//! assert_eq!(hits[0].doc_id, "d2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bm25;
pub mod document;
pub mod error;
pub mod index;
pub mod json;
pub mod retriever;
pub mod searcher;
pub mod sharded;
pub mod tokenize;
pub mod topk;

pub use bm25::Bm25Params;
pub use document::{Corpus, Document};
pub use error::RetrievalError;
pub use index::{IndexBuilder, InvertedIndex};
pub use retriever::{CorpusVersion, Retriever};
pub use searcher::{RankedSource, Searcher};
pub use sharded::{
    corpus_fingerprint, document_fingerprint, LiveSearcher, ShardedIndex, ShardedIndexBuilder,
    ShardedSearcher,
};
pub use tokenize::Tokenizer;
