//! # rage-retrieval
//!
//! A self-contained BM25 retrieval substrate for the RAGE explanation engine.
//!
//! The RAGE paper (ICDE 2024) retrieves its context sources with a BM25 model from the
//! Pyserini toolkit backed by a Lucene inverted index. This crate reproduces that
//! substrate from scratch in safe Rust:
//!
//! * [`tokenize`] — lowercasing word tokenizer, light suffix stemmer and stopword list,
//!   mirroring Lucene's `EnglishAnalyzer` defaults closely enough for ranking parity.
//! * [`document`] — the [`Document`](document::Document) and [`Corpus`](document::Corpus)
//!   types plus JSONL (one-JSON-object-per-line) persistence, the same interchange format
//!   Pyserini uses for its document collections.
//! * [`index`] — an in-memory inverted index with per-term postings and per-document
//!   lengths, built by [`IndexBuilder`](index::IndexBuilder).
//! * [`bm25`] — Okapi BM25 scoring with tunable `k1`/`b`.
//! * [`searcher`] — the [`Searcher`](searcher::Searcher) facade producing the ranked
//!   context `Dq` (a sequence of [`RankedSource`](searcher::RankedSource)) that RAGE
//!   perturbs.
//!
//! ## Example
//!
//! ```
//! use rage_retrieval::document::{Corpus, Document};
//! use rage_retrieval::index::IndexBuilder;
//! use rage_retrieval::searcher::Searcher;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new("d1", "Tennis rankings", "Federer leads total match wins"));
//! corpus.push(Document::new("d2", "Grand slams", "Djokovic holds the most grand slam titles"));
//!
//! let index = IndexBuilder::default().build(&corpus);
//! let searcher = Searcher::new(index);
//! let hits = searcher.search("who has the most grand slam titles", 2);
//! assert_eq!(hits[0].doc_id, "d2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bm25;
pub mod document;
pub mod error;
pub mod index;
pub mod json;
pub mod searcher;
pub mod tokenize;

pub use bm25::Bm25Params;
pub use document::{Corpus, Document};
pub use error::RetrievalError;
pub use index::{IndexBuilder, InvertedIndex};
pub use searcher::{RankedSource, Searcher};
pub use tokenize::Tokenizer;
