//! # rage-retrieval
//!
//! A self-contained BM25 retrieval substrate for the RAGE explanation engine.
//!
//! The RAGE paper (ICDE 2024) retrieves its context sources with a BM25 model from the
//! Pyserini toolkit backed by a Lucene inverted index. This crate reproduces that
//! substrate from scratch in safe Rust:
//!
//! * [`tokenize`] — lowercasing word tokenizer, light suffix stemmer and stopword list,
//!   mirroring Lucene's `EnglishAnalyzer` defaults closely enough for ranking parity.
//! * [`document`] — the [`Document`](document::Document) and [`Corpus`](document::Corpus)
//!   types plus JSONL (one-JSON-object-per-line) persistence, the same interchange format
//!   Pyserini uses for its document collections.
//! * [`index`] — an in-memory inverted index with per-term postings and per-document
//!   lengths, built by [`IndexBuilder`](index::IndexBuilder).
//! * [`bm25`] — Okapi BM25 scoring with tunable `k1`/`b`.
//! * [`searcher`] — the [`Searcher`](searcher::Searcher) facade producing the ranked
//!   context `Dq` (a sequence of [`RankedSource`](searcher::RankedSource)) that RAGE
//!   perturbs.
//! * [`retriever`] — the [`Retriever`](retriever::Retriever) trait every retrieval
//!   backend implements.
//! * [`sharded`] — the partitioned [`ShardedSearcher`](sharded::ShardedSearcher)
//!   backend for large corpora, with incremental mutation
//!   ([`ShardedIndex::add`](sharded::ShardedIndex::add)/`remove`/`update`) through
//!   per-shard delta segments, and the thread-safe mutable
//!   [`LiveSearcher`](sharded::LiveSearcher). Every mutation advances a
//!   [`CorpusVersion`](retriever::CorpusVersion) (monotonic counter plus
//!   order-independent content fingerprint) that caches key on; see the `sharded`
//!   module docs for the delta/compaction contract.
//!
//! ## The Retriever trait + sharding
//!
//! RAGE's pipeline is generic over [`Retriever`](retriever::Retriever): anything that
//! can return a ranked, scored top-`k` context (plus score an individual document) can
//! serve as the paper's retrieval model `M`. Two backends ship in this crate:
//!
//! * [`Searcher`](searcher::Searcher) — one inverted index over the whole corpus; the
//!   right choice for the paper-scale demonstration corpora.
//! * [`ShardedSearcher`](sharded::ShardedSearcher) — the corpus is partitioned into
//!   `N` contiguous shards with one index each (built in parallel by default), and
//!   queries merge per-shard top-k selections into one ranking.
//!
//! Sharding is **exact**, not approximate: every shard is scored with the *global*
//! collection statistics ([`bm25::CollectionStats`]), and every ranking — single or
//! merged — orders by descending score under `f64::total_cmp` with ties broken by
//! ascending document id. Together these make `ShardedSearcher` return bit-identical
//! scores and identical orderings to `Searcher` for every shard count, which is pinned
//! by the equivalence suite in `crates/retrieval/tests/sharding.rs`:
//!
//! ```
//! use rage_retrieval::document::{Corpus, Document};
//! use rage_retrieval::index::IndexBuilder;
//! use rage_retrieval::searcher::Searcher;
//! use rage_retrieval::sharded::ShardedSearcher;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new("d1", "Tennis rankings", "Federer leads total match wins"));
//! corpus.push(Document::new("d2", "Grand slams", "Djokovic holds the most grand slam titles"));
//! corpus.push(Document::new("d3", "Clay", "Nadal dominates the French Open on clay"));
//!
//! let single = Searcher::new(IndexBuilder::default().build(&corpus));
//! let sharded = ShardedSearcher::from_corpus(&corpus, 2);
//! let query = "who has the most grand slam titles";
//! assert_eq!(single.search(query, 2), sharded.search(query, 2));
//! ```
//!
//! ## Example
//!
//! ```
//! use rage_retrieval::document::{Corpus, Document};
//! use rage_retrieval::index::IndexBuilder;
//! use rage_retrieval::searcher::Searcher;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new("d1", "Tennis rankings", "Federer leads total match wins"));
//! corpus.push(Document::new("d2", "Grand slams", "Djokovic holds the most grand slam titles"));
//!
//! let index = IndexBuilder::default().build(&corpus);
//! let searcher = Searcher::new(index);
//! let hits = searcher.search("who has the most grand slam titles", 2);
//! assert_eq!(hits[0].doc_id, "d2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bm25;
pub mod document;
pub mod error;
pub mod index;
pub mod json;
pub mod retriever;
pub mod searcher;
pub mod sharded;
pub mod tokenize;

pub use bm25::Bm25Params;
pub use document::{Corpus, Document};
pub use error::RetrievalError;
pub use index::{IndexBuilder, InvertedIndex};
pub use retriever::{CorpusVersion, Retriever};
pub use searcher::{RankedSource, Searcher};
pub use sharded::{
    corpus_fingerprint, document_fingerprint, LiveSearcher, ShardedIndex, ShardedIndexBuilder,
    ShardedSearcher,
};
pub use tokenize::Tokenizer;
