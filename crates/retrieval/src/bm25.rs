//! Okapi BM25 scoring.
//!
//! The scoring function matches Lucene's `BM25Similarity` (and therefore Pyserini's
//! default ranker): for a query `q` with terms `t` and a document `d`,
//!
//! ```text
//! score(q, d) = Σ_t idf(t) · tf(t, d) · (k1 + 1) / (tf(t, d) + k1 · (1 − b + b · |d| / avgdl))
//! idf(t)      = ln(1 + (N − df(t) + 0.5) / (df(t) + 0.5))
//! ```
//!
//! with the Lucene/Pyserini defaults `k1 = 0.9`, `b = 0.4`.

use serde::{Deserialize, Serialize};

use crate::index::InvertedIndex;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation parameter.
    pub k1: f64,
    /// Length-normalisation parameter.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        // Pyserini's default BM25 configuration.
        Self { k1: 0.9, b: 0.4 }
    }
}

impl Bm25Params {
    /// The classic Robertson parameters (`k1 = 1.2`, `b = 0.75`).
    pub fn robertson() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Inverse document frequency with the Lucene +1 smoothing (always non-negative).
pub fn idf(num_docs: usize, doc_freq: usize) -> f64 {
    let n = num_docs as f64;
    let df = doc_freq as f64;
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// Per-term BM25 contribution for a document.
pub fn term_score(params: Bm25Params, idf: f64, tf: u32, doc_len: u32, avg_doc_len: f64) -> f64 {
    term_score_dl(params, idf, tf, f64::from(doc_len), avg_doc_len)
}

/// [`term_score`] with the document length already converted to `f64`.
///
/// The conversion is exact, so passing the index's precomputed norm length
/// ([`InvertedIndex::doc_norm_len`]) produces bit-identical scores while sparing the
/// hot loop one `u32 → f64` convert per posting. This is the single scoring kernel
/// every query path bottoms out in — exhaustive, pruned, and per-document alike — so
/// operand order here *defines* the bit-identity contract.
pub fn term_score_dl(params: Bm25Params, idf: f64, tf: u32, dl: f64, avg_doc_len: f64) -> f64 {
    let tf = f64::from(tf);
    let avgdl = if avg_doc_len > 0.0 { avg_doc_len } else { 1.0 };
    let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
    if denom == 0.0 {
        0.0
    } else {
        idf * tf * (params.k1 + 1.0) / denom
    }
}

/// Collection-level statistics used when scoring an index as *part of* a larger
/// collection.
///
/// BM25 is not a purely per-document function: `idf` depends on the collection's
/// document count and per-term document frequencies, and length normalisation depends
/// on the collection's average document length. A sharded deployment that scored each
/// shard against its own local statistics would rank differently from a single index
/// over the same corpus. Passing the *global* statistics here makes per-document scores
/// bit-identical to the unsharded ones, because [`term_score`] is invoked with exactly
/// the same operands in exactly the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats<'a> {
    /// Total number of documents in the (logical) collection.
    pub num_docs: usize,
    /// Average analysed document length across the whole collection.
    pub avg_doc_len: f64,
    /// Document frequency of each query term across the whole collection, parallel to
    /// the `query_terms` slice passed alongside these stats.
    pub doc_freqs: &'a [usize],
}

/// Scores every document of the index against analysed query terms.
///
/// Returns a dense vector of scores indexed by document ordinal; documents matching no
/// query term score exactly `0.0`.
pub fn score_all(index: &InvertedIndex, query_terms: &[String], params: Bm25Params) -> Vec<f64> {
    let doc_freqs: Vec<usize> = query_terms.iter().map(|t| index.doc_freq(t)).collect();
    let stats = CollectionStats {
        num_docs: index.num_docs(),
        avg_doc_len: index.avg_doc_len(),
        doc_freqs: &doc_freqs,
    };
    score_all_with(index, query_terms, params, &stats)
}

/// Like [`score_all`], but with explicitly supplied collection statistics.
///
/// This is the shard-scoring primitive: an index over one partition of a corpus is
/// scored with the statistics of the *whole* corpus, which keeps every per-document
/// score bit-identical to what a single index over the full corpus would produce (see
/// [`CollectionStats`]). `stats.doc_freqs` must be parallel to `query_terms`.
pub fn score_all_with(
    index: &InvertedIndex,
    query_terms: &[String],
    params: Bm25Params,
    stats: &CollectionStats<'_>,
) -> Vec<f64> {
    debug_assert_eq!(query_terms.len(), stats.doc_freqs.len());
    let mut scores = vec![0.0; index.num_docs()];
    for (term, &df) in query_terms.iter().zip(stats.doc_freqs) {
        if df == 0 {
            continue;
        }
        let idf = idf(stats.num_docs, df);
        if let Some(postings) = index.postings(term) {
            for posting in postings {
                let dl = index.doc_norm_len(posting.doc);
                scores[posting.doc as usize] +=
                    term_score_dl(params, idf, posting.tf, dl, stats.avg_doc_len);
            }
        }
    }
    scores
}

/// Score one document (by ordinal) against analysed query terms, bit-identical to
/// `score_all_with(..)[ordinal]`.
///
/// Instead of scoring the whole corpus densely, each query term's posting for the
/// document is found by binary search in its ordinal-sorted list — O(terms · log
/// postings) per document. The per-document accumulation visits query terms in
/// exactly the order [`score_all_with`] does, with identical [`term_score_dl`]
/// operands, so the sum carries the same bits.
pub fn score_doc_with(
    index: &InvertedIndex,
    query_terms: &[String],
    params: Bm25Params,
    stats: &CollectionStats<'_>,
    ordinal: u32,
) -> f64 {
    debug_assert_eq!(query_terms.len(), stats.doc_freqs.len());
    let mut score = 0.0;
    for (term, &df) in query_terms.iter().zip(stats.doc_freqs) {
        if df == 0 {
            continue;
        }
        let idf = idf(stats.num_docs, df);
        let Some(term_id) = index.term_id(term) else {
            continue;
        };
        let postings = index.postings_by_id(term_id);
        if let Ok(pos) = postings.binary_search_by_key(&ordinal, |p| p.doc) {
            let dl = index.doc_norm_len(ordinal);
            score += term_score_dl(params, idf, postings[pos].tf, dl, stats.avg_doc_len);
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;

    fn index() -> InvertedIndex {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("a", "", "federer grand slam wins"));
        corpus.push(Document::new(
            "b",
            "",
            "djokovic grand slam grand slam titles",
        ));
        corpus.push(Document::new(
            "c",
            "",
            "completely unrelated text about cooking",
        ));
        IndexBuilder::default().build(&corpus)
    }

    #[test]
    fn idf_is_decreasing_in_document_frequency() {
        let n = 1000;
        assert!(idf(n, 1) > idf(n, 10));
        assert!(idf(n, 10) > idf(n, 100));
        assert!(idf(n, 100) > idf(n, 999));
    }

    #[test]
    fn idf_never_negative() {
        // Even when the term appears in every document (Lucene +1 smoothing).
        assert!(idf(10, 10) >= 0.0);
        assert!(idf(1, 1) >= 0.0);
    }

    #[test]
    fn term_score_increases_with_tf_but_saturates() {
        let p = Bm25Params::default();
        let s1 = term_score(p, 1.0, 1, 10, 10.0);
        let s2 = term_score(p, 1.0, 2, 10, 10.0);
        let s10 = term_score(p, 1.0, 10, 10, 10.0);
        let s11 = term_score(p, 1.0, 11, 10, 10.0);
        assert!(s2 > s1);
        assert!(s10 > s2);
        // Saturation: marginal gain shrinks.
        assert!(s11 - s10 < s2 - s1);
    }

    #[test]
    fn longer_documents_are_penalised() {
        let p = Bm25Params::default();
        let short = term_score(p, 1.0, 2, 5, 10.0);
        let long = term_score(p, 1.0, 2, 50, 10.0);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalisation() {
        let p = Bm25Params { k1: 0.9, b: 0.0 };
        let short = term_score(p, 1.0, 2, 5, 10.0);
        let long = term_score(p, 1.0, 2, 500, 10.0);
        assert!((short - long).abs() < 1e-12);
    }

    #[test]
    fn zero_tf_scores_zero() {
        let p = Bm25Params::default();
        assert_eq!(term_score(p, 2.0, 0, 10, 10.0), 0.0);
    }

    #[test]
    fn score_all_ranks_matching_documents() {
        let idx = index();
        let tokenizer = idx.tokenizer().clone();
        let terms = tokenizer.tokenize("grand slam");
        let scores = score_all(&idx, &terms, Bm25Params::default());
        assert_eq!(scores.len(), 3);
        // Document b repeats "grand slam" and should outrank a; c matches nothing.
        assert!(scores[1] > scores[0]);
        assert!(scores[0] > 0.0);
        assert_eq!(scores[2], 0.0);
    }

    #[test]
    fn score_all_ignores_unknown_terms() {
        let idx = index();
        let scores = score_all(
            &idx,
            &["nonexistentterm".to_string()],
            Bm25Params::default(),
        );
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn robertson_params_differ_from_default() {
        let d = Bm25Params::default();
        let r = Bm25Params::robertson();
        assert_ne!(d, r);
        assert_eq!(r.k1, 1.2);
        assert_eq!(r.b, 0.75);
    }

    #[test]
    fn empty_index_scores_nothing() {
        let idx = IndexBuilder::default().build(&Corpus::new());
        let scores = score_all(&idx, &["anything".into()], Bm25Params::default());
        assert!(scores.is_empty());
    }
}
