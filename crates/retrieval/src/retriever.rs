//! The [`Retriever`] abstraction: anything that can play the paper's retrieval model
//! `M`.
//!
//! RAGE only needs three things from retrieval: a ranked top-`k` context for a query,
//! a way to score an individual document against a query (for the retrieval-based
//! source-scoring method), and the collection size. This trait captures exactly that
//! surface so the RAG pipeline can be wired onto *any* backend — the single-index
//! [`Searcher`], the partitioned [`ShardedSearcher`](crate::sharded::ShardedSearcher),
//! or a future remote/vector backend — without touching the explanation engine.
//!
//! ## The ranking contract
//!
//! Every implementation must rank by **descending score under `f64::total_cmp`, ties
//! broken by ascending document id**, and must never return zero-score documents. Under
//! this contract a ranking is a pure function of the `(document, score)` set: two
//! retrievers that assign the same scores return the *same* ranking, regardless of
//! corpus layout, partitioning or merge order. The sharding equivalence suite
//! (`crates/retrieval/tests/sharding.rs`) locks this in bit-for-bit.

use serde::{Deserialize, Serialize};

use crate::error::RetrievalError;
use crate::searcher::RankedSource;

/// The identity of one corpus state: a monotonically increasing version number plus an
/// order-independent content fingerprint.
///
/// A freshly built index is version 1; every mutation (`add`/`remove`/`update`)
/// increments the version, while compaction — which only reorganises the layout —
/// never does. The fingerprint is a wrapping sum of per-document FNV-1a hashes, so two
/// corpora holding the same documents (in any order) fingerprint identically.
/// Downstream caches key on the version and can use the fingerprint to detect that two
/// versions actually hold the same content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CorpusVersion {
    /// Monotonically increasing mutation counter (1 = as built).
    pub version: u64,
    /// Order-independent content hash of the live documents.
    pub fingerprint: u64,
}

/// A retrieval backend producing the ranked context `Dq` for a query `q`.
///
/// See the [module docs](self) for the ranking contract implementations must uphold.
/// The trait is object safe; `Box<dyn Retriever>` and `Arc<dyn Retriever>` are
/// retrievers themselves, so pipelines can be either monomorphised or dynamic.
pub trait Retriever: Send + Sync {
    /// Retrieve the `k` most relevant sources for `query`, most relevant first,
    /// reporting empty/unanalysable queries as errors.
    ///
    /// Documents scoring exactly zero are never returned, so the result may be shorter
    /// than `k`.
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError>;

    /// Panic-free variant of [`Retriever::try_search`]: retrieval failures yield an
    /// empty context.
    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Score a single document (by id) against a query, even if it would not rank
    /// top-k.
    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError>;

    /// Number of documents in the indexed collection.
    fn num_docs(&self) -> usize;

    /// The identity of the corpus state this retriever answers from, if the backend
    /// tracks one.
    ///
    /// Mutable backends ([`LiveSearcher`](crate::sharded::LiveSearcher),
    /// [`ShardedSearcher`](crate::sharded::ShardedSearcher)) return the current
    /// [`CorpusVersion`]; immutable backends keep the `None` default. Pipelines and
    /// services thread this value into cache keys and report provenance.
    fn corpus_version(&self) -> Option<CorpusVersion> {
        None
    }
}

impl<R: Retriever + ?Sized> Retriever for &R {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        (**self).try_search(query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        (**self).score_document(query, doc_id)
    }

    fn num_docs(&self) -> usize {
        (**self).num_docs()
    }

    fn corpus_version(&self) -> Option<CorpusVersion> {
        (**self).corpus_version()
    }
}

impl<R: Retriever + ?Sized> Retriever for Box<R> {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        (**self).try_search(query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        (**self).score_document(query, doc_id)
    }

    fn num_docs(&self) -> usize {
        (**self).num_docs()
    }

    fn corpus_version(&self) -> Option<CorpusVersion> {
        (**self).corpus_version()
    }
}

impl<R: Retriever + ?Sized> Retriever for std::sync::Arc<R> {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        (**self).try_search(query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        (**self).score_document(query, doc_id)
    }

    fn num_docs(&self) -> usize {
        (**self).num_docs()
    }

    fn corpus_version(&self) -> Option<CorpusVersion> {
        (**self).corpus_version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;
    use crate::searcher::Searcher;

    fn searcher() -> Searcher {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "slams",
            "",
            "djokovic holds the most grand slam titles",
        ));
        corpus.push(Document::new("wins", "", "federer leads total match wins"));
        Searcher::new(IndexBuilder::default().build(&corpus))
    }

    #[test]
    fn searcher_is_a_retriever_through_dyn() {
        let boxed: Box<dyn Retriever> = Box::new(searcher());
        let hits = boxed.search("grand slam titles", 2);
        assert_eq!(hits[0].doc_id, "slams");
        assert_eq!(boxed.num_docs(), 2);
        assert!(boxed.score_document("grand slam", "slams").unwrap() > 0.0);
    }

    #[test]
    fn arc_and_reference_forward() {
        let arc = std::sync::Arc::new(searcher());
        assert_eq!(arc.num_docs(), 2);
        let by_ref: &dyn Retriever = &*arc;
        assert_eq!((&by_ref).num_docs(), 2);
        assert!(matches!(
            arc.try_search("", 2),
            Err(RetrievalError::EmptyQuery)
        ));
    }
}
