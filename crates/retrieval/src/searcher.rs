//! Top-k search over the inverted index.
//!
//! [`Searcher`] is the facade RAGE's pipeline talks to. Its [`Searcher::search`] method
//! plays the role of the paper's retrieval model `M`: given a query `q` and a relevance
//! threshold `k` it returns the ranked context `Dq`, each entry carrying the retrieval
//! relevance score used by one of RAGE's two source-scoring methods.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::bm25::{score_all, Bm25Params};
use crate::document::Document;
use crate::error::RetrievalError;
use crate::index::InvertedIndex;

/// One retrieved source: a document plus its rank and BM25 score for the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSource {
    /// Id of the retrieved document.
    pub doc_id: String,
    /// 0-based rank in the retrieved list (0 = most relevant).
    pub rank: usize,
    /// BM25 relevance score with respect to the query.
    pub score: f64,
    /// The retrieved document itself.
    pub document: Document,
}

/// The rank ordering shared by every retriever implementation: descending score under
/// `f64::total_cmp` (total and deterministic even for NaN), ties broken by *ascending
/// document id*. Breaking ties on the id — rather than on an index-local ordinal —
/// makes the final ranking a pure function of the (document, score) set, so no
/// partitioning or merge order can ever reorder equal-score documents.
pub(crate) fn rank_cmp(score_a: f64, id_a: &str, score_b: f64, id_b: &str) -> Ordering {
    score_b.total_cmp(&score_a).then_with(|| id_a.cmp(id_b))
}

/// Min-heap entry used while selecting the top-k scores.
#[derive(Debug, PartialEq)]
struct HeapEntry<'a> {
    score: f64,
    doc_id: &'a str,
    ordinal: u32,
}

impl Eq for HeapEntry<'_> {}

impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `Greater` means "ranks later", so BinaryHeap::pop evicts the worst-ranked
        // entry: the lower score, or on ties the lexicographically larger id.
        rank_cmp(self.score, self.doc_id, other.score, other.doc_id)
    }
}

impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k selection over a dense score vector.
///
/// Keeps the `k` best entries with strictly positive scores under [`rank_cmp`] and
/// returns them as `(ordinal, score)` pairs in final rank order. Shared by
/// [`Searcher`] and [`crate::sharded::ShardedSearcher`] (per shard), so both sides of
/// the sharding equivalence contract select and order by exactly the same rule.
pub(crate) fn select_top_k<'a>(
    scores: &[f64],
    k: usize,
    id_of: impl Fn(u32) -> &'a str,
) -> Vec<(u32, f64)> {
    let mut heap: BinaryHeap<HeapEntry<'a>> = BinaryHeap::with_capacity(k + 1);
    for (ordinal, &score) in scores.iter().enumerate() {
        if score <= 0.0 {
            continue;
        }
        let ordinal = ordinal as u32;
        heap.push(HeapEntry {
            score,
            doc_id: id_of(ordinal),
            ordinal,
        });
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut selected = heap.into_vec();
    selected.sort_by(|a, b| rank_cmp(a.score, a.doc_id, b.score, b.doc_id));
    selected
        .into_iter()
        .map(|entry| (entry.ordinal, entry.score))
        .collect()
}

/// BM25 searcher over an [`InvertedIndex`].
#[derive(Debug, Clone)]
pub struct Searcher {
    index: InvertedIndex,
    params: Bm25Params,
}

impl Searcher {
    /// Create a searcher with default (Pyserini) BM25 parameters.
    pub fn new(index: InvertedIndex) -> Self {
        Self {
            index,
            params: Bm25Params::default(),
        }
    }

    /// Override the BM25 parameters.
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Retrieve the `k` most relevant sources for `query`, most relevant first.
    ///
    /// Documents scoring exactly zero (no query term matches) are never returned, so the
    /// result may be shorter than `k`. Ties are broken by ascending document id (see
    /// [`Retriever`](crate::retriever::Retriever)), which keeps results deterministic
    /// and independent of how the corpus is partitioned or merged.
    pub fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Like [`Searcher::search`] but reports empty/unanalysable queries as errors.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs() == 0 {
            return Ok(Vec::new());
        }

        let scores = score_all(&self.index, &terms, self.params);
        let selected = select_top_k(&scores, k, |ordinal| {
            self.index
                .doc_id(ordinal)
                .expect("ordinal produced by scoring must exist")
        });

        Ok(selected
            .into_iter()
            .enumerate()
            .map(|(rank, (ordinal, score))| {
                let document = self
                    .index
                    .document(ordinal)
                    .expect("ordinal produced by scoring must exist")
                    .clone();
                RankedSource {
                    doc_id: document.id.clone(),
                    rank,
                    score,
                    document,
                }
            })
            .collect())
    }

    /// Score a single document (by id) against a query, even if it would not rank top-k.
    pub fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        let ordinal = self
            .index
            .ordinal_of(doc_id)
            .ok_or_else(|| RetrievalError::UnknownDocument(doc_id.to_string()))?;
        let scores = score_all(&self.index, &terms, self.params);
        Ok(scores[ordinal as usize])
    }
}

impl crate::retriever::Retriever for Searcher {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        Searcher::try_search(self, query, k)
    }

    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        Searcher::search(self, query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        Searcher::score_document(self, query, doc_id)
    }

    fn num_docs(&self) -> usize {
        self.index.num_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;

    fn searcher() -> Searcher {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads with 369 total match wins in his career",
        ));
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds 24 grand slam titles, the most of the big three",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one",
        ));
        corpus.push(Document::new(
            "clay",
            "Clay courts",
            "Rafael Nadal dominates on clay with fourteen French Open titles",
        ));
        corpus.push(Document::new(
            "cooking",
            "Pasta",
            "Boil water, add salt, cook the pasta until al dente",
        ));
        Searcher::new(IndexBuilder::default().build(&corpus))
    }

    #[test]
    fn retrieves_relevant_documents_first() {
        let s = searcher();
        let hits = s.search("grand slam titles", 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc_id, "slams");
        assert!(hits.iter().all(|h| h.doc_id != "cooking"));
    }

    #[test]
    fn ranks_are_sequential_and_scores_descending() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal titles wins", 5);
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.rank, i);
        }
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn k_limits_result_size() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_score_documents_are_excluded() {
        let s = searcher();
        let hits = s.search("federer", 10);
        assert!(hits.iter().all(|h| h.score > 0.0));
        assert!(hits.len() < 5);
    }

    #[test]
    fn empty_query_is_an_error() {
        let s = searcher();
        assert!(matches!(
            s.try_search("", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        assert!(matches!(
            s.try_search("the of and", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        // The panic-free wrapper returns an empty list instead.
        assert!(s.search("", 3).is_empty());
    }

    #[test]
    fn k_zero_returns_empty() {
        let s = searcher();
        assert!(s.search("federer", 0).is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("first", "", "identical text here"));
        corpus.push(Document::new("second", "", "identical text here"));
        let s = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = s.search("identical text", 2);
        assert_eq!(hits[0].doc_id, "first");
        assert_eq!(hits[1].doc_id, "second");
    }

    #[test]
    fn equal_scores_tie_break_on_doc_id_not_insertion_order() {
        // Equal-score duplicates inserted in reverse id order must come back in
        // ascending id order: the ranking is a function of (score, id) alone, never of
        // the corpus layout. This is the invariant that makes sharded retrieval unable
        // to reorder ties (see crates/retrieval/tests/sharding.rs).
        let mut corpus = Corpus::new();
        for id in ["dup-d", "dup-b", "dup-c", "dup-a"] {
            corpus.push(Document::new(id, "", "identical text here"));
        }
        let s = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = s.search("identical text", 4);
        let ids: Vec<&str> = hits.iter().map(|h| h.doc_id.as_str()).collect();
        assert_eq!(ids, vec!["dup-a", "dup-b", "dup-c", "dup-d"]);
        assert!(hits.windows(2).all(|w| w[0].score == w[1].score));
    }

    #[test]
    fn score_document_matches_search_score() {
        let s = searcher();
        let hits = s.search("grand slam titles", 5);
        let direct = s.score_document("grand slam titles", "slams").unwrap();
        let from_search = hits.iter().find(|h| h.doc_id == "slams").unwrap().score;
        assert!((direct - from_search).abs() < 1e-12);
    }

    #[test]
    fn score_document_unknown_id() {
        let s = searcher();
        assert!(matches!(
            s.score_document("federer", "nope"),
            Err(RetrievalError::UnknownDocument(_))
        ));
    }

    #[test]
    fn search_on_empty_index() {
        let s = Searcher::new(IndexBuilder::default().build(&Corpus::new()));
        assert!(s.search("anything", 5).is_empty());
    }

    #[test]
    fn custom_params_change_scores() {
        let s_default = searcher();
        let s_robertson = searcher().with_params(Bm25Params::robertson());
        let d = s_default.search("grand slam titles", 1)[0].score;
        let r = s_robertson.search("grand slam titles", 1)[0].score;
        assert_ne!(d, r);
        assert_eq!(s_robertson.params(), Bm25Params::robertson());
    }
}
