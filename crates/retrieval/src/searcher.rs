//! Top-k search over the inverted index.
//!
//! [`Searcher`] is the facade RAGE's pipeline talks to. Its [`Searcher::search`] method
//! plays the role of the paper's retrieval model `M`: given a query `q` and a relevance
//! threshold `k` it returns the ranked context `Dq`, each entry carrying the retrieval
//! relevance score used by one of RAGE's two source-scoring methods.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::bm25::{score_all, Bm25Params};
use crate::document::Document;
use crate::error::RetrievalError;
use crate::index::InvertedIndex;

/// One retrieved source: a document plus its rank and BM25 score for the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSource {
    /// Id of the retrieved document.
    pub doc_id: String,
    /// 0-based rank in the retrieved list (0 = most relevant).
    pub rank: usize,
    /// BM25 relevance score with respect to the query.
    pub score: f64,
    /// The retrieved document itself.
    pub document: Document,
}

/// Min-heap entry used while selecting the top-k scores.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    ordinal: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score to make BinaryHeap behave as a min-heap; ties broken by
        // preferring to *evict* the larger ordinal so earlier documents win ties.
        // total_cmp keeps the order total (and deterministic) even for NaN scores.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.ordinal.cmp(&other.ordinal))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// BM25 searcher over an [`InvertedIndex`].
#[derive(Debug, Clone)]
pub struct Searcher {
    index: InvertedIndex,
    params: Bm25Params,
}

impl Searcher {
    /// Create a searcher with default (Pyserini) BM25 parameters.
    pub fn new(index: InvertedIndex) -> Self {
        Self {
            index,
            params: Bm25Params::default(),
        }
    }

    /// Override the BM25 parameters.
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Retrieve the `k` most relevant sources for `query`, most relevant first.
    ///
    /// Documents scoring exactly zero (no query term matches) are never returned, so the
    /// result may be shorter than `k`. Ties are broken by corpus insertion order, which
    /// keeps results deterministic.
    pub fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Like [`Searcher::search`] but reports empty/unanalysable queries as errors.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs() == 0 {
            return Ok(Vec::new());
        }

        let scores = score_all(&self.index, &terms, self.params);

        // Bounded min-heap selection of the top-k positive scores.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (ordinal, &score) in scores.iter().enumerate() {
            if score <= 0.0 {
                continue;
            }
            heap.push(HeapEntry {
                score,
                ordinal: ordinal as u32,
            });
            if heap.len() > k {
                heap.pop();
            }
        }

        let mut selected: Vec<HeapEntry> = heap.into_vec();
        selected.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.ordinal.cmp(&b.ordinal))
        });

        Ok(selected
            .into_iter()
            .enumerate()
            .map(|(rank, entry)| {
                let document = self
                    .index
                    .document(entry.ordinal)
                    .expect("ordinal produced by scoring must exist")
                    .clone();
                RankedSource {
                    doc_id: document.id.clone(),
                    rank,
                    score: entry.score,
                    document,
                }
            })
            .collect())
    }

    /// Score a single document (by id) against a query, even if it would not rank top-k.
    pub fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        let ordinal = self
            .index
            .ordinal_of(doc_id)
            .ok_or_else(|| RetrievalError::UnknownDocument(doc_id.to_string()))?;
        let scores = score_all(&self.index, &terms, self.params);
        Ok(scores[ordinal as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;

    fn searcher() -> Searcher {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads with 369 total match wins in his career",
        ));
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds 24 grand slam titles, the most of the big three",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one",
        ));
        corpus.push(Document::new(
            "clay",
            "Clay courts",
            "Rafael Nadal dominates on clay with fourteen French Open titles",
        ));
        corpus.push(Document::new(
            "cooking",
            "Pasta",
            "Boil water, add salt, cook the pasta until al dente",
        ));
        Searcher::new(IndexBuilder::default().build(&corpus))
    }

    #[test]
    fn retrieves_relevant_documents_first() {
        let s = searcher();
        let hits = s.search("grand slam titles", 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc_id, "slams");
        assert!(hits.iter().all(|h| h.doc_id != "cooking"));
    }

    #[test]
    fn ranks_are_sequential_and_scores_descending() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal titles wins", 5);
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.rank, i);
        }
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn k_limits_result_size() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_score_documents_are_excluded() {
        let s = searcher();
        let hits = s.search("federer", 10);
        assert!(hits.iter().all(|h| h.score > 0.0));
        assert!(hits.len() < 5);
    }

    #[test]
    fn empty_query_is_an_error() {
        let s = searcher();
        assert!(matches!(
            s.try_search("", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        assert!(matches!(
            s.try_search("the of and", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        // The panic-free wrapper returns an empty list instead.
        assert!(s.search("", 3).is_empty());
    }

    #[test]
    fn k_zero_returns_empty() {
        let s = searcher();
        assert!(s.search("federer", 0).is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("first", "", "identical text here"));
        corpus.push(Document::new("second", "", "identical text here"));
        let s = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = s.search("identical text", 2);
        assert_eq!(hits[0].doc_id, "first");
        assert_eq!(hits[1].doc_id, "second");
    }

    #[test]
    fn score_document_matches_search_score() {
        let s = searcher();
        let hits = s.search("grand slam titles", 5);
        let direct = s.score_document("grand slam titles", "slams").unwrap();
        let from_search = hits.iter().find(|h| h.doc_id == "slams").unwrap().score;
        assert!((direct - from_search).abs() < 1e-12);
    }

    #[test]
    fn score_document_unknown_id() {
        let s = searcher();
        assert!(matches!(
            s.score_document("federer", "nope"),
            Err(RetrievalError::UnknownDocument(_))
        ));
    }

    #[test]
    fn search_on_empty_index() {
        let s = Searcher::new(IndexBuilder::default().build(&Corpus::new()));
        assert!(s.search("anything", 5).is_empty());
    }

    #[test]
    fn custom_params_change_scores() {
        let s_default = searcher();
        let s_robertson = searcher().with_params(Bm25Params::robertson());
        let d = s_default.search("grand slam titles", 1)[0].score;
        let r = s_robertson.search("grand slam titles", 1)[0].score;
        assert_ne!(d, r);
        assert_eq!(s_robertson.params(), Bm25Params::robertson());
    }
}
