//! Top-k search over the inverted index.
//!
//! [`Searcher`] is the facade RAGE's pipeline talks to. Its [`Searcher::search`] method
//! plays the role of the paper's retrieval model `M`: given a query `q` and a relevance
//! threshold `k` it returns the ranked context `Dq`, each entry carrying the retrieval
//! relevance score used by one of RAGE's two source-scoring methods.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::bm25::{score_all, score_doc_with, Bm25Params, CollectionStats};
use crate::document::Document;
use crate::error::RetrievalError;
use crate::index::InvertedIndex;
use crate::topk::{prunable, pruned_top_k, ScoreWorkspace};

/// One retrieved source: a document plus its rank and BM25 score for the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSource {
    /// Id of the retrieved document.
    pub doc_id: String,
    /// 0-based rank in the retrieved list (0 = most relevant).
    pub rank: usize,
    /// BM25 relevance score with respect to the query.
    pub score: f64,
    /// The retrieved document itself.
    pub document: Document,
}

/// The rank ordering shared by every retriever implementation: descending score under
/// `f64::total_cmp` (total and deterministic even for NaN), ties broken by *ascending
/// document id*. Breaking ties on the id — rather than on an index-local ordinal —
/// makes the final ranking a pure function of the (document, score) set, so no
/// partitioning or merge order can ever reorder equal-score documents.
pub(crate) fn rank_cmp(score_a: f64, id_a: &str, score_b: f64, id_b: &str) -> Ordering {
    score_b.total_cmp(&score_a).then_with(|| id_a.cmp(id_b))
}

/// Min-heap entry used while selecting the top-k scores.
#[derive(Debug, PartialEq)]
struct HeapEntry<'a> {
    score: f64,
    doc_id: &'a str,
    ordinal: u32,
}

impl Eq for HeapEntry<'_> {}

impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `Greater` means "ranks later", so BinaryHeap::pop evicts the worst-ranked
        // entry: the lower score, or on ties the lexicographically larger id.
        rank_cmp(self.score, self.doc_id, other.score, other.doc_id)
    }
}

impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k selection over `(ordinal, score)` entries.
///
/// Keeps the `k` best entries with strictly positive scores under [`rank_cmp`] and
/// returns them in final rank order. Shared by every selection site — the dense
/// [`select_top_k`], the sparse pruned path in [`crate::topk`] — so all of them
/// select and order by exactly the same rule.
///
/// Once the heap is full, a candidate whose score is *strictly below* the current
/// worst entry's score is dropped before its document id is even materialised: it
/// ranks after the worst entry no matter what its id is. Equal scores still go
/// through the heap, because the id tie-break can evict the worst entry.
pub(crate) fn select_top_k_entries<'a>(
    entries: impl Iterator<Item = (u32, f64)>,
    k: usize,
    id_of: impl Fn(u32) -> &'a str,
) -> Vec<(u32, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry<'a>> = BinaryHeap::with_capacity(k + 1);
    for (ordinal, score) in entries {
        if score <= 0.0 {
            continue;
        }
        if heap.len() == k {
            let worst = heap.peek().expect("k > 0 and heap full");
            if score < worst.score {
                continue;
            }
        }
        heap.push(HeapEntry {
            score,
            doc_id: id_of(ordinal),
            ordinal,
        });
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut selected = heap.into_vec();
    selected.sort_by(|a, b| rank_cmp(a.score, a.doc_id, b.score, b.doc_id));
    selected
        .into_iter()
        .map(|entry| (entry.ordinal, entry.score))
        .collect()
}

/// Bounded top-k selection over a dense score vector (the exhaustive oracle path).
pub(crate) fn select_top_k<'a>(
    scores: &[f64],
    k: usize,
    id_of: impl Fn(u32) -> &'a str,
) -> Vec<(u32, f64)> {
    select_top_k_entries(
        scores
            .iter()
            .enumerate()
            .map(|(ordinal, &score)| (ordinal as u32, score)),
        k,
        id_of,
    )
}

/// BM25 searcher over an [`InvertedIndex`].
///
/// Queries run on the pruned sparse path ([`crate::topk`]) — bit-identical to the
/// exhaustive dense scoring, which remains available as
/// [`Searcher::try_search_exhaustive`] (the differential oracle the pruning property
/// suite and the retrieval bench compare against).
#[derive(Debug)]
pub struct Searcher {
    index: InvertedIndex,
    params: Bm25Params,
    /// Reusable sparse accumulator (see [`ScoreWorkspace`]). Concurrent queries that
    /// miss the lock score on a fresh transient workspace instead of blocking.
    workspace: Mutex<ScoreWorkspace>,
}

impl Clone for Searcher {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            params: self.params,
            workspace: Mutex::new(ScoreWorkspace::new()),
        }
    }
}

impl Searcher {
    /// Create a searcher with default (Pyserini) BM25 parameters.
    pub fn new(index: InvertedIndex) -> Self {
        Self {
            index,
            params: Bm25Params::default(),
            workspace: Mutex::new(ScoreWorkspace::new()),
        }
    }

    /// Override the BM25 parameters.
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Retrieve the `k` most relevant sources for `query`, most relevant first.
    ///
    /// Documents scoring exactly zero (no query term matches) are never returned, so the
    /// result may be shorter than `k`. Ties are broken by ascending document id (see
    /// [`Retriever`](crate::retriever::Retriever)), which keeps results deterministic
    /// and independent of how the corpus is partitioned or merged.
    pub fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        self.try_search(query, k).unwrap_or_default()
    }

    /// Like [`Searcher::search`] but reports empty/unanalysable queries as errors.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs() == 0 {
            return Ok(Vec::new());
        }

        let selected = if prunable(self.params) {
            let doc_freqs: Vec<usize> = terms.iter().map(|t| self.index.doc_freq(t)).collect();
            let stats = CollectionStats {
                num_docs: self.index.num_docs(),
                avg_doc_len: self.index.avg_doc_len(),
                doc_freqs: &doc_freqs,
            };
            match self.workspace.try_lock() {
                Ok(mut ws) => pruned_top_k(
                    &self.index,
                    &terms,
                    self.params,
                    &stats,
                    k,
                    None,
                    None,
                    &mut ws,
                ),
                Err(_) => pruned_top_k(
                    &self.index,
                    &terms,
                    self.params,
                    &stats,
                    k,
                    None,
                    None,
                    &mut ScoreWorkspace::new(),
                ),
            }
        } else {
            // Exotic parameters (k1 < 0 or b outside [0, 1]) void the bound
            // admissibility argument — score exhaustively instead.
            let scores = score_all(&self.index, &terms, self.params);
            select_top_k(&scores, k, |ordinal| {
                self.index
                    .doc_id(ordinal)
                    .expect("ordinal produced by scoring must exist")
            })
        };

        Ok(self.to_ranked(selected))
    }

    /// The exhaustive dense-scoring path: identical results (bit-for-bit scores) to
    /// [`Searcher::try_search`], at O(corpus) cost per query.
    ///
    /// This is the differential oracle the pruning property suite
    /// (`crates/retrieval/tests/pruning.rs`) and the retrieval bench
    /// (`query/docs=100k/exhaustive`) run against; it is not a serving path.
    pub fn try_search_exhaustive(
        &self,
        query: &str,
        k: usize,
    ) -> Result<Vec<RankedSource>, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        if k == 0 || self.index.num_docs() == 0 {
            return Ok(Vec::new());
        }
        let scores = score_all(&self.index, &terms, self.params);
        let selected = select_top_k(&scores, k, |ordinal| {
            self.index
                .doc_id(ordinal)
                .expect("ordinal produced by scoring must exist")
        });
        Ok(self.to_ranked(selected))
    }

    fn to_ranked(&self, selected: Vec<(u32, f64)>) -> Vec<RankedSource> {
        selected
            .into_iter()
            .enumerate()
            .map(|(rank, (ordinal, score))| {
                let document = self
                    .index
                    .document(ordinal)
                    .expect("ordinal produced by scoring must exist")
                    .clone();
                RankedSource {
                    doc_id: document.id.clone(),
                    rank,
                    score,
                    document,
                }
            })
            .collect()
    }

    /// Score a single document (by id) against a query, even if it would not rank top-k.
    ///
    /// Bit-identical to the document's entry in the dense score vector, computed
    /// directly by probing each query term's postings (O(terms · log postings)
    /// instead of O(corpus); see [`score_doc_with`]).
    pub fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        let terms = self.index.tokenizer().tokenize(query);
        if terms.is_empty() {
            return Err(RetrievalError::EmptyQuery);
        }
        let ordinal = self
            .index
            .ordinal_of(doc_id)
            .ok_or_else(|| RetrievalError::UnknownDocument(doc_id.to_string()))?;
        let doc_freqs: Vec<usize> = terms.iter().map(|t| self.index.doc_freq(t)).collect();
        let stats = CollectionStats {
            num_docs: self.index.num_docs(),
            avg_doc_len: self.index.avg_doc_len(),
            doc_freqs: &doc_freqs,
        };
        Ok(score_doc_with(
            &self.index,
            &terms,
            self.params,
            &stats,
            ordinal,
        ))
    }
}

impl crate::retriever::Retriever for Searcher {
    fn try_search(&self, query: &str, k: usize) -> Result<Vec<RankedSource>, RetrievalError> {
        Searcher::try_search(self, query, k)
    }

    fn search(&self, query: &str, k: usize) -> Vec<RankedSource> {
        Searcher::search(self, query, k)
    }

    fn score_document(&self, query: &str, doc_id: &str) -> Result<f64, RetrievalError> {
        Searcher::score_document(self, query, doc_id)
    }

    fn num_docs(&self) -> usize {
        self.index.num_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Corpus, Document};
    use crate::index::IndexBuilder;

    fn searcher() -> Searcher {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads with 369 total match wins in his career",
        ));
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds 24 grand slam titles, the most of the big three",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one",
        ));
        corpus.push(Document::new(
            "clay",
            "Clay courts",
            "Rafael Nadal dominates on clay with fourteen French Open titles",
        ));
        corpus.push(Document::new(
            "cooking",
            "Pasta",
            "Boil water, add salt, cook the pasta until al dente",
        ));
        Searcher::new(IndexBuilder::default().build(&corpus))
    }

    #[test]
    fn retrieves_relevant_documents_first() {
        let s = searcher();
        let hits = s.search("grand slam titles", 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc_id, "slams");
        assert!(hits.iter().all(|h| h.doc_id != "cooking"));
    }

    #[test]
    fn ranks_are_sequential_and_scores_descending() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal titles wins", 5);
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.rank, i);
        }
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn k_limits_result_size() {
        let s = searcher();
        let hits = s.search("djokovic federer nadal", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_score_documents_are_excluded() {
        let s = searcher();
        let hits = s.search("federer", 10);
        assert!(hits.iter().all(|h| h.score > 0.0));
        assert!(hits.len() < 5);
    }

    #[test]
    fn empty_query_is_an_error() {
        let s = searcher();
        assert!(matches!(
            s.try_search("", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        assert!(matches!(
            s.try_search("the of and", 3),
            Err(RetrievalError::EmptyQuery)
        ));
        // The panic-free wrapper returns an empty list instead.
        assert!(s.search("", 3).is_empty());
    }

    #[test]
    fn k_zero_returns_empty() {
        let s = searcher();
        assert!(s.search("federer", 0).is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut corpus = Corpus::new();
        corpus.push(Document::new("first", "", "identical text here"));
        corpus.push(Document::new("second", "", "identical text here"));
        let s = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = s.search("identical text", 2);
        assert_eq!(hits[0].doc_id, "first");
        assert_eq!(hits[1].doc_id, "second");
    }

    #[test]
    fn equal_scores_tie_break_on_doc_id_not_insertion_order() {
        // Equal-score duplicates inserted in reverse id order must come back in
        // ascending id order: the ranking is a function of (score, id) alone, never of
        // the corpus layout. This is the invariant that makes sharded retrieval unable
        // to reorder ties (see crates/retrieval/tests/sharding.rs).
        let mut corpus = Corpus::new();
        for id in ["dup-d", "dup-b", "dup-c", "dup-a"] {
            corpus.push(Document::new(id, "", "identical text here"));
        }
        let s = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = s.search("identical text", 4);
        let ids: Vec<&str> = hits.iter().map(|h| h.doc_id.as_str()).collect();
        assert_eq!(ids, vec!["dup-a", "dup-b", "dup-c", "dup-d"]);
        assert!(hits.windows(2).all(|w| w[0].score == w[1].score));
    }

    #[test]
    fn pruned_and_exhaustive_paths_are_bit_identical() {
        let s = searcher();
        for query in [
            "grand slam titles",
            "djokovic federer nadal titles wins",
            "federer",
            "pasta salt water",
        ] {
            for k in [1, 2, 5, 100] {
                let pruned = s.search(query, k);
                let exhaustive = s.try_search_exhaustive(query, k).unwrap();
                assert_eq!(pruned.len(), exhaustive.len(), "{query:?} k={k}");
                for (p, e) in pruned.iter().zip(&exhaustive) {
                    assert_eq!(p.doc_id, e.doc_id, "{query:?} k={k}");
                    assert_eq!(p.rank, e.rank);
                    assert_eq!(p.score.to_bits(), e.score.to_bits(), "{query:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn exotic_params_fall_back_to_exhaustive_scoring() {
        // b > 1 voids the min-length bound admissibility; search must still answer,
        // via the dense path, and agree with the explicit exhaustive call.
        let exotic = Bm25Params { k1: 0.9, b: 1.2 };
        let s = searcher().with_params(exotic);
        let hits = s.search("grand slam titles", 3);
        let oracle = s.try_search_exhaustive("grand slam titles", 3).unwrap();
        assert_eq!(hits, oracle);
        assert!(!hits.is_empty());
    }

    #[test]
    fn heap_full_precheck_keeps_tie_heavy_selection_identical() {
        // Satellite regression: many duplicate scores around the heap boundary. The
        // pre-check ("skip when strictly below the current worst") must not change
        // selection when candidates tie with the worst entry — those go through the
        // heap so the ascending-id tie-break still applies. Compare against a naive
        // full sort of the dense score vector.
        let mut corpus = Corpus::new();
        // 40 identical docs (all the same score) plus a couple of better and worse
        // ones, inserted in scrambled id order.
        for i in [17, 3, 29, 8, 35, 1, 22, 40, 11, 6] {
            corpus.push(Document::new(
                format!("tie-{i:02}"),
                "",
                "identical registry entry text",
            ));
        }
        for i in [5, 2, 9] {
            corpus.push(Document::new(
                format!("strong-{i}"),
                "",
                "identical registry entry text registry entry",
            ));
        }
        corpus.push(Document::new(
            "weak",
            "",
            "registry and much other filler text here",
        ));
        let s = Searcher::new(IndexBuilder::default().build(&corpus));

        let terms = s.index().tokenizer().tokenize("identical registry entry");
        let dense = crate::bm25::score_all(s.index(), &terms, s.params());
        for k in [1, 2, 3, 4, 5, 9, 13, 14, 20] {
            // Naive oracle: full sort under the shared rank order.
            let mut all: Vec<(u32, f64)> = dense
                .iter()
                .enumerate()
                .filter(|(_, &sc)| sc > 0.0)
                .map(|(o, &sc)| (o as u32, sc))
                .collect();
            all.sort_by(|a, b| {
                rank_cmp(
                    a.1,
                    s.index().doc_id(a.0).unwrap(),
                    b.1,
                    s.index().doc_id(b.0).unwrap(),
                )
            });
            all.truncate(k);
            let got = select_top_k(&dense, k, |o| s.index().doc_id(o).unwrap());
            assert_eq!(got.len(), all.len(), "k={k}");
            for (g, e) in got.iter().zip(&all) {
                assert_eq!(g.0, e.0, "k={k}");
                assert_eq!(g.1.to_bits(), e.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn score_document_matches_search_score() {
        let s = searcher();
        let hits = s.search("grand slam titles", 5);
        let direct = s.score_document("grand slam titles", "slams").unwrap();
        let from_search = hits.iter().find(|h| h.doc_id == "slams").unwrap().score;
        assert!((direct - from_search).abs() < 1e-12);
    }

    #[test]
    fn score_document_unknown_id() {
        let s = searcher();
        assert!(matches!(
            s.score_document("federer", "nope"),
            Err(RetrievalError::UnknownDocument(_))
        ));
    }

    #[test]
    fn search_on_empty_index() {
        let s = Searcher::new(IndexBuilder::default().build(&Corpus::new()));
        assert!(s.search("anything", 5).is_empty());
    }

    #[test]
    fn custom_params_change_scores() {
        let s_default = searcher();
        let s_robertson = searcher().with_params(Bm25Params::robertson());
        let d = s_default.search("grand slam titles", 1)[0].score;
        let r = s_robertson.search("grand slam titles", 1)[0].score;
        assert_ne!(d, r);
        assert_eq!(s_robertson.params(), Bm25Params::robertson());
    }
}
