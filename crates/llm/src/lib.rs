//! # rage-llm
//!
//! A deterministic, CPU-only *simulated* large language model substrate for the RAGE
//! explanation engine.
//!
//! ## Why a simulator
//!
//! The RAGE prototype runs `meta-llama/Llama-2-7b-chat-hf` on an RTX 4090 through the
//! HuggingFace Transformers stack. Neither the model weights nor the GPU are available
//! in this reproduction environment, so this crate substitutes the closest synthetic
//! equivalent that exercises the same code paths RAGE depends on (the substitution is
//! documented in `DESIGN.md`). RAGE treats the LLM as:
//!
//! 1. a black-box answer function `a = L(q, Dq)` over a question and an *ordered*
//!    sequence of context sources, and
//! 2. an attention read-out, summed over layers, heads and tokens, used as one of the
//!    two source-relevance scoring methods.
//!
//! [`SimLlm`](model::SimLlm) provides exactly that interface with behaviours calibrated
//! to the phenomena the paper studies:
//!
//! * answers are grounded in the context sources through candidate-answer extraction and
//!   evidence aggregation, so removing a supporting source can flip the answer
//!   (combination counterfactuals);
//! * a configurable positional prior reproduces the "lost in the middle" bias of ref.
//!   [2] of the paper, so re-ordering sources can flip the answer (permutation
//!   counterfactuals and optimal permutations);
//! * a prior-knowledge store answers the empty-context case (bottom-up counterfactuals)
//!   and competes with weak context evidence (hallucination-style behaviour);
//! * attention is computed by a real multi-layer, multi-head scaled-dot-product
//!   attention forward pass over shared token embeddings ([`transformer`]), so the
//!   attention-aggregation scoring path ([`attention`]) is exercised honestly rather
//!   than faked.
//!
//! Everything is deterministic given the model seed, which keeps explanations and tests
//! reproducible.
//!
//! ## The kernel layer and its bit-identity contract
//!
//! Explanation search evaluates hundreds of perturbed prompts per report, and each
//! forward pass is dominated by the `O(tokens²)` attention score/softmax/mix loops.
//! Those loops live in [`kernels`]: fused, cache-blocked implementations over flat
//! row-major buffers that the production [`Transformer::forward`](transformer::Transformer::forward)
//! path runs on. The contract is strict **bit-identity** — every kernel performs the
//! same IEEE-754 operations in the same per-scalar order as the straight-line
//! reference implementation
//! ([`Transformer::forward_reference`](transformer::Transformer::forward_reference),
//! kept compiled as the oracle), so enabling the kernels can never change an answer,
//! an attention read-out, a golden snapshot, or a prefix-cache guarantee. The
//! differential suite in `tests/kernel_equivalence.rs` enforces the contract down to
//! `f64::to_bits` across randomised prompts, model shapes, cache states and
//! multi-threaded evaluator runs, in both debug and release codegen. Any behavioural
//! change to the forward pass must therefore be made in *both* implementations — the
//! suite fails loudly otherwise.
//!
//! ## Backend selection and the re-baseline contract
//!
//! Two kernel backends are always compiled
//! ([`KernelBackend`](kernels::KernelBackend)): `Scalar`, which keeps the strict
//! bit-identity contract above, and `Simd`, which restructures the same hot loops into
//! four-lane blocks that stable Rust auto-vectorises to packed SSE2. Selection is
//! per-model at runtime — [`SimLlm::with_kernel_backend`](model::SimLlm::with_kernel_backend)
//! or [`Transformer::with_backend`](transformer::Transformer::with_backend) — and the
//! *default* backend follows the `simd` cargo feature, so a plain build behaves
//! exactly as before the SIMD backend existed.
//!
//! The SIMD backend trades strict bit-identity for speed in four documented,
//! deterministic ways (tree-reduced dots, a polynomial `exp`, reciprocal weight
//! normalisation, and head-average weight folding — see [`kernels::simd`] for the
//! precise divergence contract and its ULP bounds). Everything else still matches the
//! scalar oracle bit-for-bit, and `tests/simd_equivalence.rs` pins both the bounds and
//! the bitwise-shared kernels. Two consequences for downstream users:
//!
//! * **Golden snapshots are scalar-pinned.** Tests that assert exact answers or
//!   attention bytes construct their models with the scalar backend explicitly, so the
//!   cargo feature cannot silently re-baseline them.
//! * **Re-baselining is opt-in and observable.** If a golden is ever moved onto the
//!   SIMD backend, its values must be regenerated under `--features simd` *and* the
//!   change reviewed as a semantic diff — the equivalence suite's ULP bounds say how
//!   large that diff may legitimately be. A prefix cache is likewise backend-private:
//!   entries written under one backend must never be read under the other.
//!
//! ## Crate layout
//!
//! * [`tokenizer`] — word-level tokenizer with a hashing vocabulary.
//! * [`embedding`] — deterministic token and positional embeddings.
//! * [`cache`] — the prefix/attention KV cache shared across perturbed forwards.
//! * [`kernels`] — fused, blocked inner loops for the attention hot path (bit-identical
//!   to the reference by contract).
//! * [`transformer`] — the attention stack and its recorded attention tensors.
//! * [`attention`] — per-source attention aggregation (sum over layers/heads/tokens).
//! * [`position_bias`] — parametric context-position priors ("lost in the middle" et al.).
//! * [`knowledge`] — prior (pre-trained) knowledge facts.
//! * [`extraction`] — question typing and candidate-answer extraction from sources.
//! * [`model`] — [`SimLlm`](model::SimLlm), the [`LanguageModel`] implementation.
//!
//! ## Example
//!
//! ```
//! use rage_llm::model::{SimLlm, SimLlmConfig};
//! use rage_llm::{LanguageModel, LlmInput, SourceText};
//!
//! let llm = SimLlm::new(SimLlmConfig::default());
//! let input = LlmInput::new(
//!     "Who won the most grand slam titles?",
//!     vec![
//!         SourceText::new("d1", "Novak Djokovic won 24 grand slam titles, the most in history."),
//!         SourceText::new("d2", "Roger Federer won 20 grand slam titles."),
//!     ],
//! );
//! let generation = llm.generate(&input);
//! assert_eq!(generation.answer.to_lowercase(), "novak djokovic");
//! assert_eq!(generation.source_attention.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod cache;
pub mod embedding;
pub mod extraction;
pub mod kernels;
pub mod knowledge;
pub mod model;
pub mod position_bias;
pub mod tokenizer;
pub mod transformer;

use serde::{Deserialize, Serialize};

pub use cache::{CacheStats, PrefixCache};

/// One context source as seen by the LLM: an identifier and its text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceText {
    /// Stable identifier of the source (document id).
    pub id: String,
    /// The source text placed into the prompt.
    pub text: String,
}

impl SourceText {
    /// Create a source from an id and its text.
    pub fn new(id: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            text: text.into(),
        }
    }
}

/// Structured input to the language model: the question plus the ordered context `Dq`.
///
/// The paper assembles a single natural-language prompt `p` from these parts; the
/// rendering of `p` (delimiters, instructions) lives in `rage-core::prompt`, while the
/// model consumes the structured form so that source token spans are known exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmInput {
    /// The user's question `q`.
    pub question: String,
    /// The ordered context sources `Dq` (possibly empty).
    pub sources: Vec<SourceText>,
}

impl LlmInput {
    /// Create an input from a question and ordered sources.
    pub fn new(question: impl Into<String>, sources: Vec<SourceText>) -> Self {
        Self {
            question: question.into(),
            sources,
        }
    }

    /// An input with no context sources (the "empty context" case of bottom-up search).
    pub fn without_context(question: impl Into<String>) -> Self {
        Self::new(question, Vec::new())
    }

    /// Number of context sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

/// The model's output for one prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generation {
    /// The short answer extracted from the model's response (already trimmed).
    pub answer: String,
    /// A chat-style full response text.
    pub text: String,
    /// Aggregate attention mass attributed to each context source, in prompt order.
    ///
    /// This is the quantity RAGE's attention-based relevance scoring sums: attention
    /// summed over all layers, heads and tokens belonging to each source, then scaled by
    /// the model's positional prior.
    pub source_attention: Vec<f64>,
    /// Number of tokens in the assembled prompt (question + delimiters + sources).
    pub prompt_tokens: usize,
}

impl Generation {
    /// Attention mass of the source at `index`, or `0.0` if out of range.
    pub fn attention_for(&self, index: usize) -> f64 {
        self.source_attention.get(index).copied().unwrap_or(0.0)
    }
}

/// The behavioural interface RAGE needs from any language model.
///
/// The simulated model implements it; an adapter around a real transformer checkpoint
/// could implement it equally well, which is what keeps `rage-core` model-agnostic (the
/// paper notes its tool is "fully compatible with any similar transformer-based LLM").
pub trait LanguageModel: Send + Sync {
    /// Produce an answer (and attention read-out) for the given question and context.
    fn generate(&self, input: &LlmInput) -> Generation;

    /// Produce one generation per input, in order.
    ///
    /// This is the batched entry point used by batch evaluators and pipelines.
    /// Implementations **must** return exactly what element-wise
    /// [`generate`](LanguageModel::generate) calls would return — batching is
    /// a throughput lever (shared prefix state, vectorised forwards, request
    /// coalescing against a remote backend), never a semantic one. The default
    /// implementation simply maps `generate`.
    fn batch_generate(&self, inputs: &[LlmInput]) -> Vec<Generation> {
        inputs.iter().map(|input| self.generate(input)).collect()
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "unnamed-llm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_input_constructors() {
        let input = LlmInput::new("q", vec![SourceText::new("a", "text")]);
        assert_eq!(input.num_sources(), 1);
        let empty = LlmInput::without_context("q");
        assert_eq!(empty.num_sources(), 0);
        assert_eq!(empty.question, "q");
    }

    #[test]
    fn generation_attention_accessor() {
        let generation = Generation {
            answer: "x".into(),
            text: "x".into(),
            source_attention: vec![0.5, 0.25],
            prompt_tokens: 10,
        };
        assert_eq!(generation.attention_for(1), 0.25);
        assert_eq!(generation.attention_for(9), 0.0);
    }
}
