//! A small, honest multi-head attention stack.
//!
//! The simulator does not pretend to be a 7B-parameter chat model, but the one thing
//! RAGE reads *out of* the model — attention, summed over layers, heads and tokens —
//! must come from a real attention computation for the attention-based relevance
//! scoring path to be meaningful. This module implements exactly that: token
//! embeddings are projected per head, scaled dot-product attention is computed with a
//! softmax per query position, hidden states are updated through a residual mix of the
//! attended values, and every layer's per-head attention matrix is recorded.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cache::PrefixCache;
use crate::embedding::{dot, normalize, Embedder, EmbeddingConfig};
use crate::kernels;
use crate::tokenizer::TokenizedPrompt;

/// Configuration of the attention stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Number of attention layers.
    pub layers: usize,
    /// Number of attention heads per layer.
    pub heads: usize,
    /// Model (embedding) dimensionality.
    pub dim: usize,
    /// Softmax temperature; lower values sharpen attention onto matching tokens.
    pub temperature: f64,
    /// Seed for the deterministic projection matrices and embeddings.
    pub seed: u64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            layers: 2,
            heads: 2,
            dim: 32,
            temperature: 0.35,
            seed: 0x5eed_1234,
        }
    }
}

/// A dense row-major `rows × cols` matrix of attention weights or projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element overwrite.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        self.data[r * self.cols + c] = value;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Attention matrices of one layer, one entry per head. Each matrix is `n × n` with
/// rows = query positions, columns = key positions, rows summing to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerAttention {
    /// Per-head attention matrices.
    pub heads: Vec<Matrix>,
}

/// The recorded attention of a full forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionRecord {
    /// Per-layer attention.
    pub layers: Vec<LayerAttention>,
    /// Sequence length the attention was computed over.
    pub seq_len: usize,
}

impl AttentionRecord {
    /// Total number of attention matrices (layers × heads).
    pub fn num_matrices(&self) -> usize {
        self.layers.iter().map(|l| l.heads.len()).sum()
    }
}

/// The simulated attention stack.
#[derive(Debug, Clone)]
pub struct Transformer {
    config: TransformerConfig,
    embedder: Embedder,
    /// Per layer, per head: a `head_dim × dim` projection applied to both queries and keys.
    projections: Vec<Vec<Matrix>>,
}

/// SplitMix64 step (kept local to avoid a circular helper dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_float(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl Transformer {
    /// Build a transformer with deterministic projection weights.
    pub fn new(config: TransformerConfig) -> Self {
        assert!(config.layers > 0, "at least one layer required");
        assert!(config.heads > 0, "at least one head required");
        assert!(config.dim > 0, "positive dimension required");
        let head_dim = (config.dim / config.heads).max(1);
        let embedder = Embedder::new(EmbeddingConfig {
            dim: config.dim,
            seed: config.seed,
            ..EmbeddingConfig::default()
        });
        let mut projections = Vec::with_capacity(config.layers);
        let mut state = config.seed ^ 0xABCD_EF01_2345_6789;
        for _layer in 0..config.layers {
            let mut heads = Vec::with_capacity(config.heads);
            for _head in 0..config.heads {
                let mut m = Matrix::zeros(head_dim, config.dim);
                for value in m.data.iter_mut() {
                    // Scaled random projection: approximately preserves dot products
                    // (Johnson–Lindenstrauss style), so lexical overlap between the
                    // question and a source still yields the highest attention scores.
                    *value = unit_float(splitmix64(&mut state)) / (head_dim as f64).sqrt();
                }
                heads.push(m);
            }
            projections.push(heads);
        }
        Self {
            config,
            embedder,
            projections,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Project a hidden-state vector with one head's projection matrix.
    fn project(&self, layer: usize, head: usize, hidden: &[f64]) -> Vec<f64> {
        let proj = &self.projections[layer][head];
        (0..proj.rows).map(|r| dot(proj.row(r), hidden)).collect()
    }

    /// Run the forward pass over a tokenised prompt and record every attention matrix.
    ///
    /// Equivalent to [`Transformer::forward_cached`] with no cache.
    pub fn forward(&self, prompt: &TokenizedPrompt) -> AttentionRecord {
        self.forward_cached(prompt, None)
    }

    /// Run the forward pass, reusing per-`(token, position)` state from a
    /// [`PrefixCache`] when one is supplied.
    ///
    /// Only state that is a pure function of `(token id, position)` is taken
    /// from the cache — the input embeddings and the layer-0 per-head
    /// query/key projections (at layer 0 the hidden state *is* the input
    /// embedding). Deeper layers depend on the whole sequence and are always
    /// recomputed, so the returned [`AttentionRecord`] is bit-identical to an
    /// uncached forward pass.
    ///
    /// This is the production path, implemented on the fused [`kernels`]:
    /// flat row-major buffers, blocked inner loops, and a mirrored score
    /// matrix (the pre-softmax score `dot(pᵩ, pₖ)·scale` is bit-symmetric in
    /// `q`/`k`, so only the upper triangle is computed). The result is
    /// guaranteed bit-identical to [`Transformer::forward_reference`] — see
    /// the [`kernels`] module docs for the contract and
    /// `tests/kernel_equivalence.rs` for its enforcement.
    pub fn forward_cached(
        &self,
        prompt: &TokenizedPrompt,
        cache: Option<&PrefixCache>,
    ) -> AttentionRecord {
        let n = prompt.len();
        if n == 0 {
            return AttentionRecord {
                layers: Vec::new(),
                seq_len: 0,
            };
        }
        let dim = self.config.dim;
        let heads_f = self.config.heads as f64;
        let head_dim = self.projections[0][0].rows;

        // Flat row-major hidden states, one `dim` row per token.
        let mut hidden = vec![0.0f64; n * dim];
        match cache {
            Some(cache) => {
                for (pos, token) in prompt.tokens.iter().enumerate() {
                    let row = cache.embedding(token.id, pos, || self.embedder.embed(token.id, pos));
                    hidden[pos * dim..(pos + 1) * dim].copy_from_slice(&row);
                }
            }
            None => {
                for (pos, token) in prompt.tokens.iter().enumerate() {
                    let row = self.embedder.embed(token.id, pos);
                    hidden[pos * dim..(pos + 1) * dim].copy_from_slice(&row);
                }
            }
        }

        // Scratch buffers reused across layers and heads.
        let mut projected = vec![0.0f64; n * head_dim];
        let mut mixed = vec![0.0f64; n * dim];
        let mut scores = vec![0.0f64; n * n];

        let mut layers = Vec::with_capacity(self.config.layers);
        for layer in 0..self.config.layers {
            let mut head_matrices = Vec::with_capacity(self.config.heads);
            mixed.fill(0.0);

            for head in 0..self.config.heads {
                // Shared Q/K state into the flat buffer: at layer 0 the
                // projection input is the (token, position) embedding, so the
                // projected vector can be reused across prompts via the
                // prefix cache.
                match cache {
                    Some(cache) if layer == 0 => {
                        for (pos, token) in prompt.tokens.iter().enumerate() {
                            let row = cache.layer0_projection(head, token.id, pos, || {
                                self.project(layer, head, &hidden[pos * dim..(pos + 1) * dim])
                            });
                            projected[pos * head_dim..(pos + 1) * head_dim].copy_from_slice(&row);
                        }
                    }
                    _ => {
                        let proj = &self.projections[layer][head];
                        for pos in 0..n {
                            kernels::matvec_into(
                                &proj.data,
                                proj.rows,
                                proj.cols,
                                &hidden[pos * dim..(pos + 1) * dim],
                                &mut projected[pos * head_dim..(pos + 1) * head_dim],
                            );
                        }
                    }
                }
                let scale = 1.0 / ((head_dim as f64).sqrt() * self.config.temperature);

                // Pre-softmax scores. `dot(pᵩ, pₖ)` performs the same
                // multiply/add sequence as `dot(pₖ, pᵩ)`, so the matrix is
                // bit-symmetric: compute the upper triangle, mirror the rest.
                for q in 0..n {
                    for k in 0..q {
                        scores[q * n + k] = scores[k * n + q];
                    }
                    kernels::scores_into(
                        &projected[q * head_dim..(q + 1) * head_dim],
                        &projected[q * head_dim..n * head_dim],
                        head_dim,
                        scale,
                        &mut scores[q * n + q..(q + 1) * n],
                    );
                }

                let mut attn = Matrix::zeros(n, n);
                for q in 0..n {
                    // Fused softmax + value mix over the query's weight row.
                    let row = attn.row_mut(q);
                    row.copy_from_slice(&scores[q * n..(q + 1) * n]);
                    let sum = kernels::softmax_exp_inplace(row);
                    kernels::weights_inplace(row, sum);
                    kernels::mix_accumulate(
                        row,
                        &hidden,
                        dim,
                        heads_f,
                        &mut mixed[q * dim..(q + 1) * dim],
                    );
                }
                head_matrices.push(attn);
            }

            kernels::residual_normalize(&mut hidden, &mixed, dim);
            layers.push(LayerAttention {
                heads: head_matrices,
            });
        }

        AttentionRecord { layers, seq_len: n }
    }

    /// The straight-line reference forward pass — the oracle the fused
    /// kernels are differentially tested against.
    ///
    /// This is the original (pre-kernel) implementation, kept compiled and
    /// public on purpose: `tests/kernel_equivalence.rs` asserts that
    /// [`Transformer::forward_cached`] matches it down to `f64::to_bits` for
    /// every prompt, configuration and cache state. It is not intended for
    /// production use — it allocates per query position and chases
    /// `Vec<Vec<f64>>` pointers — but any behavioural change to the forward
    /// pass must be made here *and* in the kernels, keeping both in lockstep.
    pub fn forward_reference(
        &self,
        prompt: &TokenizedPrompt,
        cache: Option<&PrefixCache>,
    ) -> AttentionRecord {
        let n = prompt.len();
        if n == 0 {
            return AttentionRecord {
                layers: Vec::new(),
                seq_len: 0,
            };
        }
        let mut hidden: Vec<Vec<f64>> = match cache {
            Some(cache) => prompt
                .tokens
                .iter()
                .enumerate()
                .map(|(pos, token)| {
                    (*cache.embedding(token.id, pos, || self.embedder.embed(token.id, pos))).clone()
                })
                .collect(),
            None => self
                .embedder
                .embed_sequence(&prompt.tokens.iter().map(|t| t.id).collect::<Vec<_>>()),
        };

        let mut layers = Vec::with_capacity(self.config.layers);
        for layer in 0..self.config.layers {
            let mut head_matrices = Vec::with_capacity(self.config.heads);
            // Mixed value accumulator for the residual update, averaged over heads.
            let mut mixed: Vec<Vec<f64>> = vec![vec![0.0; self.config.dim]; n];

            for head in 0..self.config.heads {
                // Shared Q/K state: at layer 0 the projection input is the
                // (token, position) embedding, so the projected vector can be
                // reused across prompts via the prefix cache.
                let projected: Vec<Arc<Vec<f64>>> = match cache {
                    Some(cache) if layer == 0 => hidden
                        .iter()
                        .enumerate()
                        .map(|(pos, h)| {
                            cache.layer0_projection(head, prompt.tokens[pos].id, pos, || {
                                self.project(layer, head, h)
                            })
                        })
                        .collect(),
                    _ => hidden
                        .iter()
                        .map(|h| Arc::new(self.project(layer, head, h)))
                        .collect(),
                };
                let head_dim = projected[0].len() as f64;
                let scale = 1.0 / (head_dim.sqrt() * self.config.temperature);

                let mut attn = Matrix::zeros(n, n);
                for q in 0..n {
                    // Scores for query q against every key.
                    let mut scores: Vec<f64> = (0..n)
                        .map(|k| dot(&projected[q], &projected[k]) * scale)
                        .collect();
                    // Numerically-stable softmax.
                    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut sum = 0.0;
                    for s in scores.iter_mut() {
                        *s = (*s - max).exp();
                        sum += *s;
                    }
                    for (k, s) in scores.iter().enumerate() {
                        let weight = s / sum;
                        attn.set(q, k, weight);
                        for d in 0..self.config.dim {
                            mixed[q][d] += weight * hidden[k][d] / self.config.heads as f64;
                        }
                    }
                }
                head_matrices.push(attn);
            }

            // Residual update + renormalisation keeps hidden states bounded across layers.
            for (h, m) in hidden.iter_mut().zip(mixed.iter()) {
                for d in 0..self.config.dim {
                    h[d] = 0.5 * h[d] + 0.5 * m[d];
                }
                normalize(h);
            }

            layers.push(LayerAttention {
                heads: head_matrices,
            });
        }

        AttentionRecord { layers, seq_len: n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::SimTokenizer;
    use crate::{LlmInput, SourceText};

    fn record_for(question: &str, sources: Vec<SourceText>) -> (AttentionRecord, TokenizedPrompt) {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(question, sources));
        let transformer = Transformer::new(TransformerConfig::default());
        (transformer.forward(&prompt), prompt)
    }

    #[test]
    fn records_expected_shapes() {
        let (record, prompt) = record_for(
            "who wins",
            vec![
                SourceText::new("a", "federer wins"),
                SourceText::new("b", "nadal clay"),
            ],
        );
        let config = TransformerConfig::default();
        assert_eq!(record.layers.len(), config.layers);
        assert_eq!(record.num_matrices(), config.layers * config.heads);
        assert_eq!(record.seq_len, prompt.len());
        for layer in &record.layers {
            for head in &layer.heads {
                assert_eq!(head.rows, prompt.len());
                assert_eq!(head.cols, prompt.len());
            }
        }
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (record, prompt) = record_for(
            "who has the most grand slam titles",
            vec![
                SourceText::new("a", "djokovic holds the most grand slam titles"),
                SourceText::new("b", "the pasta should boil for nine minutes"),
            ],
        );
        for layer in &record.layers {
            for head in &layer.heads {
                for q in 0..prompt.len() {
                    let row_sum: f64 = (0..prompt.len()).map(|k| head.get(q, k)).sum();
                    assert!((row_sum - 1.0).abs() < 1e-9, "row {q} sums to {row_sum}");
                }
            }
        }
    }

    #[test]
    fn attention_is_nonnegative() {
        let (record, _) = record_for("q", vec![SourceText::new("a", "alpha beta gamma")]);
        for layer in &record.layers {
            for head in &layer.heads {
                assert!(head.data.iter().all(|&w| w >= 0.0));
            }
        }
    }

    #[test]
    fn lexical_overlap_attracts_attention() {
        // A source sharing the question's words should receive more first-layer
        // attention from the question tokens than an unrelated source of equal length.
        let tok = SimTokenizer::new();
        // Both sources tokenise to the same length so span size cannot confound the
        // comparison; only lexical overlap with the question differs.
        let input = LlmInput::new(
            "who holds the most grand slam titles",
            vec![
                SourceText::new("match", "djokovic holds the most grand slam titles overall"),
                SourceText::new(
                    "noise",
                    "recipe simmers garlic onions beside fresh basil leaves",
                ),
            ],
        );
        let prompt = tok.tokenize_prompt(&input);
        let transformer = Transformer::new(TransformerConfig::default());
        let record = transformer.forward(&prompt);

        let (q_start, q_end) = prompt.question_span;
        let mass = |span: (usize, usize)| -> f64 {
            let mut total = 0.0;
            for layer in &record.layers {
                for head in &layer.heads {
                    for q in q_start..q_end {
                        for k in span.0..span.1 {
                            total += head.get(q, k);
                        }
                    }
                }
            }
            total
        };
        let matching = mass(prompt.source_spans[0]);
        let unrelated = mass(prompt.source_spans[1]);
        assert!(
            matching > unrelated,
            "matching source got {matching}, unrelated got {unrelated}"
        );
    }

    #[test]
    fn cached_forward_is_bit_identical_to_uncached() {
        let tok = SimTokenizer::new();
        let transformer = Transformer::new(TransformerConfig::default());
        let cache = PrefixCache::default();
        for sources in [
            vec![
                SourceText::new("a", "federer leads match wins"),
                SourceText::new("b", "djokovic holds the most slams"),
            ],
            // Swapped order and a truncated context reuse the question prefix.
            vec![
                SourceText::new("b", "djokovic holds the most slams"),
                SourceText::new("a", "federer leads match wins"),
            ],
            vec![SourceText::new("a", "federer leads match wins")],
        ] {
            let prompt = tok.tokenize_prompt(&LlmInput::new("who wins the most", sources));
            let plain = transformer.forward(&prompt);
            let cached = transformer.forward_cached(&prompt, Some(&cache));
            assert_eq!(plain, cached);
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "prefix reuse must produce hits");
    }

    #[test]
    fn forward_is_deterministic() {
        let (a, _) = record_for("question", vec![SourceText::new("s", "some text here")]);
        let (b, _) = record_for("question", vec![SourceText::new("s", "some text here")]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_attention() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(
            "q",
            vec![SourceText::new("s", "alpha beta gamma delta")],
        ));
        let a = Transformer::new(TransformerConfig {
            seed: 1,
            ..TransformerConfig::default()
        })
        .forward(&prompt);
        let b = Transformer::new(TransformerConfig {
            seed: 2,
            ..TransformerConfig::default()
        })
        .forward(&prompt);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_prompt_yields_empty_record() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::without_context(""));
        // The question marker token is always present, so force a truly empty prompt.
        let empty = TokenizedPrompt {
            tokens: Vec::new(),
            source_spans: Vec::new(),
            question_span: (0, 0),
        };
        assert_eq!(prompt.len(), 1);
        let record = Transformer::new(TransformerConfig::default()).forward(&empty);
        assert_eq!(record.seq_len, 0);
        assert!(record.layers.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        Transformer::new(TransformerConfig {
            layers: 0,
            ..TransformerConfig::default()
        });
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }
}
