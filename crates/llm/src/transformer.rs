//! A small, honest multi-head attention stack.
//!
//! The simulator does not pretend to be a 7B-parameter chat model, but the one thing
//! RAGE reads *out of* the model — attention, summed over layers, heads and tokens —
//! must come from a real attention computation for the attention-based relevance
//! scoring path to be meaningful. This module implements exactly that: token
//! embeddings are projected per head, scaled dot-product attention is computed with a
//! softmax per query position, hidden states are updated through a residual mix of the
//! attended values, and every layer's per-head attention matrix is recorded.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::cache::PrefixCache;
use crate::embedding::{dot, normalize, Embedder, EmbeddingConfig};
use crate::kernels;
use crate::tokenizer::TokenizedPrompt;

/// Configuration of the attention stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Number of attention layers.
    pub layers: usize,
    /// Number of attention heads per layer.
    pub heads: usize,
    /// Model (embedding) dimensionality.
    pub dim: usize,
    /// Softmax temperature; lower values sharpen attention onto matching tokens.
    pub temperature: f64,
    /// Seed for the deterministic projection matrices and embeddings.
    pub seed: u64,
    /// Causal attention: query position `q` attends only to key positions
    /// `k <= q` (decoder-style masking of future positions). Off by default —
    /// the read-out the explanation engine aggregates was calibrated on
    /// bidirectional attention. With the workspace's question-first prompt
    /// layout, causal masking means question rows never see source tokens,
    /// so [`SimLlm`](crate::model::SimLlm) switches its aggregation to the
    /// whole-prompt variant when this is on (see `SimLlm::effective_attention`).
    pub causal: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            layers: 2,
            heads: 2,
            dim: 32,
            temperature: 0.35,
            seed: 0x5eed_1234,
            causal: false,
        }
    }
}

/// A dense row-major `rows × cols` matrix of attention weights or projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element overwrite.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        self.data[r * self.cols + c] = value;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Attention matrices of one layer, one entry per head. Each matrix is `n × n` with
/// rows = query positions, columns = key positions, rows summing to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerAttention {
    /// Per-head attention matrices.
    pub heads: Vec<Matrix>,
}

/// The recorded attention of a full forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionRecord {
    /// Per-layer attention.
    pub layers: Vec<LayerAttention>,
    /// Sequence length the attention was computed over.
    pub seq_len: usize,
}

impl AttentionRecord {
    /// Total number of attention matrices (layers × heads).
    pub fn num_matrices(&self) -> usize {
        self.layers.iter().map(|l| l.heads.len()).sum()
    }
}

/// The simulated attention stack.
#[derive(Debug, Clone)]
pub struct Transformer {
    config: TransformerConfig,
    embedder: Embedder,
    /// Per layer, per head: a `head_dim × dim` projection applied to both queries and keys.
    projections: Vec<Vec<Matrix>>,
    /// Which kernel implementation [`Transformer::forward_cached`] runs on.
    backend: kernels::KernelBackend,
    /// Recycled `n × n` buffers for attention matrices and combined-weight
    /// scratch. At report-scale prompts these allocations are large enough
    /// that the system allocator hands them back to the OS on every drop,
    /// and the page faults of re-touching fresh pages cost more than an
    /// entire softmax pass per forward. Callers that are done reading an
    /// [`AttentionRecord`] return its matrices via [`Transformer::recycle`];
    /// clones share the pool.
    scratch: Arc<Mutex<Vec<Vec<f64>>>>,
}

/// Upper bound on pooled scratch buffers: enough for a full record (layers ×
/// heads) plus the combined-weight matrix from concurrent forwards, while
/// capping idle memory at `SCRATCH_CAP · n²` doubles.
const SCRATCH_CAP: usize = 12;

/// SplitMix64 step (kept local to avoid a circular helper dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_float(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl Transformer {
    /// Build a transformer with deterministic projection weights.
    pub fn new(config: TransformerConfig) -> Self {
        assert!(config.layers > 0, "at least one layer required");
        assert!(config.heads > 0, "at least one head required");
        assert!(config.dim > 0, "positive dimension required");
        let head_dim = (config.dim / config.heads).max(1);
        let embedder = Embedder::new(EmbeddingConfig {
            dim: config.dim,
            seed: config.seed,
            ..EmbeddingConfig::default()
        });
        let mut projections = Vec::with_capacity(config.layers);
        let mut state = config.seed ^ 0xABCD_EF01_2345_6789;
        for _layer in 0..config.layers {
            let mut heads = Vec::with_capacity(config.heads);
            for _head in 0..config.heads {
                let mut m = Matrix::zeros(head_dim, config.dim);
                for value in m.data.iter_mut() {
                    // Scaled random projection: approximately preserves dot products
                    // (Johnson–Lindenstrauss style), so lexical overlap between the
                    // question and a source still yields the highest attention scores.
                    *value = unit_float(splitmix64(&mut state)) / (head_dim as f64).sqrt();
                }
                heads.push(m);
            }
            projections.push(heads);
        }
        Self {
            config,
            embedder,
            projections,
            backend: kernels::KernelBackend::default(),
            scratch: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Pop a pooled buffer resized to `len`. When `zeroed` is false the
    /// contents are stale and the caller must overwrite every element (the
    /// bidirectional score pass does); when true the buffer is zero-filled,
    /// matching a fresh `vec![0.0; len]` bit-for-bit.
    fn take_scratch(&self, len: usize, zeroed: bool) -> Vec<f64> {
        let mut buf = self
            .scratch
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        if buf.len() != len {
            buf.clear();
            buf.resize(len, 0.0);
        } else if zeroed {
            buf.fill(0.0);
        }
        buf
    }

    /// Return one buffer to the pool (bounded by [`SCRATCH_CAP`]).
    fn give_scratch(&self, buf: Vec<f64>) {
        let mut pool = self.scratch.lock().expect("scratch pool poisoned");
        if pool.len() < SCRATCH_CAP {
            pool.push(buf);
        }
    }

    /// Return a fully-read [`AttentionRecord`]'s matrices to the scratch
    /// pool so the next forward pass reuses their allocations instead of
    /// faulting in fresh pages. Purely an allocation-lifetime optimisation:
    /// recycling is optional, never changes results, and records that are
    /// simply dropped cost nothing beyond the lost reuse.
    pub fn recycle(&self, record: AttentionRecord) {
        let mut pool = self.scratch.lock().expect("scratch pool poisoned");
        for layer in record.layers {
            for matrix in layer.heads {
                if pool.len() >= SCRATCH_CAP {
                    return;
                }
                pool.push(matrix.data);
            }
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Select the kernel backend the fused forward pass runs on (builder
    /// style). See the [`kernels`] module docs for the backend contract.
    ///
    /// The backend participates in every fused computation *including the
    /// values stored into a [`PrefixCache`]*, so a cache warmed under one
    /// backend must never be shared with a model running another — the
    /// scalar and SIMD projections differ by ULPs and mixing them would make
    /// cached and uncached forwards diverge.
    pub fn with_backend(mut self, backend: kernels::KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The kernel backend in use.
    pub fn backend(&self) -> kernels::KernelBackend {
        self.backend
    }

    /// Project a hidden-state vector with one head's projection matrix —
    /// reference operation order (sequential row dots), used by
    /// [`Transformer::forward_reference`] regardless of backend.
    fn project(&self, layer: usize, head: usize, hidden: &[f64]) -> Vec<f64> {
        let proj = &self.projections[layer][head];
        (0..proj.rows).map(|r| dot(proj.row(r), hidden)).collect()
    }

    /// Backend-dispatched projection, used by the fused path's cache-miss
    /// closure so that cached and uncached fused forwards agree bit-for-bit
    /// under *either* backend. (Under the scalar backend this is bit-identical
    /// to [`Transformer::project`]; under SIMD the dots are tree-reduced.)
    fn project_fused(&self, layer: usize, head: usize, hidden: &[f64]) -> Vec<f64> {
        let proj = &self.projections[layer][head];
        let mut out = vec![0.0; proj.rows];
        self.backend
            .matvec_into(&proj.data, proj.rows, proj.cols, hidden, &mut out);
        out
    }

    /// Run the forward pass over a tokenised prompt and record every attention matrix.
    ///
    /// Equivalent to [`Transformer::forward_cached`] with no cache.
    pub fn forward(&self, prompt: &TokenizedPrompt) -> AttentionRecord {
        self.forward_cached(prompt, None)
    }

    /// Run the forward pass, reusing per-`(token, position)` state from a
    /// [`PrefixCache`] when one is supplied.
    ///
    /// Only state that is a pure function of `(token id, position)` is taken
    /// from the cache — the input embeddings and the layer-0 per-head
    /// query/key projections (at layer 0 the hidden state *is* the input
    /// embedding). Deeper layers depend on the whole sequence and are always
    /// recomputed, so the returned [`AttentionRecord`] is bit-identical to an
    /// uncached forward pass.
    ///
    /// This is the production path, implemented on the fused [`kernels`]:
    /// flat row-major buffers, blocked inner loops, and a mirrored score
    /// matrix (the pre-softmax score `dot(pᵩ, pₖ)·scale` is bit-symmetric in
    /// `q`/`k`, so only the upper triangle is computed; under causal masking
    /// each row's visible prefix is computed directly instead). Under
    /// [`KernelBackend::Scalar`](kernels::KernelBackend::Scalar) the result
    /// is guaranteed bit-identical to [`Transformer::forward_reference`] —
    /// see the [`kernels`] module docs for the contract and
    /// `tests/kernel_equivalence.rs` for its enforcement. Under
    /// [`KernelBackend::Simd`](kernels::KernelBackend::Simd) the result is
    /// deterministic but ULP-divergent from the oracle (tree-reduced dots,
    /// polynomial softmax `exp`, combined-head value mix), with the bound
    /// pinned by `tests/simd_equivalence.rs`.
    pub fn forward_cached(
        &self,
        prompt: &TokenizedPrompt,
        cache: Option<&PrefixCache>,
    ) -> AttentionRecord {
        let n = prompt.len();
        if n == 0 {
            return AttentionRecord {
                layers: Vec::new(),
                seq_len: 0,
            };
        }
        let dim = self.config.dim;
        let heads_f = self.config.heads as f64;
        let head_dim = self.projections[0][0].rows;

        // Flat row-major hidden states, one `dim` row per token.
        let mut hidden = vec![0.0f64; n * dim];
        match cache {
            Some(cache) => {
                for (pos, token) in prompt.tokens.iter().enumerate() {
                    let row = cache.embedding(token.id, pos, || self.embedder.embed(token.id, pos));
                    hidden[pos * dim..(pos + 1) * dim].copy_from_slice(&row);
                }
            }
            None => {
                for (pos, token) in prompt.tokens.iter().enumerate() {
                    let row = self.embedder.embed(token.id, pos);
                    hidden[pos * dim..(pos + 1) * dim].copy_from_slice(&row);
                }
            }
        }

        // Scratch buffers reused across layers and heads.
        let mut projected = vec![0.0f64; n * head_dim];
        let mut mixed = vec![0.0f64; n * dim];

        let backend = self.backend;
        let causal = self.config.causal;
        // The SIMD backend folds the per-head value mixes into one combined
        // pass per query: the head weight rows are summed first, then the
        // values are traversed once instead of once per head. Same math,
        // reassociated — part of the backend's documented ULP divergence.
        // (With one head the fold is the identity, so skip the extra copy.)
        let combine_mix = backend == kernels::KernelBackend::Simd && self.config.heads > 1;
        let mut combined = vec![0.0f64; if combine_mix && causal { n } else { 0 }];
        // Full combined-weight matrix for the tiled mix (bidirectional SIMD
        // path only — causal rows have ragged visible prefixes). Stale pool
        // contents are fine: assembly assigns every element before the mix
        // reads it.
        let mut combined_all = if combine_mix && !causal {
            self.take_scratch(n * n, false)
        } else {
            Vec::new()
        };
        let inv_heads = kernels::exact_reciprocal(heads_f).unwrap_or(1.0 / heads_f);

        let mut layers = Vec::with_capacity(self.config.layers);
        for layer in 0..self.config.layers {
            let mut head_matrices = Vec::with_capacity(self.config.heads);
            mixed.fill(0.0);

            for head in 0..self.config.heads {
                // Shared Q/K state into the flat buffer: at layer 0 the
                // projection input is the (token, position) embedding, so the
                // projected vector can be reused across prompts via the
                // prefix cache.
                match cache {
                    Some(cache) if layer == 0 => {
                        for (pos, token) in prompt.tokens.iter().enumerate() {
                            let row = cache.layer0_projection(head, token.id, pos, || {
                                self.project_fused(layer, head, &hidden[pos * dim..(pos + 1) * dim])
                            });
                            projected[pos * head_dim..(pos + 1) * head_dim].copy_from_slice(&row);
                        }
                    }
                    _ => {
                        let proj = &self.projections[layer][head];
                        for pos in 0..n {
                            backend.matvec_into(
                                &proj.data,
                                proj.rows,
                                proj.cols,
                                &hidden[pos * dim..(pos + 1) * dim],
                                &mut projected[pos * head_dim..(pos + 1) * head_dim],
                            );
                        }
                    }
                }
                let scale = 1.0 / ((head_dim as f64).sqrt() * self.config.temperature);

                // Pre-softmax scores. Bidirectional: `dot(pᵩ, pₖ)` performs
                // the same multiply/add sequence as `dot(pₖ, pᵩ)`, so the
                // matrix is bit-symmetric — compute the upper triangle,
                // mirror the rest. Causal: each row needs only its visible
                // prefix `k <= q` (the lower triangle), and earlier rows
                // never computed those columns, so the prefix is computed
                // directly — no mirror, same `n(n+1)/2` total dot products.
                // Scores are computed straight into the retained attention
                // matrix — no separate score scratch and clone (a full
                // extra `n × n` memcpy). The matrix comes from the scratch
                // pool: the bidirectional pass overwrites every element
                // (mirror plus kernel row), while the causal pass needs the
                // masked upper triangle zeroed, exactly like a fresh
                // allocation. The mirror reads earlier rows of `attn`
                // itself, which still hold raw scores because the softmax
                // pass below only starts once every row is written.
                let mut attn = Matrix {
                    rows: n,
                    cols: n,
                    data: self.take_scratch(n * n, causal),
                };
                for q in 0..n {
                    let row_start = q * n;
                    if causal {
                        let visible = q + 1;
                        backend.scores_into(
                            &projected[q * head_dim..(q + 1) * head_dim],
                            &projected[..visible * head_dim],
                            head_dim,
                            scale,
                            &mut attn.data[row_start..row_start + visible],
                        );
                    } else {
                        for k in 0..q {
                            attn.data[row_start + k] = attn.data[k * n + q];
                        }
                        backend.scores_into(
                            &projected[q * head_dim..(q + 1) * head_dim],
                            &projected[q * head_dim..n * head_dim],
                            head_dim,
                            scale,
                            &mut attn.data[row_start + q..row_start + n],
                        );
                    }
                }
                for q in 0..n {
                    // Fused softmax + value mix over the query's visible
                    // weight prefix; masked (future) positions stay at the
                    // allocation's zeros, exactly like the reference's
                    // untouched entries.
                    let visible = if causal { q + 1 } else { n };
                    let row = attn.row_mut(q);
                    let sum = backend.softmax_exp_inplace(&mut row[..visible]);
                    backend.weights_inplace(&mut row[..visible], sum);
                    if !combine_mix {
                        backend.mix_accumulate(
                            &row[..visible],
                            &hidden[..visible * dim],
                            dim,
                            heads_f,
                            &mut mixed[q * dim..(q + 1) * dim],
                        );
                    }
                }
                head_matrices.push(attn);
            }

            if combine_mix && !causal {
                // Assemble the head-averaged combined-weight matrix, then
                // run one tiled mix over the whole layer so the hidden
                // buffer streams through L1-sized key tiles exactly once
                // instead of once per query. The fold is the identical
                // `(w₀ + w₁ + …) · (1/heads)` product `simd::mix_accumulate`
                // forms per key, so the tiled mix rounds exactly like the
                // per-query kernel.
                let (first_head, rest_heads) = head_matrices
                    .split_first()
                    .expect("combine_mix requires heads > 1");
                let (last_head, mid_heads) = rest_heads
                    .split_last()
                    .expect("combine_mix requires heads > 1");
                for q in 0..n {
                    let dst = &mut combined_all[q * n..(q + 1) * n];
                    dst.copy_from_slice(first_head.row(q));
                    for attn in mid_heads {
                        for (c, w) in dst.iter_mut().zip(attn.row(q)) {
                            *c += *w;
                        }
                    }
                    for (c, w) in dst.iter_mut().zip(last_head.row(q)) {
                        *c = (*c + *w) * inv_heads;
                    }
                }
                kernels::simd::mix_tiled(&combined_all, &hidden, dim, &mut mixed);
            } else if combine_mix {
                let (first_head, rest_heads) = head_matrices
                    .split_first()
                    .expect("combine_mix requires heads > 1");
                for q in 0..n {
                    let visible = q + 1;
                    let combined = &mut combined[..visible];
                    // Assign from the first head, accumulate the rest — one
                    // fewer pass over the row than zero-fill-then-add.
                    for (c, w) in combined.iter_mut().zip(&first_head.row(q)[..visible]) {
                        *c = *w;
                    }
                    for attn in rest_heads {
                        for (c, w) in combined.iter_mut().zip(&attn.row(q)[..visible]) {
                            *c += *w;
                        }
                    }
                    backend.mix_accumulate(
                        combined,
                        &hidden[..visible * dim],
                        dim,
                        heads_f,
                        &mut mixed[q * dim..(q + 1) * dim],
                    );
                }
            }

            backend.residual_normalize(&mut hidden, &mixed, dim);
            layers.push(LayerAttention {
                heads: head_matrices,
            });
        }
        if !combined_all.is_empty() {
            self.give_scratch(combined_all);
        }

        AttentionRecord { layers, seq_len: n }
    }

    /// The straight-line reference forward pass — the oracle the fused
    /// kernels are differentially tested against.
    ///
    /// This is the original (pre-kernel) implementation, kept compiled and
    /// public on purpose: `tests/kernel_equivalence.rs` asserts that
    /// [`Transformer::forward_cached`] matches it down to `f64::to_bits` for
    /// every prompt, configuration and cache state. It is not intended for
    /// production use — it allocates per query position and chases
    /// `Vec<Vec<f64>>` pointers — but any behavioural change to the forward
    /// pass must be made here *and* in the kernels, keeping both in lockstep.
    pub fn forward_reference(
        &self,
        prompt: &TokenizedPrompt,
        cache: Option<&PrefixCache>,
    ) -> AttentionRecord {
        let n = prompt.len();
        if n == 0 {
            return AttentionRecord {
                layers: Vec::new(),
                seq_len: 0,
            };
        }
        let mut hidden: Vec<Vec<f64>> = match cache {
            Some(cache) => prompt
                .tokens
                .iter()
                .enumerate()
                .map(|(pos, token)| {
                    (*cache.embedding(token.id, pos, || self.embedder.embed(token.id, pos))).clone()
                })
                .collect(),
            None => self
                .embedder
                .embed_sequence(&prompt.tokens.iter().map(|t| t.id).collect::<Vec<_>>()),
        };

        let mut layers = Vec::with_capacity(self.config.layers);
        for layer in 0..self.config.layers {
            let mut head_matrices = Vec::with_capacity(self.config.heads);
            // Mixed value accumulator for the residual update, averaged over heads.
            let mut mixed: Vec<Vec<f64>> = vec![vec![0.0; self.config.dim]; n];

            for head in 0..self.config.heads {
                // Shared Q/K state: at layer 0 the projection input is the
                // (token, position) embedding, so the projected vector can be
                // reused across prompts via the prefix cache.
                let projected: Vec<Arc<Vec<f64>>> = match cache {
                    Some(cache) if layer == 0 => hidden
                        .iter()
                        .enumerate()
                        .map(|(pos, h)| {
                            cache.layer0_projection(head, prompt.tokens[pos].id, pos, || {
                                self.project(layer, head, h)
                            })
                        })
                        .collect(),
                    _ => hidden
                        .iter()
                        .map(|h| Arc::new(self.project(layer, head, h)))
                        .collect(),
                };
                let head_dim = projected[0].len() as f64;
                let scale = 1.0 / (head_dim.sqrt() * self.config.temperature);

                let mut attn = Matrix::zeros(n, n);
                for q in 0..n {
                    // Scores for query q against every visible key (all of
                    // them, or the causal prefix `k <= q`; masked positions
                    // keep the matrix's zero initialisation).
                    let visible = if self.config.causal { q + 1 } else { n };
                    let mut scores: Vec<f64> = (0..visible)
                        .map(|k| dot(&projected[q], &projected[k]) * scale)
                        .collect();
                    // Numerically-stable softmax.
                    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut sum = 0.0;
                    for s in scores.iter_mut() {
                        *s = (*s - max).exp();
                        sum += *s;
                    }
                    for (k, s) in scores.iter().enumerate() {
                        let weight = s / sum;
                        attn.set(q, k, weight);
                        for d in 0..self.config.dim {
                            mixed[q][d] += weight * hidden[k][d] / self.config.heads as f64;
                        }
                    }
                }
                head_matrices.push(attn);
            }

            // Residual update + renormalisation keeps hidden states bounded across layers.
            for (h, m) in hidden.iter_mut().zip(mixed.iter()) {
                for d in 0..self.config.dim {
                    h[d] = 0.5 * h[d] + 0.5 * m[d];
                }
                normalize(h);
            }

            layers.push(LayerAttention {
                heads: head_matrices,
            });
        }

        AttentionRecord { layers, seq_len: n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::SimTokenizer;
    use crate::{LlmInput, SourceText};

    fn record_for(question: &str, sources: Vec<SourceText>) -> (AttentionRecord, TokenizedPrompt) {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(question, sources));
        let transformer = Transformer::new(TransformerConfig::default());
        (transformer.forward(&prompt), prompt)
    }

    #[test]
    fn records_expected_shapes() {
        let (record, prompt) = record_for(
            "who wins",
            vec![
                SourceText::new("a", "federer wins"),
                SourceText::new("b", "nadal clay"),
            ],
        );
        let config = TransformerConfig::default();
        assert_eq!(record.layers.len(), config.layers);
        assert_eq!(record.num_matrices(), config.layers * config.heads);
        assert_eq!(record.seq_len, prompt.len());
        for layer in &record.layers {
            for head in &layer.heads {
                assert_eq!(head.rows, prompt.len());
                assert_eq!(head.cols, prompt.len());
            }
        }
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (record, prompt) = record_for(
            "who has the most grand slam titles",
            vec![
                SourceText::new("a", "djokovic holds the most grand slam titles"),
                SourceText::new("b", "the pasta should boil for nine minutes"),
            ],
        );
        for layer in &record.layers {
            for head in &layer.heads {
                for q in 0..prompt.len() {
                    let row_sum: f64 = (0..prompt.len()).map(|k| head.get(q, k)).sum();
                    assert!((row_sum - 1.0).abs() < 1e-9, "row {q} sums to {row_sum}");
                }
            }
        }
    }

    #[test]
    fn attention_is_nonnegative() {
        let (record, _) = record_for("q", vec![SourceText::new("a", "alpha beta gamma")]);
        for layer in &record.layers {
            for head in &layer.heads {
                assert!(head.data.iter().all(|&w| w >= 0.0));
            }
        }
    }

    #[test]
    fn lexical_overlap_attracts_attention() {
        // A source sharing the question's words should receive more first-layer
        // attention from the question tokens than an unrelated source of equal length.
        let tok = SimTokenizer::new();
        // Both sources tokenise to the same length so span size cannot confound the
        // comparison; only lexical overlap with the question differs.
        let input = LlmInput::new(
            "who holds the most grand slam titles",
            vec![
                SourceText::new("match", "djokovic holds the most grand slam titles overall"),
                SourceText::new(
                    "noise",
                    "recipe simmers garlic onions beside fresh basil leaves",
                ),
            ],
        );
        let prompt = tok.tokenize_prompt(&input);
        let transformer = Transformer::new(TransformerConfig::default());
        let record = transformer.forward(&prompt);

        let (q_start, q_end) = prompt.question_span;
        let mass = |span: (usize, usize)| -> f64 {
            let mut total = 0.0;
            for layer in &record.layers {
                for head in &layer.heads {
                    for q in q_start..q_end {
                        for k in span.0..span.1 {
                            total += head.get(q, k);
                        }
                    }
                }
            }
            total
        };
        let matching = mass(prompt.source_spans[0]);
        let unrelated = mass(prompt.source_spans[1]);
        assert!(
            matching > unrelated,
            "matching source got {matching}, unrelated got {unrelated}"
        );
    }

    #[test]
    fn cached_forward_is_bit_identical_to_uncached() {
        let tok = SimTokenizer::new();
        let transformer = Transformer::new(TransformerConfig::default());
        let cache = PrefixCache::default();
        for sources in [
            vec![
                SourceText::new("a", "federer leads match wins"),
                SourceText::new("b", "djokovic holds the most slams"),
            ],
            // Swapped order and a truncated context reuse the question prefix.
            vec![
                SourceText::new("b", "djokovic holds the most slams"),
                SourceText::new("a", "federer leads match wins"),
            ],
            vec![SourceText::new("a", "federer leads match wins")],
        ] {
            let prompt = tok.tokenize_prompt(&LlmInput::new("who wins the most", sources));
            let plain = transformer.forward(&prompt);
            let cached = transformer.forward_cached(&prompt, Some(&cache));
            assert_eq!(plain, cached);
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "prefix reuse must produce hits");
    }

    #[test]
    fn forward_is_deterministic() {
        let (a, _) = record_for("question", vec![SourceText::new("s", "some text here")]);
        let (b, _) = record_for("question", vec![SourceText::new("s", "some text here")]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_attention() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(
            "q",
            vec![SourceText::new("s", "alpha beta gamma delta")],
        ));
        let a = Transformer::new(TransformerConfig {
            seed: 1,
            ..TransformerConfig::default()
        })
        .forward(&prompt);
        let b = Transformer::new(TransformerConfig {
            seed: 2,
            ..TransformerConfig::default()
        })
        .forward(&prompt);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_prompt_yields_empty_record() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::without_context(""));
        // The question marker token is always present, so force a truly empty prompt.
        let empty = TokenizedPrompt {
            tokens: Vec::new(),
            source_spans: Vec::new(),
            question_span: (0, 0),
        };
        assert_eq!(prompt.len(), 1);
        let record = Transformer::new(TransformerConfig::default()).forward(&empty);
        assert_eq!(record.seq_len, 0);
        assert!(record.layers.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        Transformer::new(TransformerConfig {
            layers: 0,
            ..TransformerConfig::default()
        });
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }
}
