//! Context-position priors ("lost in the middle" and friends).
//!
//! Liu et al. (ref. [2] of the RAGE paper) show that chat LLMs pay more attention to
//! sources at the beginning and end of a long context than to those in the middle. RAGE
//! both *explains* the consequences of this bias (permutation counterfactuals) and
//! *counteracts* it (optimal permutations that place relevant sources in high-attention
//! positions, optionally calibrated with "a predefined V-shaped distribution").
//!
//! [`PositionBiasProfile`] is that calibration knob: it maps a context position
//! `0..k` to a multiplicative attention weight. The simulated model multiplies its
//! content-based attention by this prior; the optimal-permutation solver uses the same
//! profile as the expected-attention distribution over positions.

use serde::{Deserialize, Serialize};

/// A parametric prior over context positions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PositionBiasProfile {
    /// No positional preference: every position weighs 1.
    Uniform,
    /// The "lost in the middle" U-shape: the first and last positions weigh 1, the
    /// middle sinks to `1 − depth` (with `0 ≤ depth ≤ 1`).
    LostInTheMiddle {
        /// How deep the middle of the context sinks (0 = uniform, 1 = middle ignored).
        depth: f64,
    },
    /// The predefined V-shaped calibration the paper's UI offers: linear descent from the
    /// first position to the middle and symmetric ascent back to the last position.
    VShaped {
        /// Weight at the bottom of the V (the middle position); ends weigh 1.
        floor: f64,
    },
    /// Primacy-only bias: weight decays linearly from 1 at the first position to `floor`
    /// at the last.
    Primacy {
        /// Weight of the last position.
        floor: f64,
    },
    /// Recency-only bias: weight grows linearly from `floor` at the first position to 1
    /// at the last.
    Recency {
        /// Weight of the first position.
        floor: f64,
    },
}

impl Default for PositionBiasProfile {
    fn default() -> Self {
        // The default mirrors the behaviour the paper's narratives rely on: strong
        // primacy, noticeable recency, weak middle.
        PositionBiasProfile::LostInTheMiddle { depth: 0.7 }
    }
}

impl PositionBiasProfile {
    /// The weight of context position `position` out of `k` positions (0-based).
    ///
    /// Weights are in `(0, 1]`; `k == 0` or an out-of-range position yields `1.0` so the
    /// profile is harmless for empty contexts.
    pub fn weight(&self, position: usize, k: usize) -> f64 {
        if k == 0 || position >= k {
            return 1.0;
        }
        if k == 1 {
            return 1.0;
        }
        // Normalised position in [0, 1].
        let x = position as f64 / (k - 1) as f64;
        let w = match *self {
            PositionBiasProfile::Uniform => 1.0,
            PositionBiasProfile::LostInTheMiddle { depth } => {
                let depth = depth.clamp(0.0, 1.0);
                // Smooth U-shape: cosine bump subtracted in the middle.
                1.0 - depth * (std::f64::consts::PI * x).sin().powi(2)
            }
            PositionBiasProfile::VShaped { floor } => {
                let floor = floor.clamp(0.0, 1.0);
                let distance_from_edge = 1.0 - (2.0 * x - 1.0).abs();
                1.0 - (1.0 - floor) * distance_from_edge
            }
            PositionBiasProfile::Primacy { floor } => {
                let floor = floor.clamp(0.0, 1.0);
                1.0 - (1.0 - floor) * x
            }
            PositionBiasProfile::Recency { floor } => {
                let floor = floor.clamp(0.0, 1.0);
                floor + (1.0 - floor) * x
            }
        };
        w.max(1e-6)
    }

    /// The full weight vector for a context of `k` sources.
    pub fn weights(&self, k: usize) -> Vec<f64> {
        (0..k).map(|p| self.weight(p, k)).collect()
    }

    /// The expected attention *distribution* over `k` positions (weights normalised to
    /// sum to 1), which is what the optimal-permutation objective consumes.
    pub fn distribution(&self, k: usize) -> Vec<f64> {
        let weights = self.weights(k);
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![0.0; k];
        }
        weights.into_iter().map(|w| w / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat() {
        let p = PositionBiasProfile::Uniform;
        for k in 1..10 {
            for pos in 0..k {
                assert_eq!(p.weight(pos, k), 1.0);
            }
        }
    }

    #[test]
    fn lost_in_the_middle_sinks_the_middle() {
        let p = PositionBiasProfile::LostInTheMiddle { depth: 0.8 };
        let k = 9;
        let first = p.weight(0, k);
        let middle = p.weight(4, k);
        let last = p.weight(8, k);
        assert_eq!(first, 1.0);
        assert_eq!(last, 1.0);
        assert!(middle < 0.5);
        // Symmetry around the centre.
        for pos in 0..k {
            let mirrored = k - 1 - pos;
            assert!((p.weight(pos, k) - p.weight(mirrored, k)).abs() < 1e-9);
        }
    }

    #[test]
    fn depth_zero_is_uniform() {
        let p = PositionBiasProfile::LostInTheMiddle { depth: 0.0 };
        for pos in 0..7 {
            assert!((p.weight(pos, 7) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn v_shape_has_floor_at_the_middle() {
        let p = PositionBiasProfile::VShaped { floor: 0.25 };
        let k = 11;
        assert_eq!(p.weight(0, k), 1.0);
        assert_eq!(p.weight(k - 1, k), 1.0);
        assert!((p.weight(5, k) - 0.25).abs() < 1e-9);
        // Monotone decrease to the middle and increase after.
        for pos in 0..5 {
            assert!(p.weight(pos, k) >= p.weight(pos + 1, k));
        }
        for pos in 5..k - 1 {
            assert!(p.weight(pos, k) <= p.weight(pos + 1, k));
        }
    }

    #[test]
    fn primacy_and_recency_are_mirror_images() {
        let primacy = PositionBiasProfile::Primacy { floor: 0.2 };
        let recency = PositionBiasProfile::Recency { floor: 0.2 };
        let k = 6;
        for pos in 0..k {
            let mirrored = k - 1 - pos;
            assert!((primacy.weight(pos, k) - recency.weight(mirrored, k)).abs() < 1e-9);
        }
        assert!(primacy.weight(0, k) > primacy.weight(k - 1, k));
        assert!(recency.weight(k - 1, k) > recency.weight(0, k));
    }

    #[test]
    fn single_source_and_empty_context_weigh_one() {
        let p = PositionBiasProfile::default();
        assert_eq!(p.weight(0, 1), 1.0);
        assert_eq!(p.weight(0, 0), 1.0);
        assert_eq!(p.weight(5, 3), 1.0);
    }

    #[test]
    fn weights_are_positive_and_bounded() {
        let profiles = [
            PositionBiasProfile::Uniform,
            PositionBiasProfile::LostInTheMiddle { depth: 1.0 },
            PositionBiasProfile::VShaped { floor: 0.0 },
            PositionBiasProfile::Primacy { floor: 0.0 },
            PositionBiasProfile::Recency { floor: 0.0 },
        ];
        for p in profiles {
            for k in 1..12 {
                for pos in 0..k {
                    let w = p.weight(pos, k);
                    assert!(w > 0.0 && w <= 1.0, "{p:?} pos {pos} k {k} -> {w}");
                }
            }
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        let p = PositionBiasProfile::default();
        for k in 1..10 {
            let d = p.distribution(k);
            assert_eq!(d.len(), k);
            let total: f64 = d.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_range_depth_is_clamped() {
        let p = PositionBiasProfile::LostInTheMiddle { depth: 5.0 };
        for pos in 0..9 {
            assert!(p.weight(pos, 9) > 0.0);
        }
    }
}
