//! Deterministic token and positional embeddings.
//!
//! The simulated transformer needs embeddings with two properties:
//!
//! 1. identical surface tokens map to identical vectors, so question/source lexical
//!    overlap produces genuinely higher dot-product attention (this is what makes the
//!    attention read-out content-sensitive rather than arbitrary), and
//! 2. the whole thing is deterministic given the model seed, so explanations and tests
//!    are reproducible.
//!
//! Token vectors are generated lazily from a per-token SplitMix64 stream seeded by
//! `(model seed, token id)`, and positions use the standard sinusoidal encoding.

use serde::{Deserialize, Serialize};

/// Configuration of the embedding layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Embedding (and model) dimensionality.
    pub dim: usize,
    /// Scale of the sinusoidal positional component added to token vectors.
    pub positional_scale: f64,
    /// Seed mixed into every token vector.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            positional_scale: 0.15,
            seed: 0x5eed_1234,
        }
    }
}

/// Deterministic embedding generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedder {
    config: EmbeddingConfig,
}

/// SplitMix64 step — a tiny, high-quality deterministic mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a u64 to a float uniformly distributed in `[-1, 1)`.
fn unit_float(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl Embedder {
    /// Create an embedder with the given configuration.
    pub fn new(config: EmbeddingConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.config
    }

    /// The (unit-normalised) content vector of a token id.
    pub fn token_vector(&self, token_id: u32) -> Vec<f64> {
        let mut state = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(token_id).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let mut v: Vec<f64> = (0..self.config.dim)
            .map(|_| unit_float(splitmix64(&mut state)))
            .collect();
        normalize(&mut v);
        v
    }

    /// The sinusoidal positional encoding for a position.
    pub fn positional_vector(&self, position: usize) -> Vec<f64> {
        let dim = self.config.dim;
        let mut v = vec![0.0; dim];
        for (i, slot) in v.iter_mut().enumerate() {
            let exponent = (2 * (i / 2)) as f64 / dim as f64;
            let rate = 10_000f64.powf(exponent);
            let angle = position as f64 / rate;
            *slot = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
        v
    }

    /// The full input embedding of a token at a position: content + scaled position.
    pub fn embed(&self, token_id: u32, position: usize) -> Vec<f64> {
        let mut v = self.token_vector(token_id);
        let pos = self.positional_vector(position);
        for (a, b) in v.iter_mut().zip(pos.iter()) {
            *a += self.config.positional_scale * b;
        }
        v
    }

    /// Embed an entire token-id sequence.
    pub fn embed_sequence(&self, token_ids: &[u32]) -> Vec<Vec<f64>> {
        token_ids
            .iter()
            .enumerate()
            .map(|(pos, &id)| self.embed(id, pos))
            .collect()
    }
}

/// Normalise a vector to unit L2 norm.
///
/// The division is guarded by an epsilon: vectors whose norm is `<= 1e-12`
/// — the zero vector, and vectors of subnormal components whose squared
/// norm underflows — are returned unchanged rather than divided by
/// (near-)zero. The guard is what keeps `0/0 = NaN` out of the residual
/// path (see [`residual_normalize`](crate::kernels::residual_normalize));
/// `1e-12` is far below any norm a real embedding row can reach (unit-norm
/// embeddings halved once per layer bottom out around `0.5`), so the guard
/// can only fire on degenerate input, never on the hot path.
pub fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_vectors_are_deterministic_and_unit_norm() {
        let e = Embedder::new(EmbeddingConfig::default());
        let a = e.token_vector(42);
        let b = e.token_vector(42);
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_tokens_get_different_vectors() {
        let e = Embedder::new(EmbeddingConfig::default());
        assert_ne!(e.token_vector(1), e.token_vector(2));
    }

    #[test]
    fn different_seeds_change_vectors() {
        let a = Embedder::new(EmbeddingConfig {
            seed: 1,
            ..EmbeddingConfig::default()
        });
        let b = Embedder::new(EmbeddingConfig {
            seed: 2,
            ..EmbeddingConfig::default()
        });
        assert_ne!(a.token_vector(5), b.token_vector(5));
    }

    #[test]
    fn identical_token_similarity_dominates() {
        // The self-similarity of a token vector must exceed its similarity to other
        // tokens by a wide margin — this is what makes attention content-sensitive.
        let e = Embedder::new(EmbeddingConfig::default());
        let target = e.token_vector(100);
        let self_sim = dot(&target, &e.token_vector(100));
        for other in 101..130u32 {
            let sim = dot(&target, &e.token_vector(other));
            assert!(
                self_sim > sim + 0.3,
                "token {other}: self {self_sim} vs {sim}"
            );
        }
    }

    #[test]
    fn positional_encoding_varies_with_position() {
        let e = Embedder::new(EmbeddingConfig::default());
        assert_ne!(e.positional_vector(0), e.positional_vector(1));
        assert_ne!(e.positional_vector(1), e.positional_vector(50));
        assert_eq!(e.positional_vector(3), e.positional_vector(3));
    }

    #[test]
    fn embed_adds_positional_component() {
        let e = Embedder::new(EmbeddingConfig::default());
        let plain = e.token_vector(7);
        let embedded = e.embed(7, 5);
        assert_ne!(plain, embedded);
        // With zero positional scale they coincide.
        let e0 = Embedder::new(EmbeddingConfig {
            positional_scale: 0.0,
            ..EmbeddingConfig::default()
        });
        assert_eq!(e0.embed(7, 5), e0.token_vector(7));
    }

    #[test]
    fn embed_sequence_length() {
        let e = Embedder::new(EmbeddingConfig::default());
        let seq = e.embed_sequence(&[1, 2, 3, 4]);
        assert_eq!(seq.len(), 4);
        assert!(seq.iter().all(|v| v.len() == 32));
    }

    #[test]
    fn normalize_handles_zero_vector() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "embedding dimension must be positive")]
    fn zero_dim_rejected() {
        Embedder::new(EmbeddingConfig {
            dim: 0,
            ..EmbeddingConfig::default()
        });
    }
}
