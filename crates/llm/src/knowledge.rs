//! Prior ("pre-trained") knowledge of the simulated model.
//!
//! Open-book question answering combines retrieved context with the model's own trained
//! knowledge. RAGE's bottom-up counterfactuals hinge on the *empty-context* answer — the
//! answer the LLM gives from its prior knowledge alone — and its hallucination scenarios
//! hinge on that prior sometimes being stale or wrong. [`PriorKnowledge`] models this as
//! a weighted list of keyword-triggered facts.

use serde::{Deserialize, Serialize};

use crate::tokenizer::SimTokenizer;

/// One remembered fact: an answer triggered by question keywords.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorFact {
    /// Lowercased keywords; the fact fires when enough of them occur in the question.
    pub keywords: Vec<String>,
    /// The answer the model "remembers".
    pub answer: String,
    /// Strength of the memory in `[0, 1]`; competes against context evidence.
    pub weight: f64,
}

impl PriorFact {
    /// Create a fact from keywords, an answer and a weight.
    pub fn new(keywords: &[&str], answer: impl Into<String>, weight: f64) -> Self {
        Self {
            keywords: keywords.iter().map(|k| k.to_lowercase()).collect(),
            answer: answer.into(),
            weight,
        }
    }
}

/// A match of a prior fact against a question.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorMatch {
    /// The remembered answer.
    pub answer: String,
    /// The fact's weight scaled by how completely its keywords matched.
    pub score: f64,
}

/// The model's store of prior facts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriorKnowledge {
    facts: Vec<PriorFact>,
}

impl PriorKnowledge {
    /// An empty prior (the model knows nothing beyond its context).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from a list of facts.
    pub fn from_facts(facts: Vec<PriorFact>) -> Self {
        Self { facts }
    }

    /// Add a fact (builder style).
    pub fn with_fact(mut self, fact: PriorFact) -> Self {
        self.facts.push(fact);
        self
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The best-matching fact for a question, if any fact matches at least half of its
    /// keywords.
    pub fn recall(&self, question: &str) -> Option<PriorMatch> {
        let tokenizer = SimTokenizer::new();
        let question_words: Vec<String> = tokenizer.words(question);
        let mut best: Option<PriorMatch> = None;
        for fact in &self.facts {
            if fact.keywords.is_empty() {
                continue;
            }
            let matched = fact
                .keywords
                .iter()
                .filter(|k| question_words.iter().any(|w| w == *k))
                .count();
            let coverage = matched as f64 / fact.keywords.len() as f64;
            if coverage < 0.5 {
                continue;
            }
            let score = fact.weight * coverage;
            if best.as_ref().is_none_or(|b| score > b.score) {
                best = Some(PriorMatch {
                    answer: fact.answer.clone(),
                    score,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> PriorKnowledge {
        PriorKnowledge::empty()
            .with_fact(PriorFact::new(
                &["best", "tennis", "player"],
                "Novak Djokovic",
                0.3,
            ))
            .with_fact(PriorFact::new(
                &["us", "open", "women", "champion"],
                "Serena Williams",
                0.25,
            ))
            .with_fact(PriorFact::new(&["capital", "france"], "Paris", 0.9))
    }

    #[test]
    fn recalls_matching_fact() {
        let p = prior();
        let m = p
            .recall("Who is the best tennis player of all time?")
            .unwrap();
        assert_eq!(m.answer, "Novak Djokovic");
        assert!((m.score - 0.3).abs() < 1e-9);
    }

    #[test]
    fn partial_matches_scale_the_score() {
        let p = prior();
        // Only 3 of the 4 keywords match.
        let m = p.recall("who won the us open women's final").unwrap();
        assert_eq!(m.answer, "Serena Williams");
        assert!(m.score < 0.25);
        assert!(m.score >= 0.25 * 0.5);
    }

    #[test]
    fn below_half_coverage_does_not_fire() {
        let p = prior();
        assert!(p.recall("tell me about football transfers").is_none());
        // One of three keywords is not enough.
        assert!(p.recall("what is the best pizza topping").is_none());
    }

    #[test]
    fn picks_highest_scoring_fact() {
        let p = PriorKnowledge::from_facts(vec![
            PriorFact::new(&["winner"], "Weak Answer", 0.1),
            PriorFact::new(&["winner", "race"], "Strong Answer", 0.8),
        ]);
        let m = p.recall("who is the winner of the race").unwrap();
        assert_eq!(m.answer, "Strong Answer");
    }

    #[test]
    fn empty_prior_recalls_nothing() {
        assert!(PriorKnowledge::empty()
            .recall("any question at all")
            .is_none());
        assert!(PriorKnowledge::empty().is_empty());
        assert_eq!(prior().len(), 3);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let p =
            PriorKnowledge::empty().with_fact(PriorFact::new(&["FRANCE", "Capital"], "Paris", 1.0));
        assert_eq!(
            p.recall("What is the CAPITAL of France?").unwrap().answer,
            "Paris"
        );
    }
}
