//! Word-level tokenisation with a hashing vocabulary.
//!
//! The simulated model does not need a learned BPE vocabulary; it needs (a) a stable
//! mapping from surface tokens to ids so identical words share embeddings, and (b) exact
//! knowledge of which token positions belong to which context source so attention mass
//! can be attributed per source. [`SimTokenizer`] provides both.

use serde::{Deserialize, Serialize};

use crate::{LlmInput, SourceText};

/// Hash space size for token ids (also the embedding table size).
pub const VOCAB_SIZE: usize = 32_768;

/// Reserved id for the source delimiter token inserted between context sources.
pub const DELIMITER_TOKEN_ID: u32 = 0;
/// Reserved id for the question/introduction marker token.
pub const QUESTION_TOKEN_ID: u32 = 1;
/// First id available to hashed vocabulary tokens.
const FIRST_HASH_ID: u32 = 8;

/// A single prompt token: its vocabulary id and the segment it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptToken {
    /// Vocabulary id (stable hash of the lowercased surface form).
    pub id: u32,
    /// Which part of the prompt this token belongs to.
    pub segment: Segment,
}

/// The prompt segment a token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Question tokens (including the instruction preamble marker).
    Question,
    /// A delimiter between sources.
    Delimiter,
    /// Token of the source with the given index in the prompt's source order.
    Source(u16),
}

/// The tokenised prompt: the flat token sequence plus per-source span bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizedPrompt {
    /// Flat token sequence (question first, then delimited sources in order).
    pub tokens: Vec<PromptToken>,
    /// Half-open token ranges `[start, end)` of each source, in prompt source order.
    pub source_spans: Vec<(usize, usize)>,
    /// Half-open token range of the question segment.
    pub question_span: (usize, usize),
}

impl TokenizedPrompt {
    /// Total number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the prompt tokenised to nothing (only possible for an empty question and
    /// no sources).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The source index (prompt order) a token position belongs to, if any.
    pub fn source_of_position(&self, pos: usize) -> Option<usize> {
        match self.tokens.get(pos)?.segment {
            Segment::Source(idx) => Some(idx as usize),
            _ => None,
        }
    }
}

/// Word-level tokenizer with deterministic hashed ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimTokenizer;

impl SimTokenizer {
    /// Create the tokenizer.
    pub fn new() -> Self {
        Self
    }

    /// Split text into lowercase word tokens (alphanumerics and apostrophes).
    pub fn words(&self, text: &str) -> Vec<String> {
        let mut words = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                current.extend(ch.to_lowercase());
            } else if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
        words
    }

    /// Deterministic vocabulary id of a word (FNV-1a hash folded into the vocab space).
    pub fn token_id(&self, word: &str) -> u32 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in word.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        FIRST_HASH_ID + (hash % (VOCAB_SIZE as u64 - u64::from(FIRST_HASH_ID))) as u32
    }

    /// Tokenise a full structured prompt, recording source spans.
    pub fn tokenize_prompt(&self, input: &LlmInput) -> TokenizedPrompt {
        let mut tokens = Vec::new();

        // Question segment, prefixed by a question marker token.
        tokens.push(PromptToken {
            id: QUESTION_TOKEN_ID,
            segment: Segment::Question,
        });
        for word in self.words(&input.question) {
            tokens.push(PromptToken {
                id: self.token_id(&word),
                segment: Segment::Question,
            });
        }
        let question_span = (0, tokens.len());

        // Delimited sources.
        let mut source_spans = Vec::with_capacity(input.sources.len());
        for (idx, source) in input.sources.iter().enumerate() {
            tokens.push(PromptToken {
                id: DELIMITER_TOKEN_ID,
                segment: Segment::Delimiter,
            });
            let start = tokens.len();
            for word in self.words(&source.text) {
                tokens.push(PromptToken {
                    id: self.token_id(&word),
                    segment: Segment::Source(idx as u16),
                });
            }
            source_spans.push((start, tokens.len()));
        }

        TokenizedPrompt {
            tokens,
            source_spans,
            question_span,
        }
    }

    /// Tokenise a list of raw source texts (convenience for tests and benches).
    pub fn tokenize_sources(&self, question: &str, sources: &[SourceText]) -> TokenizedPrompt {
        self.tokenize_prompt(&LlmInput::new(question, sources.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> LlmInput {
        LlmInput::new(
            "Who is the best tennis player?",
            vec![
                SourceText::new("d1", "Federer leads match wins."),
                SourceText::new("d2", "Djokovic has the most slams."),
            ],
        )
    }

    #[test]
    fn words_are_lowercased_and_split() {
        let tok = SimTokenizer::new();
        assert_eq!(
            tok.words("Coco Gauff won, in 2023!"),
            vec!["coco", "gauff", "won", "in", "2023"]
        );
    }

    #[test]
    fn token_ids_are_stable_and_distinct() {
        let tok = SimTokenizer::new();
        assert_eq!(tok.token_id("federer"), tok.token_id("federer"));
        assert_ne!(tok.token_id("federer"), tok.token_id("djokovic"));
        assert!(tok.token_id("anything") >= 8);
        assert!((tok.token_id("anything") as usize) < VOCAB_SIZE);
    }

    #[test]
    fn prompt_spans_cover_sources() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&input());
        assert_eq!(prompt.source_spans.len(), 2);
        // Every token inside a span belongs to that source.
        for (idx, &(start, end)) in prompt.source_spans.iter().enumerate() {
            assert!(start < end);
            for pos in start..end {
                assert_eq!(prompt.source_of_position(pos), Some(idx));
            }
        }
        // Question span starts at zero and has the marker plus six words.
        assert_eq!(prompt.question_span.0, 0);
        assert_eq!(prompt.question_span.1, 7);
    }

    #[test]
    fn delimiters_are_not_attributed_to_sources() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&input());
        let delimiter_positions: Vec<usize> = prompt
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.segment == Segment::Delimiter)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(delimiter_positions.len(), 2);
        for pos in delimiter_positions {
            assert_eq!(prompt.source_of_position(pos), None);
        }
    }

    #[test]
    fn empty_context_prompt() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::without_context("Who won?"));
        assert!(prompt.source_spans.is_empty());
        assert!(!prompt.is_empty());
        assert_eq!(prompt.len(), 3); // marker + "who" + "won"
    }

    #[test]
    fn identical_words_share_ids_across_segments() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(
            "federer wins",
            vec![SourceText::new("d", "federer wins again")],
        ));
        let question_ids: Vec<u32> = prompt.tokens
            [prompt.question_span.0 + 1..prompt.question_span.1]
            .iter()
            .map(|t| t.id)
            .collect();
        let (s, e) = prompt.source_spans[0];
        let source_ids: Vec<u32> = prompt.tokens[s..e].iter().map(|t| t.id).collect();
        assert_eq!(question_ids[0], source_ids[0]);
        assert_eq!(question_ids[1], source_ids[1]);
    }

    #[test]
    fn tokenize_sources_convenience() {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_sources("q", &[SourceText::new("a", "alpha beta")]);
        assert_eq!(prompt.source_spans.len(), 1);
    }
}
