//! The simulated grounded-QA language model.
//!
//! [`SimLlm`] ties the substrate together: it tokenises the structured prompt, runs the
//! attention stack, aggregates per-source attention, applies the positional prior,
//! extracts candidate answers from each source and aggregates the evidence into a final
//! answer. Its externally visible behaviour is calibrated to the phenomena the RAGE
//! paper studies (see the crate-level documentation); everything is deterministic for a
//! fixed configuration.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::attention::{aggregate_question_to_source_attention, aggregate_source_attention};
use crate::cache::PrefixCache;
use crate::extraction::{classify_question, extract_candidates, QuestionKind};
use crate::kernels::KernelBackend;
use crate::knowledge::PriorKnowledge;
use crate::position_bias::PositionBiasProfile;
use crate::tokenizer::SimTokenizer;
use crate::transformer::{Transformer, TransformerConfig};
use crate::{Generation, LanguageModel, LlmInput};

/// How evidence for the same answer from multiple sources combines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvidenceAggregation {
    /// The answer is dominated by its single strongest piece of evidence (default; this
    /// is what makes the model's answer follow the most-attended source, as in the
    /// paper's Big Three narrative).
    Max,
    /// Evidence for the same answer accumulates across sources (majority-style).
    Sum,
}

/// Configuration of the simulated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimLlmConfig {
    /// Attention-stack configuration.
    pub transformer: TransformerConfig,
    /// Context-position prior ("lost in the middle" by default).
    pub position_bias: PositionBiasProfile,
    /// Additional linear primacy tilt in `[0, 1)`: position `x ∈ [0, 1]` is scaled by
    /// `1 − tilt·x`, reflecting the observation that primacy slightly outweighs recency.
    pub primacy_tilt: f64,
    /// Prior (pre-trained) knowledge store.
    pub prior: PriorKnowledge,
    /// Evidence-aggregation policy for superlative/factoid questions.
    pub aggregation: EvidenceAggregation,
    /// For "most recent" questions: a source participates only if its effective
    /// attention is at least this fraction of the maximum (models sources being
    /// overlooked when buried in the middle of the context).
    pub recent_threshold: f64,
    /// For counting questions: minimum fraction of the maximum effective attention a
    /// source needs to be counted (low, so counting is robust to ordering).
    pub count_threshold: f64,
    /// Multiplier applied to prior-knowledge scores when they compete with context.
    pub prior_strength: f64,
    /// Human-readable model name used in reports.
    pub name: String,
}

impl Default for SimLlmConfig {
    fn default() -> Self {
        Self {
            transformer: TransformerConfig::default(),
            position_bias: PositionBiasProfile::default(),
            primacy_tilt: 0.15,
            prior: PriorKnowledge::empty(),
            aggregation: EvidenceAggregation::Max,
            recent_threshold: 0.55,
            count_threshold: 0.05,
            prior_strength: 1.0,
            name: "sim-llama-chat".to_string(),
        }
    }
}

impl SimLlmConfig {
    /// A configuration with prior knowledge attached (builder style).
    pub fn with_prior(mut self, prior: PriorKnowledge) -> Self {
        self.prior = prior;
        self
    }

    /// A configuration with a specific position-bias profile (builder style).
    pub fn with_position_bias(mut self, profile: PositionBiasProfile) -> Self {
        self.position_bias = profile;
        self
    }
}

/// The simulated grounded-QA model.
#[derive(Debug, Clone)]
pub struct SimLlm {
    config: SimLlmConfig,
    tokenizer: SimTokenizer,
    transformer: Transformer,
    prefix_cache: Option<Arc<PrefixCache>>,
    use_reference_forward: bool,
}

impl SimLlm {
    /// Build the model from a configuration.
    pub fn new(config: SimLlmConfig) -> Self {
        let transformer = Transformer::new(config.transformer);
        Self {
            config,
            tokenizer: SimTokenizer::new(),
            transformer,
            prefix_cache: None,
            use_reference_forward: false,
        }
    }

    /// Attach a [`PrefixCache`] so forward passes reuse per-`(token, position)`
    /// embedding and layer-0 attention K/Q state across perturbed prompts.
    ///
    /// Caching never changes outputs (see the `cache` module invariants); it
    /// only trades memory for recomputation. The cache entries are functions
    /// of this model's seed, dimensions **and kernel backend** (the SIMD
    /// backend stores tree-reduced projections that differ by ULPs from the
    /// scalar ones), so **never** share one cache between models built from
    /// different [`TransformerConfig`]s or running different
    /// [`KernelBackend`]s. Cloning the model shares the cache handle, which
    /// is the intended way to hand the same model to multiple worker threads.
    pub fn with_prefix_cache(mut self, cache: Arc<PrefixCache>) -> Self {
        self.prefix_cache = Some(cache);
        self
    }

    /// Select the kernel backend the transformer's fused forward pass runs
    /// on (builder style). Defaults to [`KernelBackend::default`] — scalar
    /// unless the crate is built with the `simd` feature. See the
    /// [`kernels`](crate::kernels) module docs for the divergence contract,
    /// and [`SimLlm::with_prefix_cache`] for the cache-sharing rule.
    pub fn with_kernel_backend(mut self, backend: KernelBackend) -> Self {
        self.transformer = self.transformer.with_backend(backend);
        self
    }

    /// The kernel backend in use.
    pub fn kernel_backend(&self) -> KernelBackend {
        self.transformer.backend()
    }

    /// The attached prefix cache, if any.
    pub fn prefix_cache(&self) -> Option<&Arc<PrefixCache>> {
        self.prefix_cache.as_ref()
    }

    /// Hit/miss/eviction counters of the attached prefix cache, if any.
    ///
    /// Surfaced so harnesses and benches can report cache effectiveness
    /// alongside timings without reaching into the cache handle themselves.
    pub fn prefix_cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.prefix_cache.as_ref().map(|cache| cache.stats())
    }

    /// Route forward passes through the straight-line
    /// [`Transformer::forward_reference`] oracle instead of the fused
    /// kernels.
    ///
    /// The two paths are bit-identical by contract (see the
    /// [`kernels`](crate::kernels) module docs), so this switch can never
    /// change behaviour — it exists so the differential test suite can run
    /// whole pipelines and evaluators against the reference implementation
    /// and assert full-report equality. Production code has no reason to
    /// turn it on: the reference path allocates per query position and is
    /// several times slower.
    pub fn with_reference_forward(mut self) -> Self {
        self.use_reference_forward = true;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimLlmConfig {
        &self.config
    }

    /// Effective per-source attention: content attention (from the transformer) scaled
    /// by the positional prior and the primacy tilt, normalised to sum to one.
    fn effective_attention(&self, input: &LlmInput) -> (Vec<f64>, usize) {
        let prompt = self.tokenizer.tokenize_prompt(input);
        let k = input.sources.len();
        if k == 0 {
            return (Vec::new(), prompt.len());
        }
        let record = if self.use_reference_forward {
            self.transformer
                .forward_reference(&prompt, self.prefix_cache.as_deref())
        } else {
            self.transformer
                .forward_cached(&prompt, self.prefix_cache.as_deref())
        };
        // Aggregation must match the mask. The prompt layout is question
        // first, sources after: under causal masking a question row can
        // never attend to a source token (sources are strictly in its
        // future), so the question-restricted read-out would be identically
        // zero. Causal models therefore aggregate over the whole prompt —
        // source rows, computed after the sources appear, carry the signal.
        let content = if self.config.transformer.causal {
            aggregate_source_attention(&record, &prompt).normalised()
        } else {
            aggregate_question_to_source_attention(&record, &prompt).normalised()
        };
        // The record is fully aggregated; hand its matrices back so the next
        // forward reuses their allocations instead of faulting fresh pages.
        self.transformer.recycle(record);

        let mut effective: Vec<f64> = (0..k)
            .map(|i| {
                let x = if k <= 1 {
                    0.0
                } else {
                    i as f64 / (k - 1) as f64
                };
                let tilt = 1.0 - self.config.primacy_tilt.clamp(0.0, 0.99) * x;
                content[i] * self.config.position_bias.weight(i, k) * tilt
            })
            .collect();
        let total: f64 = effective.iter().sum();
        if total > 0.0 {
            for value in effective.iter_mut() {
                *value /= total;
            }
        }
        (effective, prompt.len())
    }

    /// Answer a counting question.
    fn answer_count(
        &self,
        input: &LlmInput,
        effective: &[f64],
        entity: &Option<String>,
        year_range: &Option<(i32, i32)>,
        kind: &QuestionKind,
    ) -> String {
        if input.sources.is_empty() {
            if let Some(prior) = self.config.prior.recall(&input.question) {
                return prior.answer;
            }
            return "0".to_string();
        }
        let max_eff = effective.iter().cloned().fold(0.0_f64, f64::max);
        let threshold = self.config.count_threshold * max_eff;
        let mut years: Vec<i32> = Vec::new();
        let mut yearless_hits = 0usize;
        for (i, source) in input.sources.iter().enumerate() {
            if effective[i] < threshold {
                continue;
            }
            let candidates = extract_candidates(kind, &input.question, &source.text);
            for candidate in candidates {
                let entity_matches = match entity {
                    Some(target) => {
                        let cand = candidate.answer.to_lowercase();
                        cand.contains(target.as_str()) || target.contains(cand.as_str())
                    }
                    None => true,
                };
                if !entity_matches {
                    continue;
                }
                match candidate.year {
                    Some(year) => {
                        let in_range = year_range.is_none_or(|(lo, hi)| year >= lo && year <= hi);
                        if in_range && !years.contains(&year) {
                            years.push(year);
                        }
                    }
                    None => yearless_hits += 1,
                }
            }
        }
        let count = if years.is_empty() {
            // Without years, fall back to counting supporting sources.
            yearless_hits
        } else {
            years.len()
        };
        count.to_string()
    }

    /// Answer a "most recent" question.
    fn answer_most_recent(
        &self,
        input: &LlmInput,
        effective: &[f64],
        kind: &QuestionKind,
    ) -> Option<String> {
        let max_eff = effective.iter().cloned().fold(0.0_f64, f64::max);
        let threshold = self.config.recent_threshold * max_eff;
        let mut best: Option<(i32, f64, String)> = None;
        for (i, source) in input.sources.iter().enumerate() {
            if effective[i] < threshold {
                continue;
            }
            for candidate in extract_candidates(kind, &input.question, &source.text) {
                let Some(year) = candidate.year else { continue };
                let strength = effective[i] * candidate.confidence;
                let better = match &best {
                    None => true,
                    Some((by, bs, _)) => year > *by || (year == *by && strength > *bs),
                };
                if better {
                    best = Some((year, strength, candidate.answer.clone()));
                }
            }
        }
        best.map(|(_, _, answer)| answer)
    }

    /// Answer a superlative or factoid question by scored evidence aggregation.
    fn answer_scored(
        &self,
        input: &LlmInput,
        effective: &[f64],
        kind: &QuestionKind,
    ) -> Option<String> {
        // answer key (lowercased) -> (score, surface form)
        let mut scores: BTreeMap<String, (f64, String)> = BTreeMap::new();
        for (i, source) in input.sources.iter().enumerate() {
            for candidate in extract_candidates(kind, &input.question, &source.text) {
                let key = candidate.answer.to_lowercase();
                let contribution = effective[i] * candidate.confidence;
                let entry = scores.entry(key).or_insert((0.0, candidate.answer.clone()));
                match self.config.aggregation {
                    EvidenceAggregation::Max => {
                        if contribution > entry.0 {
                            entry.0 = contribution;
                        }
                    }
                    EvidenceAggregation::Sum => entry.0 += contribution,
                }
            }
        }
        if let Some(prior) = self.config.prior.recall(&input.question) {
            let key = prior.answer.to_lowercase();
            let contribution = prior.score * self.config.prior_strength;
            let entry = scores.entry(key).or_insert((0.0, prior.answer.clone()));
            match self.config.aggregation {
                EvidenceAggregation::Max => {
                    if contribution > entry.0 {
                        entry.0 = contribution;
                    }
                }
                EvidenceAggregation::Sum => entry.0 += contribution,
            }
        }
        // BTreeMap iteration is key-ascending; keeping only strictly-greater scores makes
        // ties resolve to the lexicographically smallest answer, deterministically.
        let mut best: Option<(f64, String)> = None;
        for (_, (score, surface)) in scores {
            if best.as_ref().is_none_or(|(bs, _)| score > *bs) {
                best = Some((score, surface));
            }
        }
        best.map(|(_, surface)| surface)
    }

    /// The answer the model gives with *no* context at all (prior knowledge only).
    fn empty_context_answer(&self, question: &str, kind: &QuestionKind) -> String {
        if let Some(prior) = self.config.prior.recall(question) {
            return prior.answer;
        }
        match kind {
            QuestionKind::Count { .. } => "0".to_string(),
            _ => "I do not know".to_string(),
        }
    }
}

impl LanguageModel for SimLlm {
    fn generate(&self, input: &LlmInput) -> Generation {
        let kind = classify_question(&input.question);
        let (effective, prompt_tokens) = self.effective_attention(input);

        let answer = if input.sources.is_empty() {
            self.empty_context_answer(&input.question, &kind)
        } else {
            match &kind {
                QuestionKind::Count { entity, year_range } => {
                    self.answer_count(input, &effective, entity, year_range, &kind)
                }
                QuestionKind::MostRecent => self
                    .answer_most_recent(input, &effective, &kind)
                    .or_else(|| self.answer_scored(input, &effective, &kind))
                    .unwrap_or_else(|| self.empty_context_answer(&input.question, &kind)),
                QuestionKind::Superlative | QuestionKind::Factoid => self
                    .answer_scored(input, &effective, &kind)
                    .unwrap_or_else(|| self.empty_context_answer(&input.question, &kind)),
            }
        };

        let text = if input.sources.is_empty() {
            format!("From my training knowledge, the answer is {answer}.")
        } else {
            format!("Based on the provided sources, the answer is {answer}.")
        };

        Generation {
            answer,
            text,
            source_attention: effective,
            prompt_tokens,
        }
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::PriorFact;
    use crate::SourceText;

    fn big_three_sources() -> Vec<SourceText> {
        vec![
            SourceText::new(
                "wins",
                "Roger Federer ranks first in total match wins with 369 victories, ahead of Novak Djokovic and Rafael Nadal.",
            ),
            SourceText::new(
                "slams",
                "Novak Djokovic holds the most grand slam titles among the big three with 24.",
            ),
            SourceText::new(
                "weeks",
                "Novak Djokovic leads the ranking for most weeks ranked number one in tennis.",
            ),
            SourceText::new(
                "clay",
                "Rafael Nadal is the greatest clay court player with fourteen French Open titles.",
            ),
            SourceText::new(
                "finals",
                "Novak Djokovic won the most tour finals titles among the big three.",
            ),
        ]
    }

    fn model_with_prior() -> SimLlm {
        let prior = PriorKnowledge::empty()
            .with_fact(PriorFact::new(
                &["best", "tennis", "player"],
                "Novak Djokovic",
                0.2,
            ))
            .with_fact(PriorFact::new(
                &["recent", "us", "open", "champion"],
                "Serena Williams",
                0.2,
            ));
        SimLlm::new(SimLlmConfig::default().with_prior(prior))
    }

    const BIG_THREE_QUESTION: &str =
        "Who is the best tennis player among Novak Djokovic, Roger Federer and Rafael Nadal?";

    #[test]
    fn full_context_answer_follows_the_first_source() {
        let llm = model_with_prior();
        let generation = llm.generate(&LlmInput::new(BIG_THREE_QUESTION, big_three_sources()));
        assert_eq!(generation.answer, "Roger Federer");
        assert_eq!(generation.source_attention.len(), 5);
    }

    #[test]
    fn moving_the_key_source_to_the_middle_changes_the_answer() {
        let llm = model_with_prior();
        let mut sources = big_three_sources();
        // Move the match-wins document from position 0 to position 2 (the middle).
        let wins = sources.remove(0);
        sources.insert(2, wins);
        let generation = llm.generate(&LlmInput::new(BIG_THREE_QUESTION, sources));
        assert_eq!(generation.answer, "Novak Djokovic");
    }

    #[test]
    fn removing_the_key_source_changes_the_answer() {
        let llm = model_with_prior();
        let sources: Vec<SourceText> = big_three_sources().into_iter().skip(1).collect();
        let generation = llm.generate(&LlmInput::new(BIG_THREE_QUESTION, sources));
        assert_ne!(generation.answer, "Roger Federer");
    }

    #[test]
    fn empty_context_uses_prior_knowledge() {
        let llm = model_with_prior();
        let generation = llm.generate(&LlmInput::without_context(BIG_THREE_QUESTION));
        assert_eq!(generation.answer, "Novak Djokovic");
        assert!(generation.text.contains("training knowledge"));
        assert!(generation.source_attention.is_empty());
    }

    #[test]
    fn empty_context_without_prior_is_unknown() {
        let llm = SimLlm::new(SimLlmConfig::default());
        let generation = llm.generate(&LlmInput::without_context("Who won the 1937 chess open?"));
        assert_eq!(generation.answer, "I do not know");
    }

    fn us_open_sources() -> Vec<SourceText> {
        vec![
            SourceText::new(
                "y2019",
                "Bianca Andreescu won the US Open women's singles championship in 2019.",
            ),
            SourceText::new(
                "y2020",
                "Naomi Osaka won the US Open women's singles championship in 2020.",
            ),
            SourceText::new(
                "y2021",
                "Emma Raducanu won the US Open women's singles championship in 2021.",
            ),
            SourceText::new(
                "y2022",
                "Iga Swiatek won the US Open women's singles championship in 2022.",
            ),
            SourceText::new(
                "y2023",
                "Coco Gauff won the US Open women's singles championship in 2023.",
            ),
        ]
    }

    const US_OPEN_QUESTION: &str = "Who is the most recent US Open women's singles champion?";

    #[test]
    fn most_recent_question_prefers_latest_year() {
        let llm = model_with_prior();
        let generation = llm.generate(&LlmInput::new(US_OPEN_QUESTION, us_open_sources()));
        assert_eq!(generation.answer, "Coco Gauff");
    }

    #[test]
    fn burying_the_up_to_date_source_causes_a_stale_answer() {
        let llm = model_with_prior();
        let mut sources = us_open_sources();
        // Move the 2023 document from the last position into the middle.
        let latest = sources.remove(4);
        sources.insert(2, latest);
        let generation = llm.generate(&LlmInput::new(US_OPEN_QUESTION, sources));
        assert_eq!(generation.answer, "Iga Swiatek");
    }

    fn timeline_sources() -> Vec<SourceText> {
        let winners = [
            (2010, "Rafael Nadal"),
            (2011, "Novak Djokovic"),
            (2012, "Novak Djokovic"),
            (2013, "Rafael Nadal"),
            (2014, "Novak Djokovic"),
            (2015, "Novak Djokovic"),
            (2016, "Andy Murray"),
            (2017, "Rafael Nadal"),
            (2018, "Novak Djokovic"),
            (2019, "Rafael Nadal"),
        ];
        winners
            .iter()
            .map(|(year, name)| {
                SourceText::new(
                    format!("y{year}"),
                    format!("{name} was named Tennis Player of the Year in {year}."),
                )
            })
            .collect()
    }

    const TIMELINE_QUESTION: &str =
        "How many times did Novak Djokovic win the Tennis Player of the Year award between 2010 and 2019?";

    #[test]
    fn count_question_counts_supporting_years() {
        let llm = model_with_prior();
        let generation = llm.generate(&LlmInput::new(TIMELINE_QUESTION, timeline_sources()));
        assert_eq!(generation.answer, "5");
    }

    #[test]
    fn count_is_stable_under_reordering() {
        let llm = model_with_prior();
        let mut sources = timeline_sources();
        sources.reverse();
        let generation = llm.generate(&LlmInput::new(TIMELINE_QUESTION, sources));
        assert_eq!(generation.answer, "5");
    }

    #[test]
    fn count_drops_when_supporting_sources_are_removed() {
        let llm = model_with_prior();
        let sources: Vec<SourceText> = timeline_sources()
            .into_iter()
            .filter(|s| s.id != "y2015")
            .collect();
        let generation = llm.generate(&LlmInput::new(TIMELINE_QUESTION, sources));
        assert_eq!(generation.answer, "4");
    }

    #[test]
    fn count_with_empty_context_is_zero_without_prior() {
        let llm = SimLlm::new(SimLlmConfig::default());
        let generation = llm.generate(&LlmInput::without_context(TIMELINE_QUESTION));
        assert_eq!(generation.answer, "0");
    }

    #[test]
    fn source_attention_is_a_distribution() {
        let llm = model_with_prior();
        let generation = llm.generate(&LlmInput::new(BIG_THREE_QUESTION, big_three_sources()));
        let total: f64 = generation.source_attention.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(generation.source_attention.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let llm = model_with_prior();
        let input = LlmInput::new(BIG_THREE_QUESTION, big_three_sources());
        assert_eq!(llm.generate(&input), llm.generate(&input));
    }

    #[test]
    fn sum_aggregation_lets_majorities_win() {
        let prior = PriorKnowledge::empty();
        let mut config = SimLlmConfig::default().with_prior(prior);
        config.aggregation = EvidenceAggregation::Sum;
        config.position_bias = PositionBiasProfile::Uniform;
        config.primacy_tilt = 0.0;
        let llm = SimLlm::new(config);
        let generation = llm.generate(&LlmInput::new(BIG_THREE_QUESTION, big_three_sources()));
        // Three of five sources support Djokovic; with flat positions and summed
        // evidence the majority answer wins.
        assert_eq!(generation.answer, "Novak Djokovic");
    }

    #[test]
    fn model_name_is_reported() {
        let llm = SimLlm::new(SimLlmConfig::default());
        assert_eq!(llm.name(), "sim-llama-chat");
    }
}
