//! The prefix/attention KV cache shared across perturbed-context forwards.
//!
//! RAGE evaluates hundreds of perturbations of *one* (question, context) pair.
//! Every perturbed prompt starts with the same question prefix, and perturbed
//! contexts differ only in which sources survive and where they sit — so the
//! same `(token, position)` pairs recur constantly across forwards. Two layers
//! of per-token state depend **only** on `(token id, position)` and can
//! therefore be reused across prompts with bit-identical results:
//!
//! 1. the input embedding (content vector + scaled sinusoidal position), and
//! 2. the layer-0 query/key projections of every attention head — at layer 0
//!    the hidden state *is* the input embedding, so the projected vector is a
//!    pure function of `(head, token id, position)`.
//!
//! Deeper layers mix information across the whole sequence (the attention in
//! this simulator is bidirectional), so their state legitimately depends on
//! the entire prompt and is never cached — caching it would break the
//! bit-identity invariant below.
//!
//! ## Invariants
//!
//! * **Bit-identity** — a forward pass through a cache-enabled model produces
//!   exactly the same `f64` values as an uncached pass: every cached entry is
//!   a deterministic pure function of its key, computed by the same code path
//!   on first use. Tests assert equality down to `f64::to_bits`.
//! * **Bounded memory** — each internal map holds at most
//!   [`PrefixCache::capacity`] entries; insertion beyond that evicts the
//!   oldest entry (FIFO). Eviction can only cost recomputation, never change
//!   results.
//! * **Thread safety** — all state sits behind a [`Mutex`], so one cache can
//!   be shared by the worker threads of a parallel evaluator. Lock hold times
//!   are O(1) lookups/inserts; the heavy math happens outside the lock.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters of a cache.
///
/// Also used by `rage-core`'s evaluator memo so the whole stack reports cache
/// effectiveness in one shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) the value.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A bounded FIFO map: `HashMap` for lookup plus an insertion-order queue for
/// eviction. FIFO (rather than LRU) keeps inserts O(1) without bookkeeping on
/// hits; for RAGE's workload the hot keys are the question prefix, which is
/// re-inserted immediately after any eviction.
#[derive(Debug)]
struct BoundedMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> BoundedMap<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Insert, evicting the oldest entry when full. Returns the number of
    /// evictions performed (0 or 1).
    fn insert(&mut self, key: K, value: V) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        if self.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
            self.order.push_back(key.clone());
        }
        self.map.insert(key, value);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[derive(Debug)]
struct PrefixCacheInner {
    /// `(token id, position)` → input embedding.
    embeddings: BoundedMap<(u32, u32), Arc<Vec<f64>>>,
    /// `(layer-0 head, token id, position)` → projected query/key vector.
    projections: BoundedMap<(u16, u32, u32), Arc<Vec<f64>>>,
    stats: CacheStats,
}

/// Shared cache of per-`(token, position)` embedding and layer-0 attention
/// key/query state, reused across perturbed-context forward passes.
///
/// See the module docs for the exact reuse rules and invariants. Construct one
/// per model configuration — entries are functions of the model seed, so a
/// cache must never be shared between models with different seeds or
/// dimensions (attach it via `SimLlm::with_prefix_cache`, which documents the
/// same rule).
#[derive(Debug)]
pub struct PrefixCache {
    inner: Mutex<PrefixCacheInner>,
    capacity: usize,
}

/// Default capacity (entries per internal map): generous enough to hold every
/// `(token, position)` pair of a k=10 scenario many times over, small enough
/// to bound memory to a few MB.
pub const DEFAULT_PREFIX_CAPACITY: usize = 65_536;

impl Default for PrefixCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PREFIX_CAPACITY)
    }
}

impl PrefixCache {
    /// A cache holding at most `capacity` entries per internal map.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(PrefixCacheInner {
                embeddings: BoundedMap::new(capacity),
                projections: BoundedMap::new(capacity),
                stats: CacheStats::default(),
            }),
            capacity,
        }
    }

    /// The per-map entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("prefix cache poisoned").stats
    }

    /// Total entries currently held (both maps).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        inner.embeddings.len() + inner.projections.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The input embedding of `token_id` at `position`, computing it with
    /// `compute` on a miss. The returned vector is shared, never mutated.
    pub fn embedding(
        &self,
        token_id: u32,
        position: usize,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Arc<Vec<f64>> {
        let key = (token_id, position as u32);
        {
            let mut inner = self.inner.lock().expect("prefix cache poisoned");
            if let Some(hit) = inner.embeddings.get(&key) {
                let hit = Arc::clone(hit);
                inner.stats.hits += 1;
                return hit;
            }
            inner.stats.misses += 1;
        }
        // Compute outside the lock; a racing thread computing the same key
        // produces the identical value (pure function of the key).
        let value = Arc::new(compute());
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.stats.evictions += inner.embeddings.insert(key, Arc::clone(&value));
        value
    }

    /// Drop every cached entry (counters are kept). Entries are pure functions
    /// of their keys, so clearing can only cost recomputation, never change
    /// results — services call this when the corpus behind a pipeline mutates,
    /// guaranteeing no state predating the mutation survives.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.embeddings = BoundedMap::new(self.capacity);
        inner.projections = BoundedMap::new(self.capacity);
    }

    /// The layer-0 projection of the embedding of `(token_id, position)`
    /// under `head`, computing it with `compute` on a miss.
    pub fn layer0_projection(
        &self,
        head: usize,
        token_id: u32,
        position: usize,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Arc<Vec<f64>> {
        let key = (head as u16, token_id, position as u32);
        {
            let mut inner = self.inner.lock().expect("prefix cache poisoned");
            if let Some(hit) = inner.projections.get(&key) {
                let hit = Arc::clone(hit);
                inner.stats.hits += 1;
                return hit;
            }
            inner.stats.misses += 1;
        }
        let value = Arc::new(compute());
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.stats.evictions += inner.projections.insert(key, Arc::clone(&value));
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts_hits_and_misses() {
        let cache = PrefixCache::with_capacity(8);
        let a = cache.embedding(1, 0, || vec![1.0, 2.0]);
        let b = cache.embedding(1, 0, || panic!("must be a hit"));
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = PrefixCache::with_capacity(8);
        cache.embedding(1, 0, || vec![1.0]);
        cache.layer0_projection(0, 1, 0, || vec![2.0]);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
        // Re-computation after clear yields the same value (pure function of key).
        let again = cache.embedding(1, 0, || vec![1.0]);
        assert_eq!(*again, vec![1.0]);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = PrefixCache::with_capacity(8);
        cache.embedding(1, 0, || vec![1.0]);
        cache.embedding(1, 1, || vec![2.0]);
        cache.embedding(2, 0, || vec![3.0]);
        cache.layer0_projection(0, 1, 0, || vec![4.0]);
        cache.layer0_projection(1, 1, 0, || vec![5.0]);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn capacity_bounds_entries_via_fifo_eviction() {
        let cache = PrefixCache::with_capacity(4);
        for token in 0..100u32 {
            cache.embedding(token, 0, || vec![f64::from(token)]);
        }
        let inner_len = cache.len();
        assert!(inner_len <= 4, "len {inner_len} exceeds capacity");
        assert_eq!(cache.stats().evictions, 96);
        // Evicted entries recompute (a miss, not a wrong value).
        let v = cache.embedding(0, 0, || vec![0.0]);
        assert_eq!(*v, vec![0.0]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PrefixCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.embedding(1, 0, || vec![1.0]);
        cache.embedding(2, 0, || vec![2.0]);
        assert!(cache.len() <= 2); // one per map at most
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_default_is_zero() {
        let stats = CacheStats::default();
        assert_eq!(stats.lookups(), 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
