//! Fused, cache-blocked inner-loop kernels for the transformer hot path.
//!
//! RAGE's explanation search spends essentially all of its time in repeated
//! [`Transformer::forward`](crate::transformer::Transformer::forward) passes,
//! and within one pass the `O(tokens²)` attention score/softmax/mix loops
//! dominate. This module is the optimised implementation of those loops:
//! flat row-major buffers instead of `Vec<Vec<f64>>` pointer chasing,
//! four-way blocking so independent floating-point dependency chains
//! pipeline, and no per-query allocations.
//!
//! ## The bit-identity contract
//!
//! Every kernel in this module produces **bit-identical** `f64` results to
//! the straight-line reference loops in
//! [`Transformer::forward_reference`](crate::transformer::Transformer::forward_reference):
//! for each output scalar, the kernel performs exactly the same sequence of
//! IEEE-754 operations, in the same order, as the reference. Optimisations
//! are restricted to transformations that cannot change a rounded result:
//!
//! * **blocking / tiling** — loop structure changes, but the per-scalar
//!   operation sequence (e.g. the `d`-ascending accumulation of one dot
//!   product, or the `k`-ascending accumulation of one mixed value) does not;
//! * **flat buffers and copies** — moving an `f64` never rounds;
//! * **exact strength reduction** — `x / d` is replaced by `x * (1/d)` only
//!   when `d` is a power of two, where the reciprocal is exact and IEEE-754
//!   rounding makes the two expressions produce identical bits for every
//!   input (see [`exact_reciprocal`]).
//!
//! The contract is enforced by the differential suite in
//! `tests/kernel_equivalence.rs`, which compares fused and reference
//! forwards down to `f64::to_bits` across randomised prompts and model
//! configurations. Anything that would reassociate a reduction, fuse a
//! multiply-add, or reorder additions (true SIMD reductions, `fma`,
//! `-ffast-math`-style rewrites) is out of scope for *these* kernels — such
//! rewrites live behind [`KernelBackend::Simd`] instead.
//!
//! ## Backend selection and the re-baseline contract
//!
//! [`KernelBackend`] selects between two compiled-side-by-side
//! implementations at runtime:
//!
//! * [`KernelBackend::Scalar`] — the kernels in this module. Bit-identical
//!   to the reference; the oracle every other path is measured against.
//!   This is the default (and the backend all golden snapshots are pinned
//!   to) unless the `simd` cargo feature is enabled.
//! * [`KernelBackend::Simd`] — the lane-parallel kernels in [`simd`].
//!   Deliberately diverges from the oracle in the dot-product reductions
//!   (fixed 4-lane tree), the softmax `exp` (branch-free polynomial), the
//!   weight normalisation (reciprocal multiply instead of per-element
//!   division) and the value-mix head averaging (weight-folded, exact for
//!   power-of-two head counts); every divergence is deterministic and
//!   ULP-bounded, with the bounds measured and asserted in
//!   `tests/simd_equivalence.rs`. Selecting it is
//!   a *re-baseline event* for any byte-compared artifact downstream:
//!   attention read-outs shift by ULPs, so JSON reports rendered from a
//!   SIMD-backed model are not byte-identical to the scalar goldens. The
//!   workspace keeps all golden snapshots scalar-pinned; a deployment that
//!   flips the default via the `simd` feature must regenerate its goldens
//!   once (`report -- smoke --out-dir …` and the snapshot tests' bless
//!   flow) and record the flip in `crates/bench/baselines/BENCH_baseline.json`.
//!
//! Both backends are always compiled regardless of the feature flag — the
//! feature only flips [`KernelBackend::default`] — so the differential suite
//! can compare them in every build configuration.

pub mod simd;

/// Runtime selection between the scalar oracle kernels and the
/// lane-parallel [`simd`] kernels. See the module docs for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The bit-identical scalar kernels in this module (the oracle).
    Scalar,
    /// The lane-parallel kernels in [`simd`]: faster, ULP-divergent in the
    /// dot reductions, the softmax `exp` and the weight normalisation,
    /// deterministic everywhere.
    Simd,
}

impl Default for KernelBackend {
    /// `Scalar` unless the crate is built with the `simd` cargo feature, in
    /// which case newly-constructed models default to the SIMD backend.
    fn default() -> Self {
        if cfg!(feature = "simd") {
            Self::Simd
        } else {
            Self::Scalar
        }
    }
}

impl KernelBackend {
    /// Backend-dispatched [`scores_into`].
    #[inline]
    pub fn scores_into(
        self,
        query: &[f64],
        keys: &[f64],
        key_dim: usize,
        scale: f64,
        out: &mut [f64],
    ) {
        match self {
            Self::Scalar => scores_into(query, keys, key_dim, scale, out),
            Self::Simd => simd::scores_into(query, keys, key_dim, scale, out),
        }
    }

    /// Backend-dispatched [`matvec_into`].
    #[inline]
    pub fn matvec_into(self, matrix: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
        match self {
            Self::Scalar => matvec_into(matrix, rows, cols, x, out),
            Self::Simd => simd::matvec_into(matrix, rows, cols, x, out),
        }
    }

    /// Backend-dispatched [`softmax_exp_inplace`].
    #[inline]
    pub fn softmax_exp_inplace(self, scores: &mut [f64]) -> f64 {
        match self {
            Self::Scalar => softmax_exp_inplace(scores),
            Self::Simd => simd::softmax_exp_inplace(scores),
        }
    }

    /// Backend-dispatched [`weights_inplace`]. The scalar backend divides
    /// every score by `sum`; the SIMD backend multiplies by the reciprocal
    /// instead (one division total), which diverges by ~2 ULP per weight —
    /// part of the SIMD backend's documented divergence contract.
    #[inline]
    pub fn weights_inplace(self, scores: &mut [f64], sum: f64) {
        match self {
            Self::Scalar => weights_inplace(scores, sum),
            Self::Simd => simd::weights_inplace(scores, sum),
        }
    }

    /// Backend-dispatched [`mix_accumulate`]. The SIMD backend folds the
    /// `1/heads` average into each weight once per key instead of once per
    /// element — bit-identical for power-of-two head counts (the default
    /// models), ULP-divergent otherwise; see [`simd::mix_accumulate`]. The
    /// SIMD *forward pass* additionally folds the per-head mixes into one
    /// combined pass — that restructuring lives in the transformer, not here.
    #[inline]
    pub fn mix_accumulate(
        self,
        weights: &[f64],
        values: &[f64],
        dim: usize,
        heads: f64,
        out: &mut [f64],
    ) {
        match self {
            Self::Scalar => mix_accumulate(weights, values, dim, heads, out),
            Self::Simd => simd::mix_accumulate(weights, values, dim, heads, out),
        }
    }

    /// Backend-dispatched [`residual_normalize`]. Shared between backends
    /// (bit-identical): the halving is elementwise and the norm reduction is
    /// kept sequential so the normalised rows match the oracle exactly.
    #[inline]
    pub fn residual_normalize(self, hidden: &mut [f64], mixed: &[f64], dim: usize) {
        residual_normalize(hidden, mixed, dim);
    }
}

/// Number of independent accumulator chains in the blocked kernels.
///
/// Four chains is enough to cover the latency of a scalar `mulsd`/`addsd`
/// pipeline on current x86-64 and AArch64 cores without spilling
/// accumulators to the stack.
const BLOCK: usize = 4;

/// `Some(1/d)` when multiplying by it is bit-identical to dividing by `d`.
///
/// That holds exactly when `d` is a (normal, finite) power of two: the
/// reciprocal is then exactly representable, `x / d` and `x * (1/d)` name
/// the same real number, and IEEE-754 round-to-nearest maps equal reals to
/// equal bit patterns. For any other divisor the rounded reciprocal would
/// introduce a second rounding step, so the caller must keep dividing.
pub fn exact_reciprocal(d: f64) -> Option<f64> {
    const MANTISSA_MASK: u64 = (1u64 << 52) - 1;
    if d.is_normal() && d > 0.0 && (d.to_bits() & MANTISSA_MASK) == 0 {
        let inv = 1.0 / d;
        // The reciprocal of a finite power of two can be infinite (d =
        // 2^-1022 has no normal reciprocal partner at the top of the range —
        // it does, 2^1022, but 2^1023 * 2 overflows); guard anyway.
        if inv.is_normal() {
            return Some(inv);
        }
    }
    None
}

/// Scaled dot-product scores of one query row against a block of key rows:
/// `out[k] = dot(query, keys[k]) * scale` for every row `k` of `keys`.
///
/// `keys` is a flat row-major `out.len() × key_dim` buffer. Keys are
/// processed [`BLOCK`] at a time with one independent accumulator each; every
/// accumulator starts at `-0.0` — the identity element `Iterator::sum`
/// uses for floats — and adds `query[d] * key[d]` in ascending `d` order,
/// which is exactly the operation sequence of the reference `dot(a, b)`
/// (`iter().zip().map(|(x, y)| x * y).sum()`). Starting at `+0.0` instead
/// would flip the sign of all-zero dots (`key_dim == 0`, or every product
/// `-0.0`): IEEE `+0.0 + -0.0` is `+0.0`, while `.sum()` yields `-0.0`.
pub fn scores_into(query: &[f64], keys: &[f64], key_dim: usize, scale: f64, out: &mut [f64]) {
    let n = out.len();
    assert_eq!(keys.len(), n * key_dim, "keys buffer shape mismatch");
    assert_eq!(query.len(), key_dim, "query length mismatch");
    let mut k = 0;
    while k + BLOCK <= n {
        let base = k * key_dim;
        let r0 = &keys[base..base + key_dim];
        let r1 = &keys[base + key_dim..base + 2 * key_dim];
        let r2 = &keys[base + 2 * key_dim..base + 3 * key_dim];
        let r3 = &keys[base + 3 * key_dim..base + 4 * key_dim];
        let (mut a0, mut a1, mut a2, mut a3) = (-0.0f64, -0.0f64, -0.0f64, -0.0f64);
        for d in 0..key_dim {
            let q = query[d];
            a0 += q * r0[d];
            a1 += q * r1[d];
            a2 += q * r2[d];
            a3 += q * r3[d];
        }
        out[k] = a0 * scale;
        out[k + 1] = a1 * scale;
        out[k + 2] = a2 * scale;
        out[k + 3] = a3 * scale;
        k += BLOCK;
    }
    while k < n {
        let row = &keys[k * key_dim..(k + 1) * key_dim];
        let mut acc = -0.0f64;
        for d in 0..key_dim {
            acc += query[d] * row[d];
        }
        out[k] = acc * scale;
        k += 1;
    }
}

/// Dense row-major matrix–vector product: `out[r] = dot(matrix.row(r), x)`.
///
/// Used for the per-head query/key projection of one token's hidden state.
/// Rows are blocked [`BLOCK`] at a time; each row's accumulation is the
/// reference `dot` sequence, so results are bit-identical to projecting row
/// by row.
pub fn matvec_into(matrix: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    // A matvec is the same computation as one unscaled score row with the
    // matrix rows as keys.
    scores_into(x, matrix, cols, 1.0, out);
}

/// Numerically-stable softmax, first half: subtract the row maximum and
/// exponentiate in place, returning the sum of the exponentials.
///
/// Identical operation order to the reference: the maximum is a
/// `fold(NEG_INFINITY, f64::max)` over the row, then each score becomes
/// `(s - max).exp()` in ascending order with the sum accumulated in the same
/// pass.
pub fn softmax_exp_inplace(scores: &mut [f64]) -> f64 {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0f64;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    sum
}

/// Softmax, second half: divide every exponentiated score by `sum`, turning
/// the row into attention weights (one division per element, as in the
/// reference `weight = s / sum`).
pub fn weights_inplace(scores: &mut [f64], sum: f64) {
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// Fused value mix: accumulate the attention-weighted, head-averaged value
/// rows into one query's mixed vector.
///
/// For every key `k` (ascending) and dimension `d` the reference performs
/// `out[d] += weights[k] * values[k][d] / heads`; this kernel performs the
/// same per-scalar additions in the same `k` order, but processes [`BLOCK`]
/// key rows per pass over `out` so the accumulator row stays in registers.
/// When `heads` is a power of two the division is replaced by an exact
/// reciprocal multiplication (see [`exact_reciprocal`]); otherwise the
/// division is kept.
pub fn mix_accumulate(weights: &[f64], values: &[f64], dim: usize, heads: f64, out: &mut [f64]) {
    match exact_reciprocal(heads) {
        Some(inv) => mix_accumulate_with(weights, values, dim, out, |x| x * inv),
        None => mix_accumulate_with(weights, values, dim, out, |x| x / heads),
    }
}

#[inline(always)]
fn mix_accumulate_with(
    weights: &[f64],
    values: &[f64],
    dim: usize,
    out: &mut [f64],
    head_average: impl Fn(f64) -> f64,
) {
    let n = weights.len();
    assert_eq!(values.len(), n * dim, "values buffer shape mismatch");
    assert_eq!(out.len(), dim, "output row length mismatch");
    let mut k = 0;
    while k + BLOCK <= n {
        let base = k * dim;
        let r0 = &values[base..base + dim];
        let r1 = &values[base + dim..base + 2 * dim];
        let r2 = &values[base + 2 * dim..base + 3 * dim];
        let r3 = &values[base + 3 * dim..base + 4 * dim];
        let (w0, w1, w2, w3) = (weights[k], weights[k + 1], weights[k + 2], weights[k + 3]);
        for d in 0..dim {
            // One load/store of out[d] per four keys; the additions keep the
            // reference's ascending-k order per scalar.
            let mut acc = out[d];
            acc += head_average(w0 * r0[d]);
            acc += head_average(w1 * r1[d]);
            acc += head_average(w2 * r2[d]);
            acc += head_average(w3 * r3[d]);
            out[d] = acc;
        }
        k += BLOCK;
    }
    while k < n {
        let row = &values[k * dim..(k + 1) * dim];
        let w = weights[k];
        for d in 0..dim {
            out[d] += head_average(w * row[d]);
        }
        k += 1;
    }
}

/// Fused residual update + renormalisation over all token rows:
/// `hidden[t][d] = 0.5 * hidden[t][d] + 0.5 * mixed[t][d]`, then each row is
/// normalised to unit L2 norm with the shared
/// [`normalize`](crate::embedding::normalize) (identical operation order to
/// the reference's per-row loop).
///
/// ## Zero- and subnormal-norm rows
///
/// `normalize` guards its division with an epsilon: rows whose L2 norm is
/// `<= 1e-12` (all-zero rows, or rows of subnormal residuals whose squares
/// underflow) are left unscaled instead of being divided by (near-)zero.
/// A divide-by-zero here would send NaN through every downstream score and
/// defeat the report layer's `total_cmp` hardening, so the guard is part of
/// the kernel contract and pinned by `residual_normalize_never_produces_nan`
/// below. The same guard runs in the reference path (shared function), so
/// the two stay bit-identical even on degenerate rows.
///
/// ## Shape requirements
///
/// `dim` must be positive and divide the buffer length exactly; both are
/// asserted. (A non-dividing `dim` would previously skip the trailing
/// partial row silently — making it loud is part of the remainder-lane
/// hardening.) Empty buffers are a no-op for any positive `dim`.
pub fn residual_normalize(hidden: &mut [f64], mixed: &[f64], dim: usize) {
    assert_eq!(hidden.len(), mixed.len(), "buffer length mismatch");
    if hidden.is_empty() {
        return;
    }
    assert!(dim > 0, "row dimension must be positive");
    assert_eq!(
        hidden.len() % dim,
        0,
        "buffer length must be a multiple of dim"
    );
    for (h, m) in hidden.chunks_exact_mut(dim).zip(mixed.chunks_exact(dim)) {
        for d in 0..dim {
            h[d] = 0.5 * h[d] + 0.5 * m[d];
        }
        crate::embedding::normalize(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::dot;

    /// SplitMix64 step for test data generation.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_vec(state: &mut u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|_| (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
            .collect()
    }

    #[test]
    fn exact_reciprocal_accepts_only_powers_of_two() {
        assert_eq!(exact_reciprocal(2.0), Some(0.5));
        assert_eq!(exact_reciprocal(8.0), Some(0.125));
        assert_eq!(exact_reciprocal(1.0), Some(1.0));
        assert_eq!(exact_reciprocal(3.0), None);
        assert_eq!(exact_reciprocal(6.0), None);
        assert_eq!(exact_reciprocal(0.0), None);
        assert_eq!(exact_reciprocal(-2.0), None);
        assert_eq!(exact_reciprocal(f64::INFINITY), None);
        assert_eq!(exact_reciprocal(f64::NAN), None);
    }

    #[test]
    fn reciprocal_multiplication_matches_division_bitwise() {
        let mut state = 0xDEAD_BEEF;
        for heads in [1.0f64, 2.0, 4.0, 8.0] {
            let inv = exact_reciprocal(heads).unwrap();
            for x in random_vec(&mut state, 1000) {
                assert_eq!((x / heads).to_bits(), (x * inv).to_bits(), "x={x}");
            }
        }
    }

    #[test]
    fn scores_match_reference_dot_bitwise() {
        let mut state = 42;
        // Lengths around the block size exercise both loops and the tail.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            for key_dim in [1usize, 3, 16, 32] {
                let query = random_vec(&mut state, key_dim);
                let keys = random_vec(&mut state, n * key_dim);
                let scale = 1.75;
                let mut out = vec![0.0; n];
                scores_into(&query, &keys, key_dim, scale, &mut out);
                for k in 0..n {
                    let reference = dot(&query, &keys[k * key_dim..(k + 1) * key_dim]) * scale;
                    assert_eq!(out[k].to_bits(), reference.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn matvec_matches_row_dots_bitwise() {
        let mut state = 7;
        let (rows, cols) = (9, 32);
        let matrix = random_vec(&mut state, rows * cols);
        let x = random_vec(&mut state, cols);
        let mut out = vec![0.0; rows];
        matvec_into(&matrix, rows, cols, &x, &mut out);
        for r in 0..rows {
            let reference = dot(&matrix[r * cols..(r + 1) * cols], &x);
            assert_eq!(out[r].to_bits(), reference.to_bits(), "row {r}");
        }
    }

    #[test]
    fn softmax_matches_reference_bitwise() {
        let mut state = 99;
        for n in [1usize, 3, 4, 6, 17] {
            let scores = random_vec(&mut state, n);
            // Reference: straight-line loops from the original forward pass.
            let mut reference = scores.clone();
            let max = reference.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut ref_sum = 0.0;
            for s in reference.iter_mut() {
                *s = (*s - max).exp();
                ref_sum += *s;
            }
            let ref_weights: Vec<f64> = reference.iter().map(|s| s / ref_sum).collect();

            let mut fused = scores.clone();
            let sum = softmax_exp_inplace(&mut fused);
            assert_eq!(sum.to_bits(), ref_sum.to_bits());
            weights_inplace(&mut fused, sum);
            for (w, r) in fused.iter().zip(ref_weights.iter()) {
                assert_eq!(w.to_bits(), r.to_bits());
            }
        }
    }

    #[test]
    fn mix_matches_reference_bitwise_for_all_head_counts() {
        let mut state = 1234;
        for heads in [1usize, 2, 3, 4, 5, 8] {
            for n in [1usize, 2, 4, 5, 9, 12] {
                let dim = 16;
                let weights = random_vec(&mut state, n);
                let values = random_vec(&mut state, n * dim);
                let heads_f = heads as f64;

                let mut reference = random_vec(&mut state, dim);
                let mut fused = reference.clone();
                for k in 0..n {
                    for d in 0..dim {
                        reference[d] += weights[k] * values[k * dim + d] / heads_f;
                    }
                }
                mix_accumulate(&weights, &values, dim, heads_f, &mut fused);
                for d in 0..dim {
                    assert_eq!(
                        fused[d].to_bits(),
                        reference[d].to_bits(),
                        "heads={heads} n={n} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_normalize_matches_reference_bitwise() {
        let mut state = 5678;
        let (n, dim) = (7, 32);
        let hidden = random_vec(&mut state, n * dim);
        let mixed = random_vec(&mut state, n * dim);

        let mut reference = hidden.clone();
        for t in 0..n {
            let row = &mut reference[t * dim..(t + 1) * dim];
            for d in 0..dim {
                row[d] = 0.5 * row[d] + 0.5 * mixed[t * dim + d];
            }
            crate::embedding::normalize(row);
        }

        let mut fused = hidden.clone();
        residual_normalize(&mut fused, &mixed, dim);
        for (f, r) in fused.iter().zip(reference.iter()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "keys buffer shape mismatch")]
    fn scores_rejects_bad_shapes() {
        let mut out = vec![0.0; 2];
        scores_into(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, 1.0, &mut out);
    }

    #[test]
    fn residual_normalize_never_produces_nan() {
        // Zero rows: residual of two zero rows has zero norm; the epsilon
        // guard in `normalize` must leave the row at zero, not NaN.
        let mut hidden = vec![0.0; 8];
        let mixed = vec![0.0; 8];
        residual_normalize(&mut hidden, &mixed, 4);
        assert!(hidden.iter().all(|x| *x == 0.0));

        // Subnormal rows: the squared norm underflows to ~0, tripping the
        // same guard; the row must come back finite (unscaled), never NaN.
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        let mut hidden = vec![tiny; 6];
        let mixed = vec![-tiny; 6];
        residual_normalize(&mut hidden, &mixed, 3);
        assert!(hidden.iter().all(|x| x.is_finite()), "{hidden:?}");

        // Opposite rows cancel exactly: 0.5*h + 0.5*(-h) == 0 per element.
        let mut hidden = vec![1.0, -2.0, 3.0];
        let mixed = vec![-1.0, 2.0, -3.0];
        residual_normalize(&mut hidden, &mixed, 3);
        assert_eq!(hidden, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn residual_normalize_empty_is_noop_for_any_dim() {
        let mut hidden: Vec<f64> = Vec::new();
        residual_normalize(&mut hidden, &[], 0);
        residual_normalize(&mut hidden, &[], 7);
        assert!(hidden.is_empty());
    }

    #[test]
    #[should_panic(expected = "row dimension must be positive")]
    fn residual_normalize_rejects_zero_dim_with_data() {
        let mut hidden = vec![1.0, 2.0];
        residual_normalize(&mut hidden, &[3.0, 4.0], 0);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn residual_normalize_rejects_partial_rows() {
        // A trailing partial row used to be skipped silently; now it's loud.
        let mut hidden = vec![1.0; 7];
        let mixed = vec![0.0; 7];
        residual_normalize(&mut hidden, &mixed, 4);
    }

    #[test]
    fn backend_default_tracks_feature_flag() {
        let expected = if cfg!(feature = "simd") {
            KernelBackend::Simd
        } else {
            KernelBackend::Scalar
        };
        assert_eq!(KernelBackend::default(), expected);
    }

    #[test]
    fn backend_dispatch_agrees_between_shared_kernels() {
        // At a power-of-two head count the SIMD mix's weight fold is exact,
        // so dispatching through either backend must be bitwise the scalar
        // kernel. (weights_inplace and non-power-of-two mixes ARE divergent,
        // pinned in tests/simd_equivalence.rs and kernels::simd::tests.)
        let mut state = 31337;
        let weights = random_vec(&mut state, 9);
        let values = random_vec(&mut state, 9 * 4);
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            let mut a = vec![0.0; 4];
            backend.mix_accumulate(&weights, &values, 4, 2.0, &mut a);
            let mut b = vec![0.0; 4];
            mix_accumulate(&weights, &values, 4, 2.0, &mut b);
            assert_eq!(a, b);
        }
    }
}
