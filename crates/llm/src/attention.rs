//! Per-source attention aggregation.
//!
//! RAGE's first relevance-scoring method "aggregate[s] the LLM's attention values,
//! summing them over all internal layers, attention heads, and tokens corresponding to a
//! combination's constituent sources" (§II-C). This module performs that aggregation
//! over the [`AttentionRecord`] produced by the simulated transformer.

use crate::tokenizer::TokenizedPrompt;
use crate::transformer::AttentionRecord;

/// Attention mass attributed to each source of a prompt.
///
/// `masses[i]` is the attention received by source `i` (in prompt order), summed over
/// every layer, every head and every query token, restricted to key positions inside the
/// source's token span. The `normalised` form divides by the total mass over all
/// sources, yielding a distribution when at least one source received attention.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAttention {
    /// Raw summed attention mass per source.
    pub masses: Vec<f64>,
}

impl SourceAttention {
    /// Normalise to a distribution over sources (empty if there are no sources or the
    /// total mass is zero).
    pub fn normalised(&self) -> Vec<f64> {
        let total: f64 = self.masses.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.masses.len()];
        }
        self.masses.iter().map(|m| m / total).collect()
    }

    /// Index of the source with the highest mass, if any.
    pub fn argmax(&self) -> Option<usize> {
        self.masses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }
}

/// Sum attention over all layers, heads and query tokens into each source's key span.
pub fn aggregate_source_attention(
    record: &AttentionRecord,
    prompt: &TokenizedPrompt,
) -> SourceAttention {
    let mut masses = vec![0.0; prompt.source_spans.len()];
    if record.seq_len == 0 || prompt.source_spans.is_empty() {
        return SourceAttention { masses };
    }
    for layer in &record.layers {
        for head in &layer.heads {
            for q in 0..record.seq_len {
                let row = head.row(q);
                for (source_idx, &(start, end)) in prompt.source_spans.iter().enumerate() {
                    let span_mass: f64 = row[start..end.min(row.len())].iter().sum();
                    masses[source_idx] += span_mass;
                }
            }
        }
    }
    SourceAttention { masses }
}

/// Sum attention restricted to question-token queries only.
///
/// This variant measures how much the *question* attends to each source, which is a
/// sharper relevance signal than whole-prompt aggregation when sources are long.
pub fn aggregate_question_to_source_attention(
    record: &AttentionRecord,
    prompt: &TokenizedPrompt,
) -> SourceAttention {
    let mut masses = vec![0.0; prompt.source_spans.len()];
    if record.seq_len == 0 || prompt.source_spans.is_empty() {
        return SourceAttention { masses };
    }
    let (q_start, q_end) = prompt.question_span;
    for layer in &record.layers {
        for head in &layer.heads {
            for q in q_start..q_end.min(record.seq_len) {
                let row = head.row(q);
                for (source_idx, &(start, end)) in prompt.source_spans.iter().enumerate() {
                    let span_mass: f64 = row[start..end.min(row.len())].iter().sum();
                    masses[source_idx] += span_mass;
                }
            }
        }
    }
    SourceAttention { masses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::SimTokenizer;
    use crate::transformer::{Transformer, TransformerConfig};
    use crate::{LlmInput, SourceText};

    fn setup(question: &str, sources: Vec<SourceText>) -> (AttentionRecord, TokenizedPrompt) {
        let tok = SimTokenizer::new();
        let prompt = tok.tokenize_prompt(&LlmInput::new(question, sources));
        let record = Transformer::new(TransformerConfig::default()).forward(&prompt);
        (record, prompt)
    }

    #[test]
    fn aggregation_produces_one_mass_per_source() {
        let (record, prompt) = setup(
            "who is the champion",
            vec![
                SourceText::new("a", "gauff is the champion"),
                SourceText::new("b", "swiatek won earlier"),
                SourceText::new("c", "completely unrelated cooking text"),
            ],
        );
        let attention = aggregate_source_attention(&record, &prompt);
        assert_eq!(attention.masses.len(), 3);
        assert!(attention.masses.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn normalised_masses_sum_to_one() {
        let (record, prompt) = setup(
            "question words",
            vec![
                SourceText::new("a", "alpha beta"),
                SourceText::new("b", "gamma delta epsilon"),
            ],
        );
        let attention = aggregate_source_attention(&record, &prompt);
        let normalised = attention.normalised();
        let total: f64 = normalised.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn question_to_source_prefers_lexically_matching_source() {
        let (record, prompt) = setup(
            "who holds the most grand slam titles in tennis history",
            vec![
                SourceText::new(
                    "match",
                    "djokovic holds the most grand slam titles in tennis",
                ),
                SourceText::new("noise", "chop the carrots and simmer the broth with thyme"),
            ],
        );
        let attention = aggregate_question_to_source_attention(&record, &prompt);
        assert_eq!(attention.argmax(), Some(0));
    }

    #[test]
    fn no_sources_yields_empty_masses() {
        let (record, prompt) = setup("only a question", vec![]);
        let attention = aggregate_source_attention(&record, &prompt);
        assert!(attention.masses.is_empty());
        assert!(attention.normalised().is_empty());
        assert_eq!(attention.argmax(), None);
    }

    #[test]
    fn zero_mass_normalisation_is_safe() {
        let attention = SourceAttention {
            masses: vec![0.0, 0.0],
        };
        assert_eq!(attention.normalised(), vec![0.0, 0.0]);
    }

    #[test]
    fn longer_sources_receive_more_whole_prompt_mass() {
        // Whole-prompt aggregation is span-size sensitive (more key positions), which is
        // exactly why the model also exposes the question-restricted variant.
        let (record, prompt) = setup(
            "short question",
            vec![
                SourceText::new("long", "one two three four five six seven eight nine ten"),
                SourceText::new("short", "one"),
            ],
        );
        let attention = aggregate_source_attention(&record, &prompt);
        assert!(attention.masses[0] > attention.masses[1]);
    }
}
