//! Lane-parallel (SIMD-shaped) kernel implementations.
//!
//! The toolchain is stable Rust, `rage-llm` forbids `unsafe`, and the target
//! baseline is plain x86-64 — so this module does not call vector intrinsics
//! or `std::simd`. Instead every kernel is written as **fixed-width 4-lane
//! blocks of straight-line scalar code** (`chunks_exact`, no data-dependent
//! branches in the hot loops) that LLVM's auto-vectoriser lowers to packed
//! SSE2 instructions at the default target, and to wider AVX vectors when the
//! build opts into `-C target-cpu`. The lane shape — not the instruction set —
//! is the contract, which keeps results identical across machines.
//!
//! ## Divergence contract (vs. the scalar oracle)
//!
//! The scalar kernels in [`super`] are bit-identical to
//! `Transformer::forward_reference` by construction. The lane-parallel
//! versions here deliberately trade that bit-identity for throughput in a
//! small, enumerated set of places, every one ULP-bounded and pinned by
//! tests (`tests/simd_equivalence.rs`):
//!
//! * **Dot-product reductions** ([`scores_into`], [`matvec_into`]): the
//!   accumulation is a fixed 4-lane tree — lane `l` sums elements
//!   `l, l+4, l+8, …` and the four partials combine as
//!   `(a0+a1) + (a2+a3)`. Deterministic, but a different rounding order than
//!   the reference's sequential sum.
//! * **`exp` in the softmax** ([`softmax_exp_inplace`]): a branch-free
//!   degree-12 polynomial (Cody–Waite range reduction, Estrin evaluation)
//!   replaces `libm`'s `exp`, and the row sum is a 4-lane tree. The
//!   polynomial is within a few ULP of `libm` on the softmax domain
//!   `x ∈ [-708, 0]` (the exact bound is measured and asserted in
//!   `kernels::simd::tests`); inputs below `-708` flush to zero where `libm`
//!   would return a subnormal `< 1e-307`.
//! * **Weight normalisation** ([`weights_inplace`]): one division computes
//!   the reciprocal of the row sum, then every weight multiplies by it. The
//!   scalar kernel divides each weight individually; the reciprocal form is
//!   within ~2 ULP of it per weight but turns `n` long-latency divisions per
//!   row into one.
//! * **Value-mix head averaging** ([`mix_accumulate`]): the `1/heads` factor
//!   is folded into each weight once per key rather than applied per
//!   element. Exact — and therefore still bit-identical — when `heads` is a
//!   power of two (every default model); ULP-divergent otherwise.
//!
//! Everything else (`residual_normalize`) reuses the scalar kernel
//! unchanged: its per-scalar operation order is already lane-parallel across
//! independent outputs, the auto-vectoriser handles it well, and keeping it
//! shared keeps the divergence surface small.

/// Lane width of the hand-unrolled blocks. Four `f64` lanes = two SSE2
/// vectors (the stable-Rust baseline) or one AVX2 vector.
const LANES: usize = 4;

/// Tree-reduced dot product: 4 striped lane accumulators combined as
/// `(a0+a1) + (a2+a3)`. Remainder elements (when `len % 4 != 0`) land in
/// lanes `0..len%4`, so every length has one fixed, documented order.
///
/// Lanes start at `-0.0`, the float-sum identity, so degenerate all-zero
/// dots carry the same sign bit as the scalar backend and the `.sum()`
/// reference (empty sum is `-0.0`, not `+0.0`).
#[inline(always)]
fn dot_tree(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [-0.0f64; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    for (l, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        acc[l] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Lane-parallel [`super::scores_into`]: same shape contract, tree-reduced
/// dots (see the module docs for the divergence bound).
///
/// One key row per [`dot_tree`] call. A four-row-blocked variant (sixteen
/// interleaved accumulator chains) was measured *slower* on the forward
/// pass — the extra register pressure costs more than the amortised loop
/// overhead buys at head-sized `key_dim` — so the simple form stays.
pub fn scores_into(query: &[f64], keys: &[f64], key_dim: usize, scale: f64, out: &mut [f64]) {
    let n = out.len();
    assert_eq!(keys.len(), n * key_dim, "keys buffer shape mismatch");
    assert_eq!(query.len(), key_dim, "query length mismatch");
    if key_dim == 0 {
        // Zero-dimension keys: every dot product is the empty sum, whose
        // identity element (matching `Iterator::sum` and the scalar
        // backend) is `-0.0`.
        out.fill(-0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(keys.chunks_exact(key_dim)) {
        *o = dot_tree(query, row) * scale;
    }
}

/// Lane-parallel [`super::matvec_into`]: a matvec is one unscaled score row
/// with the matrix rows as keys, exactly as in the scalar kernel.
pub fn matvec_into(matrix: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    scores_into(x, matrix, cols, 1.0, out);
}

// --- Branch-free polynomial exp over the softmax domain ---------------------

const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High/low split of ln(2) for Cody–Waite range reduction: `LN2_HI` carries
/// the leading bits exactly, so `x - k*LN2_HI` is exact for the `k` range in
/// play, and `LN2_LO` corrects the truncation.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Inputs below this flush to zero. `exp(-708)` ≈ 3.3e-308 is still a normal
/// double, so the power-of-two scale `2^k` below never needs the subnormal
/// exponent range (which would cost a branch or a two-step scale per lane).
/// The true `exp` of anything in `(-745, -708)` is below `1e-307`; flushing
/// it to zero changes a softmax weight by less than `1e-290` relative to any
/// row whose maximum defines the scale.
const EXP_FLUSH: f64 = -708.0;
/// `1.5 · 2^52`. Adding it to a double in `[-2^51, 2^51]` forces rounding at
/// the integer ulp (the sum lands in the `[2^52, 2^53)` binade, where the
/// mantissa step is exactly 1), so `(y + MAGIC) - MAGIC` is
/// round-to-nearest-even of `y` — and `(kf + MAGIC).to_bits()` is `MAGIC`'s
/// bit pattern plus the integer `kf`, which hands the exponent to the scale
/// step as pure integer lane arithmetic.
const MAGIC: f64 = 6_755_399_441_055_744.0;

// Taylor coefficients 1/n! for the degree-12 `exp(r)` polynomial, shared by
// the scalar-call and four-lane forms below.
const C3: f64 = 1.0 / 6.0;
const C4: f64 = 1.0 / 24.0;
const C5: f64 = 1.0 / 120.0;
const C6: f64 = 1.0 / 720.0;
const C7: f64 = 1.0 / 5040.0;
const C8: f64 = 1.0 / 40320.0;
const C9: f64 = 1.0 / 362_880.0;
const C10: f64 = 1.0 / 3_628_800.0;
const C11: f64 = 1.0 / 39_916_800.0;
const C12: f64 = 1.0 / 479_001_600.0;

/// Branch-free `exp(x)` for `x <= 0`, within a few ULP of `libm` on
/// `[EXP_FLUSH, 0]` (bound measured and asserted in tests), flushing to `0.0`
/// below `EXP_FLUSH`. NaN inputs are clamped to `EXP_FLUSH` (the softmax
/// never produces them: scores are finite by construction).
///
/// Shape: Cody–Waite reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, a
/// degree-12 Taylor polynomial for `exp(r)` evaluated in Estrin form (short
/// dependency chains so four interleaved lanes pipeline), and an exact
/// power-of-two scale built directly from the exponent bits.
///
/// There is deliberately no `f64 → i32` cast anywhere: Rust's saturating
/// float casts lower to scalar `cvttsd2si` plus clamp logic at the SSE2
/// baseline, which serialises the whole four-lane pipeline. The [`MAGIC`]
/// binade-shift trick keeps both the rounding and the exponent extraction in
/// packed float/integer ops.
#[inline(always)]
fn exp_lane(x: f64) -> f64 {
    // Comparison select rather than `f64::max`: one `maxsd`, and the exact
    // clamp the four-lane form uses, keeping the two bit-identical.
    let xc = if x > EXP_FLUSH { x } else { EXP_FLUSH };
    let y = xc * LOG2_E;
    // round-to-nearest-even of y, no float→int cast (see MAGIC).
    let kf = (y + MAGIC) - MAGIC;
    let r = (xc - kf * LN2_HI) - kf * LN2_LO;
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p0123 = (1.0 + r) + (0.5 + C3 * r) * r2;
    let p4567 = (C4 + C5 * r) + (C6 + C7 * r) * r2;
    let p89ab = (C8 + C9 * r) + (C10 + C11 * r) * r2;
    let p = (p0123 + p4567 * r4) + (p89ab + C12 * r4) * r8;
    // kf ∈ [-1021, 0] here, so the biased exponent 1023 + kf stays in range
    // and the scale is a normal power of two; the final multiply is exact.
    // (kf + MAGIC) has MAGIC's bits plus kf; strip MAGIC's mantissa (2^51),
    // add the bias, and shift the exponent into place — the binade bits of
    // MAGIC fall off the top of the 52-bit shift.
    let k_bits = (kf + MAGIC).to_bits();
    let scale = f64::from_bits(
        k_bits
            .wrapping_sub(1u64 << 51)
            .wrapping_add(1023)
            .wrapping_shl(52),
    );
    let v = scale * p;
    if x < EXP_FLUSH {
        0.0
    } else {
        v
    }
}

/// Four [`exp_lane`]s in lockstep: every stage is a lane loop over
/// `[f64; LANES]` arrays, so the vectoriser emits packed ops stage by stage.
///
/// Calling `exp_lane` four times in a row does *not* get there — superword
/// vectorisation gives up on the select/bit-cast tails of the four inlined
/// bodies and leaves most of the polynomial scalar (measured ~2× slower than
/// this form on the softmax hot loop). Per lane the operation sequence here
/// is exactly [`exp_lane`]'s, so the two are bit-identical for every input —
/// asserted in tests, and what lets the remainder path below fall back to
/// [`exp_lane`] without a divergence seam at `len % 4` boundaries.
#[inline(always)]
fn exp4(x: [f64; LANES]) -> [f64; LANES] {
    let mut xc = [0.0f64; LANES];
    for l in 0..LANES {
        xc[l] = if x[l] > EXP_FLUSH { x[l] } else { EXP_FLUSH };
    }
    let mut kf = [0.0f64; LANES];
    for l in 0..LANES {
        kf[l] = (xc[l] * LOG2_E + MAGIC) - MAGIC;
    }
    let mut p = [0.0f64; LANES];
    for l in 0..LANES {
        let r = (xc[l] - kf[l] * LN2_HI) - kf[l] * LN2_LO;
        let r2 = r * r;
        let r4 = r2 * r2;
        let r8 = r4 * r4;
        let p0123 = (1.0 + r) + (0.5 + C3 * r) * r2;
        let p4567 = (C4 + C5 * r) + (C6 + C7 * r) * r2;
        let p89ab = (C8 + C9 * r) + (C10 + C11 * r) * r2;
        p[l] = (p0123 + p4567 * r4) + (p89ab + C12 * r4) * r8;
    }
    let mut v = [0.0f64; LANES];
    for l in 0..LANES {
        let k_bits = (kf[l] + MAGIC).to_bits();
        let scale = f64::from_bits(
            k_bits
                .wrapping_sub(1u64 << 51)
                .wrapping_add(1023)
                .wrapping_shl(52),
        );
        v[l] = scale * p[l];
    }
    for l in 0..LANES {
        v[l] = if x[l] < EXP_FLUSH { 0.0 } else { v[l] };
    }
    v
}

/// Lane-parallel [`super::softmax_exp_inplace`]: 4-lane striped maximum
/// (order-insensitive for the finite scores the transformer produces),
/// polynomial `exp` (see [`exp_lane`]) and a 4-lane tree sum.
pub fn softmax_exp_inplace(scores: &mut [f64]) -> f64 {
    // Striped maximum. Max is associative and commutative over non-NaN
    // inputs, so the lane order cannot change the result. The comparison
    // select (rather than `f64::max`) matters: `f64::max`'s NaN-propagation
    // semantics cost a five-instruction compare/blend sequence per lane,
    // while `if a > b { a } else { b }` is exactly one packed `maxpd`.
    let mut m = [f64::NEG_INFINITY; LANES];
    let mut it = scores.chunks_exact(LANES);
    for ch in &mut it {
        for (lane, &v) in m.iter_mut().zip(ch) {
            *lane = if v > *lane { v } else { *lane };
        }
    }
    let mut max = {
        let m01 = if m[0] > m[1] { m[0] } else { m[1] };
        let m23 = if m[2] > m[3] { m[2] } else { m[3] };
        if m01 > m23 {
            m01
        } else {
            m23
        }
    };
    for &v in it.remainder() {
        if v > max {
            max = v;
        }
    }

    let mut sum = [0.0f64; LANES];
    let mut it = scores.chunks_exact_mut(LANES);
    for ch in &mut it {
        let e = exp4([ch[0] - max, ch[1] - max, ch[2] - max, ch[3] - max]);
        ch.copy_from_slice(&e);
        for (s, ev) in sum.iter_mut().zip(e) {
            *s += ev;
        }
    }
    for (l, v) in it.into_remainder().iter_mut().enumerate() {
        let e = exp_lane(*v - max);
        *v = e;
        sum[l] += e;
    }
    (sum[0] + sum[1]) + (sum[2] + sum[3])
}

/// Lane-parallel [`super::weights_inplace`]: multiply every weight by the
/// reciprocal of `sum` instead of dividing each one.
///
/// One division (the reciprocal) replaces `n` — division is the longest
/// latency/lowest throughput float op on every x86-64 generation, and the
/// softmax second half is pure division in the scalar kernel. The cost is
/// divergence: `w * (1/s)` rounds twice where `w / s` rounds once, so each
/// weight may differ from the scalar backend's by ~2 ULP (asserted in
/// tests). Degenerate sums (`0`, `inf`, NaN) propagate through the
/// reciprocal exactly as they would through per-element division signwise —
/// the transformer never produces them (row sums of positive finite
/// exponentials), and rows stay finite for every finite positive `sum`.
pub fn weights_inplace(weights: &mut [f64], sum: f64) {
    let inv = 1.0 / sum;
    for w in weights.iter_mut() {
        *w *= inv;
    }
}

/// Lane-parallel [`super::mix_accumulate`]: the head average is folded into
/// each weight once per key (`w' = w/heads`, then `out[d] += w' * v[d]`)
/// instead of once per element, halving the multiplies in the inner loop.
///
/// When `heads` is a power of two the fold is exact — scaling by `2^-k`
/// commutes with the product's single rounding — so the result is
/// bit-identical to the scalar kernel, which covers every default model
/// configuration. For other head counts the weight fold rounds once
/// (`w * (1/heads)` via reciprocal), making each output ULP-divergent from
/// the scalar kernel's per-element `(w*v)/heads`; this is the fourth leg of
/// the backend's documented divergence contract (see the module docs) and is
/// pinned by `tests/simd_equivalence.rs`.
pub fn mix_accumulate(weights: &[f64], values: &[f64], dim: usize, heads: f64, out: &mut [f64]) {
    let n = weights.len();
    assert_eq!(values.len(), n * dim, "values buffer shape mismatch");
    assert_eq!(out.len(), dim, "output row length mismatch");
    let inv = super::exact_reciprocal(heads).unwrap_or(1.0 / heads);
    let mut k = 0;
    while k + LANES <= n {
        let base = k * dim;
        let r0 = &values[base..base + dim];
        let r1 = &values[base + dim..base + 2 * dim];
        let r2 = &values[base + 2 * dim..base + 3 * dim];
        let r3 = &values[base + 3 * dim..base + 4 * dim];
        let (w0, w1, w2, w3) = (
            weights[k] * inv,
            weights[k + 1] * inv,
            weights[k + 2] * inv,
            weights[k + 3] * inv,
        );
        for d in 0..dim {
            // One load/store of out[d] per four keys, ascending-k addition
            // order per scalar, exactly as in the scalar kernel — only the
            // weight fold differs.
            let mut acc = out[d];
            acc += w0 * r0[d];
            acc += w1 * r1[d];
            acc += w2 * r2[d];
            acc += w3 * r3[d];
            out[d] = acc;
        }
        k += LANES;
    }
    while k < n {
        let row = &values[k * dim..(k + 1) * dim];
        let w = weights[k] * inv;
        for d in 0..dim {
            out[d] += w * row[d];
        }
        k += 1;
    }
}

/// Keys per tile of the blocked value mix: 64 value rows of the default
/// 32-dim hidden state are 16 KB — half of a typical L1d — so a tile stays
/// resident while every query block consumes it.
const MIX_KEY_TILE: usize = 64;

/// Tiled whole-matrix value mix: `weights` is `q_rows` contiguous `n`-wide
/// weight rows **already averaged over heads by the caller**, `values` the
/// `n × dim` hidden buffer, and every output element accumulates
/// `out[q][d] += Σ_k weights[q][k] · values[k][d]` in ascending-`k` order.
///
/// Per element this is exactly the operation sequence of one
/// [`mix_accumulate`] call per query (the caller's weight fold stands in for
/// the per-key fold there): the key loop is split into ascending
/// [`MIX_KEY_TILE`]-sized tiles and the queries into blocks of four, but
/// each `out` element still sees one ascending-`k` addition chain, so the
/// tiling is bit-identical to the per-query kernel — asserted in tests.
/// What changes is the memory schedule: the values (every token's hidden
/// row, `n·dim` doubles — the largest working set in the forward pass) no
/// longer stream through L2 once per query; a key tile is read once and
/// reused from L1 by all query blocks, and register-tiled 4×4 accumulation
/// keeps the inner loop FLOP-bound. At report-sized contexts that cuts the
/// mix's L2 traffic several-fold, which is worth more than any further
/// arithmetic tuning.
pub fn mix_tiled(weights: &[f64], values: &[f64], dim: usize, out: &mut [f64]) {
    assert!(dim > 0, "mix_tiled requires dim > 0");
    assert_eq!(values.len() % dim, 0, "values buffer shape mismatch");
    assert_eq!(out.len() % dim, 0, "out buffer shape mismatch");
    let n = values.len() / dim;
    let q_rows = out.len() / dim;
    assert_eq!(weights.len(), q_rows * n, "weights buffer shape mismatch");
    let d_tiles = dim / LANES;
    let mut k0 = 0;
    while k0 < n {
        let kt = MIX_KEY_TILE.min(n - k0);
        let mut q0 = 0;
        while q0 + 4 <= q_rows {
            let wr0 = &weights[q0 * n + k0..q0 * n + k0 + kt];
            let wr1 = &weights[(q0 + 1) * n + k0..(q0 + 1) * n + k0 + kt];
            let wr2 = &weights[(q0 + 2) * n + k0..(q0 + 2) * n + k0 + kt];
            let wr3 = &weights[(q0 + 3) * n + k0..(q0 + 3) * n + k0 + kt];
            for t in 0..d_tiles {
                let d0 = t * LANES;
                // 4 queries × 4 dims of accumulators live in registers
                // across the key tile; out is read and written once per
                // (key tile, dim tile) pair.
                let mut acc = [[0.0f64; LANES]; 4];
                for (q, a) in acc.iter_mut().enumerate() {
                    a.copy_from_slice(&out[(q0 + q) * dim + d0..(q0 + q) * dim + d0 + LANES]);
                }
                for j in 0..kt {
                    let row = &values[(k0 + j) * dim + d0..(k0 + j) * dim + d0 + LANES];
                    let (w0, w1, w2, w3) = (wr0[j], wr1[j], wr2[j], wr3[j]);
                    for l in 0..LANES {
                        acc[0][l] += w0 * row[l];
                        acc[1][l] += w1 * row[l];
                        acc[2][l] += w2 * row[l];
                        acc[3][l] += w3 * row[l];
                    }
                }
                for (q, a) in acc.iter().enumerate() {
                    out[(q0 + q) * dim + d0..(q0 + q) * dim + d0 + LANES].copy_from_slice(a);
                }
            }
            // dim % 4 tail: plain per-element accumulation over the tile,
            // same ascending-k order.
            for d in d_tiles * LANES..dim {
                for (q, ws) in [wr0, wr1, wr2, wr3].iter().enumerate() {
                    let mut a = out[(q0 + q) * dim + d];
                    for (j, w) in ws.iter().enumerate() {
                        a += w * values[(k0 + j) * dim + d];
                    }
                    out[(q0 + q) * dim + d] = a;
                }
            }
            q0 += 4;
        }
        // q_rows % 4 tail: one query at a time over the same key tile.
        for q in q0..q_rows {
            let ws = &weights[q * n + k0..q * n + k0 + kt];
            for (j, w) in ws.iter().enumerate() {
                let row = &values[(k0 + j) * dim..(k0 + j + 1) * dim];
                let dst = &mut out[q * dim..(q + 1) * dim];
                for (o, v) in dst.iter_mut().zip(row) {
                    *o += w * v;
                }
            }
        }
        k0 += kt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn ulp_distance(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    /// The documented accuracy bound of the polynomial exp on the softmax
    /// domain. Measured max over 500k random points is 3 ULP; asserted at 8
    /// so an unrelated codegen change has headroom without silencing a real
    /// regression.
    #[test]
    fn exp_lane_is_within_ulp_bound_of_libm() {
        let mut state = 0x5EED_0E21 ^ 0xA5A5;
        let mut worst = 0u64;
        for _ in 0..500_000 {
            let x = -unit(&mut state) * 708.0;
            let ours = exp_lane(x);
            let libm = x.exp();
            worst = worst.max(ulp_distance(ours, libm));
        }
        assert!(worst <= 8, "exp_lane diverged by {worst} ULP from libm");
    }

    #[test]
    fn exp_lane_edge_cases() {
        // Exact at zero (both signed zeros), monotone flush below the cutoff,
        // and total on non-finite garbage.
        assert_eq!(exp_lane(0.0), 1.0);
        assert_eq!(exp_lane(-0.0), 1.0);
        assert_eq!(exp_lane(-1e-300), 1.0);
        assert!(exp_lane(EXP_FLUSH) > 0.0);
        assert_eq!(exp_lane(EXP_FLUSH - 0.001), 0.0);
        assert_eq!(exp_lane(-1e9), 0.0);
        assert_eq!(exp_lane(f64::NEG_INFINITY), 0.0);
        assert!(exp_lane(f64::NAN).is_finite());
    }

    #[test]
    fn exp4_is_bit_identical_to_exp_lane() {
        // The four-lane form must be a pure re-layout of exp_lane — any
        // per-lane arithmetic drift would make softmax results depend on a
        // score's position modulo 4.
        let mut state = 0xE4;
        for _ in 0..100_000 {
            let xs = [
                -unit(&mut state) * 800.0,
                -unit(&mut state) * 800.0,
                -unit(&mut state) * 800.0,
                -unit(&mut state) * 800.0,
            ];
            let lanes = exp4(xs);
            for (x, got) in xs.iter().zip(lanes) {
                assert_eq!(got.to_bits(), exp_lane(*x).to_bits(), "x={x}");
            }
        }
        let edges = [0.0, -0.0, EXP_FLUSH, EXP_FLUSH - 0.001, f64::NEG_INFINITY];
        let lanes = exp4([edges[0], edges[1], edges[2], edges[3]]);
        for (x, got) in edges.iter().take(LANES).zip(lanes) {
            assert_eq!(got.to_bits(), exp_lane(*x).to_bits(), "edge x={x}");
        }
    }

    #[test]
    fn tree_dot_matches_sequential_within_tolerance() {
        let mut state = 0xD07;
        for len in 0..=33usize {
            let a: Vec<f64> = (0..len).map(|_| unit(&mut state) * 2.0 - 1.0).collect();
            let b: Vec<f64> = (0..len).map(|_| unit(&mut state) * 2.0 - 1.0).collect();
            let seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let tree = dot_tree(&a, &b);
            assert!(
                (seq - tree).abs() <= 1e-12 * (1.0 + seq.abs()),
                "len={len}: {seq} vs {tree}"
            );
        }
    }

    #[test]
    fn softmax_rows_stay_distributions() {
        let mut state = 0x50F7;
        for len in 1..=33usize {
            let mut row: Vec<f64> = (0..len).map(|_| (unit(&mut state) - 0.5) * 40.0).collect();
            let sum = softmax_exp_inplace(&mut row);
            assert!(sum > 0.0);
            let total: f64 = row.iter().map(|e| e / sum).sum();
            assert!((total - 1.0).abs() < 1e-12, "len={len}: {total}");
            assert!(row.iter().all(|e| *e >= 0.0 && e.is_finite()));
        }
    }

    #[test]
    fn reciprocal_weights_are_within_two_ulp_of_division() {
        // The documented divergence bound of the reciprocal normalisation:
        // `w * (1/s)` rounds twice where the scalar kernel's `w / s` rounds
        // once, which keeps each weight within 2 ULP of the division result.
        let mut state = 0x1E1C;
        for len in 1..=33usize {
            let mut row: Vec<f64> = (0..len).map(|_| (unit(&mut state) - 0.5) * 40.0).collect();
            let sum = softmax_exp_inplace(&mut row);
            let divided: Vec<f64> = row.iter().map(|w| w / sum).collect();
            weights_inplace(&mut row, sum);
            for (i, (ours, oracle)) in row.iter().zip(&divided).enumerate() {
                let ulp = ulp_distance(*ours, *oracle);
                assert!(ulp <= 2, "len={len} i={i}: {ours} vs {oracle} ({ulp} ULP)");
            }
        }
    }

    #[test]
    fn mix_tiled_is_bit_identical_to_per_query_mix_accumulate() {
        // The tiled mix must round exactly like one `mix_accumulate` call
        // per query whose weights were pre-averaged the same way: the key
        // tiling and query blocking reschedule memory, not arithmetic, so
        // every output element keeps the same ascending-k addition chain.
        // Sweep every boundary: dim % 4 tail, q_rows % 4 tail, and key
        // counts straddling MIX_KEY_TILE.
        let mut state = 0xB10C;
        for &n in &[1usize, 2, 5, 8, 63, 64, 65, 104, 130] {
            for &q_rows in &[1usize, 3, 4, 5, 8] {
                for &dim in &[1usize, 4, 7, 8, 10] {
                    let values: Vec<f64> = (0..n * dim)
                        .map(|_| (unit(&mut state) - 0.5) * 2.0)
                        .collect();
                    let weights: Vec<f64> = (0..q_rows * n).map(|_| unit(&mut state)).collect();
                    let mut tiled = vec![0.0f64; q_rows * dim];
                    mix_tiled(&weights, &values, dim, &mut tiled);
                    for q in 0..q_rows {
                        // `mix_accumulate` folds `1/heads` into each weight;
                        // with heads = 1 the fold is the identity, so the
                        // oracle consumes the pre-averaged weights untouched.
                        let mut reference = vec![0.0f64; dim];
                        mix_accumulate(
                            &weights[q * n..(q + 1) * n],
                            &values,
                            dim,
                            1.0,
                            &mut reference,
                        );
                        for d in 0..dim {
                            assert_eq!(
                                tiled[q * dim + d].to_bits(),
                                reference[d].to_bits(),
                                "n={n} q_rows={q_rows} dim={dim} q={q} d={d}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn extreme_score_rows_flush_not_nan() {
        // A row whose minimum is far below the maximum exercises the
        // flush-to-zero tail without producing NaN or Inf anywhere.
        let mut row = vec![0.0, -500.0, -720.0, -1e6, 3.0];
        let sum = softmax_exp_inplace(&mut row);
        assert!(sum.is_finite() && sum > 0.0);
        assert_eq!(row[3], 0.0);
        assert!(row.iter().all(|e| e.is_finite()));
    }
}
