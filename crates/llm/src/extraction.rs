//! Question typing and candidate-answer extraction.
//!
//! The simulated model grounds its answers in the context: every source is scanned for
//! candidate answer spans (named entities, counts, years) whose plausibility depends on
//! nearby cue words. The extraction is deliberately simple — surface patterns over
//! capitalised spans and four-digit years — because the RAGE corpora are short factual
//! statements; what matters for the reproduction is that evidence comes *from the
//! sources*, so that removing or demoting a source genuinely changes the answer.

use serde::{Deserialize, Serialize};

use crate::tokenizer::SimTokenizer;

/// The kind of question being asked, which selects the answer-aggregation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuestionKind {
    /// "Which/who is the best/greatest/most …" — a single superlative entity.
    Superlative,
    /// "Most recent / latest / current …" — the entity with the latest associated year.
    MostRecent,
    /// "How many times did ENTITY …" — a count over supporting sources.
    Count {
        /// The entity whose occurrences are being counted, lowercased, if detected.
        entity: Option<String>,
        /// Optional inclusive year range mentioned in the question ("between X and Y").
        year_range: Option<(i32, i32)>,
    },
    /// Anything else — answered with the best-supported extracted entity.
    Factoid,
}

/// A candidate answer extracted from one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The candidate answer text (surface form, original casing).
    pub answer: String,
    /// Extraction confidence in `[0, 1]`, driven by nearby cue words.
    pub confidence: f64,
    /// A year associated with the candidate, when one appears in the source.
    pub year: Option<i32>,
}

/// Words that never start or continue an entity span even when capitalised.
const ENTITY_BLOCKLIST: &[&str] = &[
    "the", "a", "an", "in", "on", "at", "of", "and", "or", "but", "it", "its", "this", "that",
    "these", "those", "he", "she", "they", "we", "his", "her", "their", "our", "is", "was", "are",
    "were", "who", "what", "when", "which", "how", "why", "between", "among", "during", "however",
    "although", "since", "after", "before", "for", "with", "by", "from", "to",
];

/// Cue words that boost a nearby candidate's confidence.
const CUE_WORDS: &[&str] = &[
    "first",
    "leads",
    "leader",
    "most",
    "best",
    "greatest",
    "top",
    "champion",
    "champions",
    "winner",
    "won",
    "wins",
    "title",
    "titles",
    "record",
    "named",
    "awarded",
    "crowned",
    "ranked",
    "ranks",
    "victory",
    "defeated",
];

/// Number of tokens on either side of an entity span scanned for cue words.
const CUE_WINDOW: usize = 5;

/// Classify a question into its [`QuestionKind`].
pub fn classify_question(question: &str) -> QuestionKind {
    let lower = question.to_lowercase();
    let tokenizer = SimTokenizer::new();
    if lower.contains("how many")
        || lower.contains("how often")
        || lower.contains("number of times")
    {
        let entity = extract_entities(question)
            .into_iter()
            .map(|e| e.0.to_lowercase())
            .next();
        let years = extract_years(&tokenizer.words(question));
        let year_range = if years.len() >= 2 {
            let min = *years.iter().min().unwrap();
            let max = *years.iter().max().unwrap();
            Some((min, max))
        } else {
            None
        };
        return QuestionKind::Count { entity, year_range };
    }
    if lower.contains("most recent")
        || lower.contains("latest")
        || lower.contains("current ")
        || lower.contains("last winner")
        || lower.contains("reigning")
    {
        return QuestionKind::MostRecent;
    }
    if lower.contains("best")
        || lower.contains("greatest")
        || lower.contains("better")
        || lower.contains(" top ")
        || lower.contains("most successful")
        || lower.contains("who is the most")
    {
        return QuestionKind::Superlative;
    }
    QuestionKind::Factoid
}

/// Capitalised-word spans in the original (cased) text, returned as
/// `(entity text, start word index, end word index)` over the word sequence.
pub fn extract_entities(text: &str) -> Vec<(String, usize, usize)> {
    // Word-split preserving case (same segmentation as SimTokenizer::words but cased).
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            current.push(ch);
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        words.push(current);
    }

    let is_entity_word = |w: &str| -> bool {
        let mut chars = w.chars();
        let first_upper = chars.next().is_some_and(|c| c.is_uppercase());
        first_upper
            && w.chars().any(|c| c.is_alphabetic())
            && !ENTITY_BLOCKLIST.contains(&w.to_lowercase().as_str())
    };

    let mut entities = Vec::new();
    let mut i = 0;
    while i < words.len() {
        if is_entity_word(&words[i]) {
            let start = i;
            let mut span = vec![words[i].clone()];
            let mut j = i + 1;
            while j < words.len() && is_entity_word(&words[j]) {
                span.push(words[j].clone());
                j += 1;
            }
            entities.push((span.join(" "), start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    entities
}

/// Four-digit years (1900–2100) appearing in a word sequence.
pub fn extract_years(words: &[String]) -> Vec<i32> {
    words
        .iter()
        .filter_map(|w| w.parse::<i32>().ok())
        .filter(|&y| (1900..=2100).contains(&y))
        .collect()
}

/// Extract answer candidates from a single source text, relative to a question.
///
/// Candidates whose surface form already occurs in the question are dropped (they name
/// the thing being asked about, not the answer), except for [`QuestionKind::Count`],
/// whose target entity is expected to appear in both.
pub fn extract_candidates(
    kind: &QuestionKind,
    question: &str,
    source_text: &str,
) -> Vec<Candidate> {
    let tokenizer = SimTokenizer::new();
    let question_lower = question.to_lowercase();
    let source_words_cased: Vec<String> = {
        let mut words: Vec<String> = Vec::new();
        let mut current = String::new();
        for ch in source_text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                current.push(ch);
            } else if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
        words
    };
    let source_words_lower: Vec<String> = tokenizer.words(source_text);
    let years = extract_years(&source_words_lower);
    let entities = extract_entities(source_text);

    let mut candidates = Vec::new();
    for (entity, start, end) in entities {
        let entity_lower = entity.to_lowercase();
        // Entities named in the question are usually the *topic*, not the answer
        // ("US Open" in "who won the US Open"), so they are filtered out — except for
        // counting questions (the counted entity must appear in both) and superlative
        // questions, which often enumerate the candidate answers explicitly ("the best
        // among Djokovic, Federer and Nadal").
        let keep_even_if_in_question =
            matches!(kind, QuestionKind::Count { .. } | QuestionKind::Superlative);
        if !keep_even_if_in_question && question_lower.contains(&entity_lower) {
            continue;
        }
        // Cue scan in a window around the entity span; the boost saturates after two
        // cues so that cue-dense sources cannot drown out positional effects.
        let window_start = start.saturating_sub(CUE_WINDOW);
        let window_end = (end + CUE_WINDOW).min(source_words_cased.len());
        let cue_hits = source_words_cased[window_start..window_end]
            .iter()
            .filter(|w| CUE_WORDS.contains(&w.to_lowercase().as_str()))
            .count();
        let confidence = (0.4 + 0.25 * cue_hits.min(2) as f64).min(1.0);

        // Associate the year closest to the entity span, if any year exists.
        let year = closest_year(&source_words_cased, start, end, &years);

        candidates.push(Candidate {
            answer: entity,
            confidence,
            year,
        });
    }

    // For counting questions a source with a year but no explicit entity match still
    // carries signal; candidates already cover that because the entity filter is off.
    candidates
}

/// The year (from `years`) whose mention lies closest to the entity span.
fn closest_year(words: &[String], start: usize, end: usize, years: &[i32]) -> Option<i32> {
    if years.is_empty() {
        return None;
    }
    let mut best: Option<(usize, i32)> = None;
    for (idx, word) in words.iter().enumerate() {
        if let Ok(y) = word.parse::<i32>() {
            if (1900..=2100).contains(&y) {
                // Years following the entity ("Gauff triumphed in 2023") are preferred
                // over years preceding it when the distances are comparable, matching
                // how such statements are usually phrased.
                let distance = if idx < start {
                    start - idx + 1
                } else {
                    idx.saturating_sub(end)
                };
                if best.is_none_or(|(d, _)| distance < d) {
                    best = Some((distance, y));
                }
            }
        }
    }
    best.map(|(_, y)| y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_superlative() {
        assert_eq!(
            classify_question("Who is the best tennis player among the Big Three?"),
            QuestionKind::Superlative
        );
        assert_eq!(
            classify_question("Which player is the greatest of all time?"),
            QuestionKind::Superlative
        );
    }

    #[test]
    fn classifies_most_recent() {
        assert_eq!(
            classify_question("Who is the most recent US Open women's champion?"),
            QuestionKind::MostRecent
        );
        assert_eq!(
            classify_question("Who is the latest winner?"),
            QuestionKind::MostRecent
        );
    }

    #[test]
    fn classifies_count_with_entity_and_range() {
        let kind = classify_question(
            "How many times did Novak Djokovic win the Player of the Year award between 2010 and 2019?",
        );
        match kind {
            QuestionKind::Count { entity, year_range } => {
                assert_eq!(entity.as_deref(), Some("novak djokovic"));
                assert_eq!(year_range, Some((2010, 2019)));
            }
            other => panic!("expected Count, got {other:?}"),
        }
    }

    #[test]
    fn classifies_count_without_range() {
        let kind = classify_question("How many titles does Rafael Nadal have?");
        match kind {
            QuestionKind::Count { entity, year_range } => {
                assert_eq!(entity.as_deref(), Some("rafael nadal"));
                assert_eq!(year_range, None);
            }
            other => panic!("expected Count, got {other:?}"),
        }
    }

    #[test]
    fn classifies_factoid_fallback() {
        assert_eq!(
            classify_question("Where was the 2019 final played?"),
            QuestionKind::Factoid
        );
    }

    #[test]
    fn extracts_multiword_entities() {
        let entities = extract_entities("Roger Federer ranks first, ahead of Rafael Nadal.");
        let names: Vec<&str> = entities.iter().map(|(e, _, _)| e.as_str()).collect();
        assert!(names.contains(&"Roger Federer"));
        assert!(names.contains(&"Rafael Nadal"));
    }

    #[test]
    fn blocklist_words_do_not_form_entities() {
        let entities = extract_entities("The winner was announced. However, It rained.");
        let names: Vec<&str> = entities.iter().map(|(e, _, _)| e.as_str()).collect();
        assert!(!names.contains(&"The"));
        assert!(!names.contains(&"However"));
        assert!(!names.contains(&"It"));
    }

    #[test]
    fn extracts_years_in_range() {
        let words: Vec<String> = [
            "in", "2023", "she", "beat", "the", "1999", "record", "12345",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(extract_years(&words), vec![2023, 1999]);
    }

    #[test]
    fn candidate_confidence_reflects_cues() {
        let kind = QuestionKind::Superlative;
        let question = "Who is the best tennis player?";
        let strong = extract_candidates(
            &kind,
            question,
            "Roger Federer ranks first with the most match wins.",
        );
        let weak = extract_candidates(&kind, question, "Roger Federer lives in Switzerland.");
        let strong_conf = strong
            .iter()
            .find(|c| c.answer == "Roger Federer")
            .unwrap()
            .confidence;
        let weak_conf = weak
            .iter()
            .find(|c| c.answer == "Roger Federer")
            .unwrap()
            .confidence;
        assert!(strong_conf > weak_conf);
    }

    #[test]
    fn question_entities_are_not_candidates() {
        let kind = QuestionKind::MostRecent;
        let question = "Who is the most recent US Open women's champion?";
        let candidates = extract_candidates(
            &kind,
            question,
            "Coco Gauff won the US Open women's championship in 2023.",
        );
        let names: Vec<&str> = candidates.iter().map(|c| c.answer.as_str()).collect();
        assert!(names.contains(&"Coco Gauff"));
        assert!(!names.contains(&"US Open"));
    }

    #[test]
    fn count_questions_keep_the_target_entity() {
        let kind =
            classify_question("How many times did Novak Djokovic win between 2010 and 2019?");
        let candidates = extract_candidates(
            &kind,
            "How many times did Novak Djokovic win between 2010 and 2019?",
            "Novak Djokovic was named Player of the Year in 2015.",
        );
        assert!(candidates.iter().any(|c| c.answer == "Novak Djokovic"));
    }

    #[test]
    fn years_are_associated_with_the_nearest_entity() {
        let kind = QuestionKind::Factoid;
        let candidates = extract_candidates(
            &kind,
            "who won?",
            "Iga Swiatek won in 2022 while Coco Gauff triumphed in 2023.",
        );
        let swiatek = candidates
            .iter()
            .find(|c| c.answer == "Iga Swiatek")
            .unwrap();
        let gauff = candidates
            .iter()
            .find(|c| c.answer == "Coco Gauff")
            .unwrap();
        assert_eq!(swiatek.year, Some(2022));
        assert_eq!(gauff.year, Some(2023));
    }

    #[test]
    fn no_entities_yields_no_candidates() {
        let kind = QuestionKind::Factoid;
        let candidates = extract_candidates(&kind, "who won?", "the quick brown fox jumps");
        assert!(candidates.is_empty());
    }
}
