//! Prefix-cache correctness: cached and uncached `SimLlm` outputs must be
//! bit-identical over every perturbation shape RAGE generates (permuted and
//! truncated contexts), and the cache's memory must stay bounded under
//! eviction pressure.

use std::sync::Arc;

use rage_llm::cache::PrefixCache;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::{Generation, LanguageModel, LlmInput, SourceText};

fn sources() -> Vec<SourceText> {
    vec![
        SourceText::new(
            "wins",
            "Roger Federer ranks first in total match wins with 369 victories.",
        ),
        SourceText::new(
            "slams",
            "Novak Djokovic holds the most grand slam titles among the big three with 24.",
        ),
        SourceText::new(
            "weeks",
            "Novak Djokovic leads the ranking for most weeks ranked number one in tennis.",
        ),
        SourceText::new(
            "clay",
            "Rafael Nadal is the greatest clay court player with fourteen French Open titles.",
        ),
    ]
}

const QUESTION: &str =
    "Who is the best tennis player among Novak Djokovic, Roger Federer and Rafael Nadal?";

/// Every permutation of 4 sources (prompt order differs, token multiset is
/// shared) and every non-empty truncation (prefixes repeat across subsets).
fn perturbed_inputs() -> Vec<LlmInput> {
    let base = sources();
    let mut inputs = Vec::new();
    // All 4! orders via a tiny iterative Heap's algorithm replacement: simple
    // index recursion keeps the test dependency-free.
    fn permute(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let item = rest.remove(i);
            prefix.push(item);
            permute(prefix, rest, out);
            prefix.pop();
            rest.insert(i, item);
        }
    }
    let mut orders = Vec::new();
    permute(&mut Vec::new(), &mut (0..base.len()).collect(), &mut orders);
    for order in orders {
        inputs.push(LlmInput::new(
            QUESTION,
            order.iter().map(|&i| base[i].clone()).collect(),
        ));
    }
    // All non-empty subsets in original relative order (combinations).
    for mask in 1u32..(1 << base.len()) {
        let subset: Vec<SourceText> = base
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| s.clone())
            .collect();
        inputs.push(LlmInput::new(QUESTION, subset));
    }
    // The empty context.
    inputs.push(LlmInput::without_context(QUESTION));
    inputs
}

/// Bitwise comparison of generations: every attention value must agree down
/// to the `f64` bit pattern, not just approximately.
fn assert_bit_identical(label: &str, a: &Generation, b: &Generation) {
    assert_eq!(a.answer, b.answer, "{label}: answer");
    assert_eq!(a.text, b.text, "{label}: text");
    assert_eq!(a.prompt_tokens, b.prompt_tokens, "{label}: prompt tokens");
    assert_eq!(
        a.source_attention.len(),
        b.source_attention.len(),
        "{label}: attention length"
    );
    for (i, (x, y)) in a
        .source_attention
        .iter()
        .zip(b.source_attention.iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: attention[{i}] {x} vs {y} differ in bits"
        );
    }
}

#[test]
fn cached_generations_are_bit_identical_across_permutations_and_truncations() {
    let uncached = SimLlm::new(SimLlmConfig::default());
    let cache = Arc::new(PrefixCache::default());
    let cached = SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::clone(&cache));

    for (index, input) in perturbed_inputs().iter().enumerate() {
        let plain = uncached.generate(input);
        let via_cache = cached.generate(input);
        assert_bit_identical(&format!("input {index}"), &plain, &via_cache);
    }

    let stats = cache.stats();
    assert!(stats.hits > 0, "shared prefixes must produce cache hits");
    assert!(stats.misses > 0);
    // The question prefix repeats in all 40 prompts, so reuse dominates.
    assert!(
        stats.hit_rate() > 0.5,
        "expected prefix-dominated reuse, hit rate {}",
        stats.hit_rate()
    );
}

#[test]
fn cache_warm_reruns_stay_bit_identical() {
    // Second pass over the same inputs: everything is a hit, results must not
    // drift from the uncached model.
    let uncached = SimLlm::new(SimLlmConfig::default());
    let cached =
        SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::new(PrefixCache::default()));
    let inputs = perturbed_inputs();
    for input in &inputs {
        cached.generate(input); // warm
    }
    for (index, input) in inputs.iter().enumerate() {
        assert_bit_identical(
            &format!("warm input {index}"),
            &uncached.generate(input),
            &cached.generate(input),
        );
    }
}

#[test]
fn batch_generate_equals_elementwise_generate() {
    let cached =
        SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::new(PrefixCache::default()));
    let inputs = perturbed_inputs();
    let batched = cached.batch_generate(&inputs);
    assert_eq!(batched.len(), inputs.len());
    for (index, (input, batch_generation)) in inputs.iter().zip(batched.iter()).enumerate() {
        assert_bit_identical(
            &format!("batch input {index}"),
            &cached.generate(input),
            batch_generation,
        );
    }
}

#[test]
fn eviction_bounds_cache_memory_without_changing_results() {
    // A capacity far below the working set forces constant eviction; results
    // must still match the uncached model and the entry count must respect the
    // bound (embeddings and projections are capped per map).
    let capacity = 32;
    let cache = Arc::new(PrefixCache::with_capacity(capacity));
    let uncached = SimLlm::new(SimLlmConfig::default());
    let cached = SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::clone(&cache));

    for (index, input) in perturbed_inputs().iter().enumerate() {
        assert_bit_identical(
            &format!("evicting input {index}"),
            &uncached.generate(input),
            &cached.generate(input),
        );
        assert!(
            cache.len() <= 2 * capacity,
            "cache grew past its bound: {} entries",
            cache.len()
        );
    }
    assert!(
        cache.stats().evictions > 0,
        "the working set must overflow a capacity of {capacity}"
    );
}

#[test]
fn prefix_cache_is_shared_across_clones_and_threads() {
    let cache = Arc::new(PrefixCache::default());
    let model = SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::clone(&cache));
    let model = Arc::new(model);
    let inputs = perturbed_inputs();
    let expected: Vec<Generation> = inputs.iter().map(|i| model.generate(i)).collect();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let model = Arc::clone(&model);
            let inputs = inputs.clone();
            std::thread::spawn(move || inputs.iter().map(|i| model.generate(i)).collect::<Vec<_>>())
        })
        .collect();
    for handle in handles {
        let got = handle.join().expect("worker thread panicked");
        for (index, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_bit_identical(&format!("threaded input {index}"), e, g);
        }
    }
}
