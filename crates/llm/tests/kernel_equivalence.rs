//! Differential bit-identity suite: the fused kernel forward pass versus the
//! straight-line reference implementation.
//!
//! The `kernels` module promises that [`Transformer::forward_cached`] is
//! **bit-identical** to [`Transformer::forward_reference`] — same `f64`
//! operation order inside every fused loop, so every golden snapshot and
//! prefix-cache guarantee in the workspace holds unchanged. This suite
//! enforces that promise at three levels:
//!
//! 1. **Transformer level** — `f64::to_bits` equality of every attention
//!    weight over SplitMix64-randomised prompts × transformer configurations
//!    (dims, heads, layers, temperature, seed), with the prefix cache off,
//!    on-and-cold, and on-and-warm.
//! 2. **Model level** — `SimLlm` generations (answers *and* raw attention
//!    read-outs) match between a fused and a reference-forward model.
//! 3. **Evaluator level** — full `RageReport`s produced through 1/2/4-thread
//!    `ParallelEvaluator` worker pools over a fused model equal the reference
//!    model's, cache on and off.
//!
//! Everything is seeded; failures reproduce deterministically.

//! Every test here pins [`KernelBackend::Scalar`] explicitly: the
//! bit-identity contract is a property of the scalar kernels, and pinning
//! keeps the suite green when the crate is built with `--features simd`
//! (which only flips the *default* backend). The SIMD backend has its own
//! ULP-bounded differential suite in `simd_equivalence.rs`.

use std::sync::Arc;

use rage_core::explanation::ReportConfig;
use rage_core::{ParallelEvaluator, RagPipeline, RageReport};
use rage_datasets::{big_three, us_open, Scenario};
use rage_llm::cache::PrefixCache;
use rage_llm::kernels::KernelBackend;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::tokenizer::SimTokenizer;
use rage_llm::transformer::{AttentionRecord, Transformer, TransformerConfig};
use rage_llm::{LanguageModel, LlmInput, SourceText};
use rage_retrieval::{IndexBuilder, Searcher};

/// A transformer pinned to the scalar oracle backend.
fn scalar_transformer(config: TransformerConfig) -> Transformer {
    Transformer::new(config).with_backend(KernelBackend::Scalar)
}

/// SplitMix64 step — the workspace's standard deterministic mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small vocabulary with deliberate overlap so random prompts contain
/// repeated tokens (the prefix cache's bread and butter) and question/source
/// lexical matches.
const VOCABULARY: &[&str] = &[
    "who", "won", "the", "most", "titles", "federer", "djokovic", "nadal", "open", "grand", "slam",
    "in", "wins", "clay", "court", "year", "champion", "recent", "first", "weeks",
];

fn random_words(state: &mut u64, len: usize) -> String {
    (0..len)
        .map(|_| VOCABULARY[(splitmix64(state) % VOCABULARY.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A randomised prompt: 2–6 question words, 0–5 sources of 1–9 words each.
fn random_input(state: &mut u64) -> LlmInput {
    let question_len = 2 + (splitmix64(state) % 5) as usize;
    let question = random_words(state, question_len);
    let num_sources = (splitmix64(state) % 6) as usize;
    let sources = (0..num_sources)
        .map(|i| {
            let len = 1 + (splitmix64(state) % 9) as usize;
            SourceText::new(format!("s{i}"), random_words(state, len))
        })
        .collect();
    LlmInput::new(question, sources)
}

/// Assert two attention records are identical down to the last bit.
fn assert_bit_identical(label: &str, fused: &AttentionRecord, reference: &AttentionRecord) {
    assert_eq!(fused.seq_len, reference.seq_len, "{label}: seq_len");
    assert_eq!(
        fused.layers.len(),
        reference.layers.len(),
        "{label}: layer count"
    );
    for (l, (fl, rl)) in fused.layers.iter().zip(reference.layers.iter()).enumerate() {
        assert_eq!(
            fl.heads.len(),
            rl.heads.len(),
            "{label}: heads at layer {l}"
        );
        for (h, (fm, rm)) in fl.heads.iter().zip(rl.heads.iter()).enumerate() {
            assert_eq!(
                (fm.rows, fm.cols),
                (rm.rows, rm.cols),
                "{label}: shape at layer {l} head {h}"
            );
            for (i, (f, r)) in fm.data.iter().zip(rm.data.iter()).enumerate() {
                assert_eq!(
                    f.to_bits(),
                    r.to_bits(),
                    "{label}: layer {l} head {h} entry {i}: fused {f:e} vs reference {r:e}"
                );
            }
        }
    }
}

/// The configuration sweep: every dim/head/layer shape the kernels must
/// handle, including non-power-of-two head counts (where the head-averaging
/// division must stay a division), dims that don't divide evenly, and a
/// single-token-block dimension smaller than the kernel block size.
fn config_sweep() -> Vec<TransformerConfig> {
    let mut configs = Vec::new();
    for (dim, heads, layers) in [
        (32, 2, 2), // the default shape
        (32, 3, 2), // heads don't divide dim; head-average is a true division
        (8, 1, 1),  // minimal shape
        (17, 4, 3), // odd dim, deeper stack
        (3, 2, 2),  // head_dim == 1
        (64, 8, 1), // wide and shallow
    ] {
        configs.push(TransformerConfig {
            layers,
            heads,
            dim,
            temperature: 0.35,
            seed: 0x5eed_1234 ^ ((dim as u64) << 8) ^ heads as u64,
            causal: false,
        });
    }
    // Temperature extremes sharpen/flatten the softmax.
    configs.push(TransformerConfig {
        temperature: 0.05,
        ..TransformerConfig::default()
    });
    configs.push(TransformerConfig {
        temperature: 3.0,
        ..TransformerConfig::default()
    });
    configs
}

#[test]
fn fused_forward_is_bit_identical_to_reference_across_configs_and_prompts() {
    let tokenizer = SimTokenizer::new();
    let mut state = 0x1234_5678_9ABC_DEF0;
    for config in config_sweep() {
        let transformer = scalar_transformer(config);
        for round in 0..8 {
            let input = random_input(&mut state);
            let prompt = tokenizer.tokenize_prompt(&input);
            let fused = transformer.forward(&prompt);
            let reference = transformer.forward_reference(&prompt, None);
            assert_bit_identical(
                &format!(
                    "dim={} heads={} layers={} t={} round={round}",
                    config.dim, config.heads, config.layers, config.temperature
                ),
                &fused,
                &reference,
            );
        }
    }
}

#[test]
fn fused_forward_matches_reference_with_prefix_cache_cold_and_warm() {
    let tokenizer = SimTokenizer::new();
    let mut state = 0xFEED_FACE_CAFE_BEEF;
    for config in [
        TransformerConfig::default(),
        TransformerConfig {
            heads: 3,
            dim: 24,
            ..TransformerConfig::default()
        },
    ] {
        let transformer = scalar_transformer(config);
        // Separate caches per path: stats differ by construction, values may
        // not. Warmth builds up across rounds as prompts share tokens.
        let fused_cache = PrefixCache::default();
        let reference_cache = PrefixCache::default();
        for round in 0..10 {
            let input = random_input(&mut state);
            let prompt = tokenizer.tokenize_prompt(&input);
            let uncached = transformer.forward_reference(&prompt, None);
            let fused_cached = transformer.forward_cached(&prompt, Some(&fused_cache));
            let reference_cached = transformer.forward_reference(&prompt, Some(&reference_cache));
            let label = format!("dim={} heads={} round={round}", config.dim, config.heads);
            assert_bit_identical(
                &format!("{label} fused+cache vs plain"),
                &fused_cached,
                &uncached,
            );
            assert_bit_identical(
                &format!("{label} fused+cache vs reference+cache"),
                &fused_cached,
                &reference_cached,
            );
        }
        assert!(
            fused_cache.stats().hits > 0,
            "warm rounds must produce cache hits"
        );
    }
}

#[test]
fn fused_and_reference_caches_are_interchangeable() {
    // A cache warmed by the fused path must serve the reference path
    // unchanged and vice versa — entries are bit-identical, so sharing one
    // cache across both implementations is legal.
    let tokenizer = SimTokenizer::new();
    let transformer = scalar_transformer(TransformerConfig::default());
    let shared = PrefixCache::default();
    let mut state = 0x0BAD_F00D;
    for _ in 0..6 {
        let input = random_input(&mut state);
        let prompt = tokenizer.tokenize_prompt(&input);
        let fused = transformer.forward_cached(&prompt, Some(&shared));
        let reference = transformer.forward_reference(&prompt, Some(&shared));
        assert_bit_identical("shared cache", &fused, &reference);
    }
}

#[test]
fn sim_llm_generations_match_reference_forward_bitwise() {
    let mut state = 0x5EED_0001;
    for heads in [2usize, 3] {
        let config = SimLlmConfig {
            transformer: TransformerConfig {
                heads,
                ..TransformerConfig::default()
            },
            ..SimLlmConfig::default()
        };
        let fused = SimLlm::new(config.clone()).with_kernel_backend(KernelBackend::Scalar);
        let reference = SimLlm::new(config).with_reference_forward();
        for round in 0..12 {
            let input = random_input(&mut state);
            let f = fused.generate(&input);
            let r = reference.generate(&input);
            assert_eq!(f.answer, r.answer, "heads={heads} round={round}: answer");
            assert_eq!(f.text, r.text, "heads={heads} round={round}: text");
            assert_eq!(
                f.prompt_tokens, r.prompt_tokens,
                "heads={heads} round={round}: prompt tokens"
            );
            assert_eq!(
                f.source_attention.len(),
                r.source_attention.len(),
                "heads={heads} round={round}: attention length"
            );
            for (i, (a, b)) in f
                .source_attention
                .iter()
                .zip(r.source_attention.iter())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "heads={heads} round={round}: attention[{i}] {a:e} vs {b:e}"
                );
            }
        }
    }
}

/// A pipeline over a scenario whose model uses the fused or reference
/// forward, with or without a prefix cache.
fn pipeline_for(scenario: &Scenario, reference: bool, prefix_cache: bool) -> RagPipeline {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let mut llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()))
        .with_kernel_backend(KernelBackend::Scalar);
    if reference {
        llm = llm.with_reference_forward();
    }
    if prefix_cache {
        llm = llm.with_prefix_cache(Arc::new(PrefixCache::default()));
    }
    RagPipeline::new(searcher, Arc::new(llm))
}

fn report_config() -> ReportConfig {
    ReportConfig {
        num_optimal_orders: 2,
        combination_budget: Some(24),
        permutation_budget: Some(16),
        insight_samples: 8,
        seed: 7,
        ..ReportConfig::default()
    }
}

#[test]
fn parallel_evaluator_reports_match_reference_model_across_thread_counts() {
    // The whole explanation stack — counterfactual searches, permutation
    // sensitivity, optimal placements, insights — over the fused kernels,
    // through 1/2/4-thread worker pools, cache off and on, must reproduce
    // the reference model's report exactly.
    let config = report_config();
    for scenario in [us_open::scenario(), big_three::scenario()] {
        let (_, reference_eval) = pipeline_for(&scenario, true, false)
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .expect("scenario question retrieves a context");
        let reference_report = RageReport::generate(&reference_eval, &config).unwrap();

        for threads in [1usize, 2, 4] {
            for prefix_cache in [false, true] {
                let (_, evaluator) = pipeline_for(&scenario, false, prefix_cache)
                    .ask_and_explain(&scenario.question, scenario.retrieval_k)
                    .expect("scenario question retrieves a context");
                let parallel = ParallelEvaluator::new(evaluator, threads);
                let report = RageReport::generate(&parallel, &config).unwrap();
                // Explanation content must be fully identical; only raw cost
                // counters may differ (speculative batch windows), which is
                // why the comparison goes field by field through PartialEq on
                // the explanation-bearing members.
                assert_eq!(
                    report.question, reference_report.question,
                    "{} @{threads}t cache={prefix_cache}: question",
                    scenario.name
                );
                assert_eq!(
                    report.full_context_answer, reference_report.full_context_answer,
                    "{} @{threads}t cache={prefix_cache}: answer",
                    scenario.name
                );
                assert_eq!(
                    report.empty_context_answer, reference_report.empty_context_answer,
                    "{} @{threads}t cache={prefix_cache}: empty answer",
                    scenario.name
                );
                assert_eq!(
                    report.source_scores, reference_report.source_scores,
                    "{} @{threads}t cache={prefix_cache}: source scores",
                    scenario.name
                );
                assert_eq!(
                    report.top_down.counterfactual, reference_report.top_down.counterfactual,
                    "{} @{threads}t cache={prefix_cache}: top-down",
                    scenario.name
                );
                assert_eq!(
                    report.bottom_up.counterfactual, reference_report.bottom_up.counterfactual,
                    "{} @{threads}t cache={prefix_cache}: bottom-up",
                    scenario.name
                );
                assert_eq!(
                    report.permutation.counterfactual, reference_report.permutation.counterfactual,
                    "{} @{threads}t cache={prefix_cache}: permutation",
                    scenario.name
                );
                assert_eq!(
                    report.best_orders, reference_report.best_orders,
                    "{} @{threads}t cache={prefix_cache}: best orders",
                    scenario.name
                );
                assert_eq!(
                    report.worst_orders, reference_report.worst_orders,
                    "{} @{threads}t cache={prefix_cache}: worst orders",
                    scenario.name
                );
                assert_eq!(
                    report.insights.distribution, reference_report.insights.distribution,
                    "{} @{threads}t cache={prefix_cache}: insight distribution",
                    scenario.name
                );
                assert_eq!(
                    report.insights.table, reference_report.insights.table,
                    "{} @{threads}t cache={prefix_cache}: insight table",
                    scenario.name
                );
                assert_eq!(
                    report.insights.rules, reference_report.insights.rules,
                    "{} @{threads}t cache={prefix_cache}: insight rules",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn sequential_fused_report_equals_reference_report_exactly() {
    // With identical (sequential) evaluation order even the cost counters
    // must agree: the kernels change *nothing* observable.
    let config = report_config();
    let scenario = big_three::scenario();
    let (_, fused_eval) = pipeline_for(&scenario, false, false)
        .ask_and_explain(&scenario.question, scenario.retrieval_k)
        .unwrap();
    let (_, reference_eval) = pipeline_for(&scenario, true, false)
        .ask_and_explain(&scenario.question, scenario.retrieval_k)
        .unwrap();
    let fused = RageReport::generate(&fused_eval, &config).unwrap();
    let reference = RageReport::generate(&reference_eval, &config).unwrap();
    assert_eq!(fused, reference);
}
