//! Differential suite for the SIMD kernel backend and the causal-attention
//! mode.
//!
//! Three layers of guarantees, complementing `kernel_equivalence.rs` (which
//! pins the scalar backend's strict bit-identity):
//!
//! 1. **Remainder-lane sweep** — every kernel over exhaustive small shapes
//!    (`dim`/`key_dim`/context length `0..=17`, covering 1, primes, and the
//!    4-lane block boundaries), scalar backend bit-compared against the
//!    straight-line formula and the SIMD backend against its own fixed-order
//!    lane oracle. Tail handling is where vector ports rot; this pins it
//!    before and after.
//! 2. **SIMD divergence bound** — the SIMD backend is deliberately *not*
//!    bit-identical to the scalar oracle (tree-reduced dots, polynomial
//!    `exp`, combined-head mix). This suite measures the divergence of whole
//!    forward passes across the configuration sweep and asserts the measured
//!    ULP bound, so any regression that widens the gap fails loudly — in
//!    debug and (via CI) release codegen.
//! 3. **Causal mode** — the causal fused path (both backends) against the
//!    causal reference, the full-visibility identities (a single-token
//!    prompt, and the last row of a one-layer stack, are mask-independent),
//!    and proof that the mask actually changes a registry scenario's
//!    attention read-out.

use std::sync::Arc;

use rage_datasets::us_open;
use rage_llm::cache::PrefixCache;
use rage_llm::kernels::{self, KernelBackend};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::tokenizer::{PromptToken, Segment, SimTokenizer, TokenizedPrompt};
use rage_llm::transformer::{AttentionRecord, Transformer, TransformerConfig};
use rage_llm::{LanguageModel, LlmInput, SourceText};

/// SplitMix64 step — the workspace's standard deterministic mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_vec(state: &mut u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
        .collect()
}

/// ULP distance between two finite doubles of the same sign (0 for equal).
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
}

/// The same configuration sweep the bit-identity suite uses.
fn config_sweep() -> Vec<TransformerConfig> {
    let mut configs = Vec::new();
    for (dim, heads, layers) in [
        (32, 2, 2),
        (32, 3, 2),
        (8, 1, 1),
        (17, 4, 3),
        (3, 2, 2),
        (64, 8, 1),
    ] {
        configs.push(TransformerConfig {
            layers,
            heads,
            dim,
            temperature: 0.35,
            seed: 0x5eed_1234 ^ ((dim as u64) << 8) ^ heads as u64,
            causal: false,
        });
    }
    configs.push(TransformerConfig {
        temperature: 0.05,
        ..TransformerConfig::default()
    });
    configs.push(TransformerConfig {
        temperature: 3.0,
        ..TransformerConfig::default()
    });
    configs
}

const VOCABULARY: &[&str] = &[
    "who", "won", "the", "most", "titles", "federer", "djokovic", "nadal", "open", "grand", "slam",
    "in", "wins", "clay", "court", "year", "champion", "recent", "first", "weeks",
];

fn random_words(state: &mut u64, len: usize) -> String {
    (0..len)
        .map(|_| VOCABULARY[(splitmix64(state) % VOCABULARY.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

fn random_input(state: &mut u64) -> LlmInput {
    let question_len = 2 + (splitmix64(state) % 5) as usize;
    let question = random_words(state, question_len);
    let num_sources = (splitmix64(state) % 6) as usize;
    let sources = (0..num_sources)
        .map(|i| {
            let len = 1 + (splitmix64(state) % 9) as usize;
            SourceText::new(format!("s{i}"), random_words(state, len))
        })
        .collect();
    LlmInput::new(question, sources)
}

/// A synthetic prompt of exactly `n` tokens (no tokenizer involved), so
/// context length can be swept exhaustively including 0 and 1.
fn prompt_of_len(n: usize, state: &mut u64) -> TokenizedPrompt {
    let tokens = (0..n)
        .map(|_| PromptToken {
            id: 8 + (splitmix64(state) % 40) as u32,
            segment: Segment::Question,
        })
        .collect();
    TokenizedPrompt {
        tokens,
        source_spans: Vec::new(),
        question_span: (0, n),
    }
}

// --------------------------------------------------------------------------
// 1. Remainder-lane sweep: exhaustive small shapes for every kernel.
// --------------------------------------------------------------------------

/// Straight-line oracle for the SIMD tree reduction: lane `l` accumulates
/// elements `l, l+4, l+8, …` (remainder elements land in lanes `0..rem`),
/// partials combine as `(a0+a1)+(a2+a3)`. Any change to the lane order in
/// `kernels::simd` shows up here as a bit difference.
fn tree_dot_oracle(a: &[f64], b: &[f64]) -> f64 {
    // Lanes start at `-0.0`, the float-sum identity, matching the kernel.
    let mut acc = [-0.0f64; 4];
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        acc[i % 4] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

fn sequential_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[test]
fn small_dimension_sweep_scores_and_matvec() {
    let mut state = 0x5111;
    for n in 0..=17usize {
        for key_dim in 0..=17usize {
            let query = random_vec(&mut state, key_dim);
            let keys = random_vec(&mut state, n * key_dim);
            let scale = 1.25;

            let mut scalar = vec![f64::NAN; n];
            KernelBackend::Scalar.scores_into(&query, &keys, key_dim, scale, &mut scalar);
            let mut simd = vec![f64::NAN; n];
            KernelBackend::Simd.scores_into(&query, &keys, key_dim, scale, &mut simd);

            for k in 0..n {
                let row = &keys[k * key_dim..(k + 1) * key_dim];
                let seq = sequential_dot(&query, row) * scale;
                let tree = tree_dot_oracle(&query, row) * scale;
                assert_eq!(
                    scalar[k].to_bits(),
                    seq.to_bits(),
                    "scalar n={n} key_dim={key_dim} k={k}"
                );
                assert_eq!(
                    simd[k].to_bits(),
                    tree.to_bits(),
                    "simd lane order n={n} key_dim={key_dim} k={k}"
                );
            }

            // matvec is the same computation with rows/cols naming.
            if n > 0 {
                let mut out = vec![f64::NAN; n];
                KernelBackend::Simd.matvec_into(&keys, n, key_dim, &query, &mut out);
                for (k, o) in out.iter().enumerate() {
                    let tree = tree_dot_oracle(&query, &keys[k * key_dim..(k + 1) * key_dim]);
                    assert_eq!(
                        o.to_bits(),
                        tree.to_bits(),
                        "matvec n={n} key_dim={key_dim}"
                    );
                }
            }
        }
    }
}

#[test]
fn small_dimension_sweep_softmax() {
    let mut state = 0x50F;
    for n in 0..=17usize {
        let scores = random_vec(&mut state, n)
            .iter()
            .map(|x| x * 9.0)
            .collect::<Vec<_>>();

        // Scalar backend: bit-identical to the straight-line reference.
        let mut scalar = scores.clone();
        let scalar_sum = KernelBackend::Scalar.softmax_exp_inplace(&mut scalar);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut reference = scores.clone();
        let mut ref_sum = 0.0;
        for s in reference.iter_mut() {
            *s = (*s - max).exp();
            ref_sum += *s;
        }
        assert_eq!(scalar_sum.to_bits(), ref_sum.to_bits(), "n={n}");
        for (a, b) in scalar.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
        }

        // SIMD backend: same maximum (order-insensitive), each exponential
        // within the polynomial's ULP bound, weights still a distribution.
        let mut simd = scores.clone();
        let simd_sum = KernelBackend::Simd.softmax_exp_inplace(&mut simd);
        if n == 0 {
            assert_eq!(simd_sum, 0.0);
            continue;
        }
        for (k, (a, b)) in simd.iter().zip(&reference).enumerate() {
            assert!(
                ulp_distance(*a, *b) <= 8,
                "n={n} k={k}: simd exp {a:e} vs libm {b:e}"
            );
        }
        let mut weights = simd.clone();
        KernelBackend::Simd.weights_inplace(&mut weights, simd_sum);
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "n={n}: {total}");
    }
}

#[test]
fn small_dimension_sweep_mix_and_residual() {
    let mut state = 0x3117;
    for n in 0..=17usize {
        for dim in 1..=17usize {
            let weights = random_vec(&mut state, n)
                .iter()
                .map(|x| x.abs())
                .collect::<Vec<_>>();
            let values = random_vec(&mut state, n * dim);
            for heads in [1.0f64, 2.0, 3.0] {
                let mut reference = random_vec(&mut state, dim);
                let mut fused = reference.clone();
                for k in 0..n {
                    for d in 0..dim {
                        reference[d] += weights[k] * values[k * dim + d] / heads;
                    }
                }
                // Scalar is bitwise the reference at every head count. The
                // SIMD backend folds `1/heads` into the weights: exact (so
                // still bitwise) for the power-of-two counts, ULP-divergent
                // for heads=3 where the fold itself rounds.
                for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                    let simd_divergent =
                        backend == KernelBackend::Simd && heads.log2().fract() != 0.0;
                    let mut out = fused.clone();
                    backend.mix_accumulate(&weights, &values, dim, heads, &mut out);
                    for d in 0..dim {
                        if simd_divergent {
                            // The weight fold rounds once per key, so the
                            // accumulated error is bounded by ~1 ULP of each
                            // |term| — an absolute bound, because the sum
                            // itself may cancel to any magnitude.
                            assert!(
                                (out[d] - reference[d]).abs() <= 1e-13,
                                "{backend:?} n={n} dim={dim} heads={heads} d={d}: {} vs {}",
                                out[d],
                                reference[d]
                            );
                        } else {
                            assert_eq!(
                                out[d].to_bits(),
                                reference[d].to_bits(),
                                "{backend:?} n={n} dim={dim} heads={heads} d={d}"
                            );
                        }
                    }
                }
                fused.clear();
            }

            // residual_normalize over n rows of width dim, both backends.
            let hidden = random_vec(&mut state, n * dim);
            let mixed = random_vec(&mut state, n * dim);
            let mut reference = hidden.clone();
            for t in 0..n {
                let row = &mut reference[t * dim..(t + 1) * dim];
                for d in 0..dim {
                    row[d] = 0.5 * row[d] + 0.5 * mixed[t * dim + d];
                }
                rage_llm::embedding::normalize(row);
            }
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let mut out = hidden.clone();
                backend.residual_normalize(&mut out, &mixed, dim);
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{backend:?} n={n} dim={dim}");
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// 2. The SIMD divergence bound over whole forward passes.
// --------------------------------------------------------------------------

/// Maximum ULP distance between corresponding attention weights.
fn max_attention_ulp(a: &AttentionRecord, b: &AttentionRecord) -> u64 {
    assert_eq!(a.seq_len, b.seq_len);
    assert_eq!(a.layers.len(), b.layers.len());
    let mut worst = 0u64;
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        for (ha, hb) in la.heads.iter().zip(&lb.heads) {
            for (x, y) in ha.data.iter().zip(&hb.data) {
                assert!(x.is_finite() && y.is_finite(), "{x} vs {y}");
                worst = worst.max(ulp_distance(*x, *y));
            }
        }
    }
    worst
}

/// The documented divergence bound: across the configuration sweep ×
/// randomised prompts, SIMD attention weights stay within this many ULPs of
/// the scalar oracle's. Measured worst case on this sweep is ~2k ULP
/// (≈ 4.4e-13 relative); the assertion leaves headroom for codegen variation
/// without letting a real divergence (a wrong lane order is millions of
/// ULPs) through. Quoted in the `kernels` module docs — keep in sync.
const SIMD_ULP_BOUND: u64 = 16_384;

#[test]
fn simd_forward_divergence_from_scalar_is_ulp_bounded() {
    let tokenizer = SimTokenizer::new();
    let mut state = 0xD1FF_B0B0;
    let mut worst = 0u64;
    for causal in [false, true] {
        for mut config in config_sweep() {
            config.causal = causal;
            let scalar = Transformer::new(config).with_backend(KernelBackend::Scalar);
            let simd = Transformer::new(config).with_backend(KernelBackend::Simd);
            for round in 0..6 {
                let input = random_input(&mut state);
                let prompt = tokenizer.tokenize_prompt(&input);
                let a = scalar.forward(&prompt);
                let b = simd.forward(&prompt);
                let ulp = max_attention_ulp(&a, &b);
                worst = worst.max(ulp);
                assert!(
                    ulp <= SIMD_ULP_BOUND,
                    "dim={} heads={} layers={} causal={causal} round={round}: {ulp} ULP",
                    config.dim,
                    config.heads,
                    config.layers
                );
            }
        }
    }
    // The bound must stay *meaningful*: if the backends ever became
    // bit-identical this suite should be folded into kernel_equivalence.
    assert!(worst > 0, "SIMD backend unexpectedly bit-identical");
}

#[test]
fn simd_forward_is_deterministic_and_cache_invariant() {
    // Under the SIMD backend, cached and uncached forwards must still be
    // bit-identical to each other (the backend participates in cache fills
    // via the backend-aware projection).
    let tokenizer = SimTokenizer::new();
    let transformer =
        Transformer::new(TransformerConfig::default()).with_backend(KernelBackend::Simd);
    let cache = PrefixCache::default();
    let mut state = 0xCAC4E;
    for round in 0..8 {
        let input = random_input(&mut state);
        let prompt = tokenizer.tokenize_prompt(&input);
        let plain = transformer.forward(&prompt);
        let cached = transformer.forward_cached(&prompt, Some(&cache));
        let again = transformer.forward_cached(&prompt, Some(&cache));
        assert_eq!(plain, cached, "round {round}: cold cache changed bits");
        assert_eq!(plain, again, "round {round}: warm cache changed bits");
    }
    assert!(cache.stats().hits > 0, "warm rounds must hit the cache");
}

#[test]
fn context_length_sweep_small_prompts_both_backends() {
    // Context lengths 0..=17 (empty prompt, single token, block boundaries,
    // primes) through whole forward passes: scalar stays bit-identical to
    // the reference, SIMD stays within the divergence bound, and attention
    // rows remain distributions over the visible prefix.
    let mut state = 0xC047EC7;
    for causal in [false, true] {
        let config = TransformerConfig {
            causal,
            ..TransformerConfig::default()
        };
        let scalar = Transformer::new(config).with_backend(KernelBackend::Scalar);
        let simd = Transformer::new(config).with_backend(KernelBackend::Simd);
        for n in 0..=17usize {
            let prompt = prompt_of_len(n, &mut state);
            let reference = scalar.forward_reference(&prompt, None);
            let fused = scalar.forward(&prompt);
            assert_eq!(fused, reference, "scalar causal={causal} n={n}");
            let vectored = simd.forward(&prompt);
            if n == 0 {
                assert_eq!(vectored.seq_len, 0);
                continue;
            }
            assert!(
                max_attention_ulp(&reference, &vectored) <= SIMD_ULP_BOUND,
                "simd causal={causal} n={n}"
            );
            for layer in &vectored.layers {
                for head in &layer.heads {
                    for q in 0..n {
                        let visible = if causal { q + 1 } else { n };
                        let row = head.row(q);
                        let sum: f64 = row[..visible].iter().sum();
                        assert!((sum - 1.0).abs() < 1e-9, "causal={causal} n={n} q={q}");
                        assert!(row[visible..].iter().all(|w| *w == 0.0));
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// 3. Causal mode.
// --------------------------------------------------------------------------

#[test]
fn causal_fused_matches_causal_reference_bitwise() {
    // The scalar fused causal path against the causal reference, across the
    // sweep — the same contract the bidirectional path has.
    let tokenizer = SimTokenizer::new();
    let mut state = 0xCA5A_1111;
    for mut config in config_sweep() {
        config.causal = true;
        let transformer = Transformer::new(config).with_backend(KernelBackend::Scalar);
        for round in 0..6 {
            let input = random_input(&mut state);
            let prompt = tokenizer.tokenize_prompt(&input);
            let fused = transformer.forward(&prompt);
            let reference = transformer.forward_reference(&prompt, None);
            assert_eq!(
                fused, reference,
                "dim={} heads={} round={round}",
                config.dim, config.heads
            );
        }
    }
}

#[test]
fn full_visibility_causal_is_bit_identical_to_non_causal() {
    // Where the causal mask hides nothing, masked and unmasked attention are
    // the same computation and must agree bitwise:
    // (a) a single-token prompt — every row's prefix is the whole sequence;
    // (b) the last query row of a one-layer stack — its visible prefix is
    //     the whole sequence, and with a single layer no masked row can
    //     perturb its inputs.
    let mut state = 0xF011;
    let base = TransformerConfig {
        layers: 1,
        ..TransformerConfig::default()
    };
    let causal_config = TransformerConfig {
        causal: true,
        ..base
    };
    for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
        let plain = Transformer::new(base).with_backend(backend);
        let masked = Transformer::new(causal_config).with_backend(backend);

        let single = prompt_of_len(1, &mut state);
        assert_eq!(
            plain.forward(&single),
            masked.forward(&single),
            "{backend:?}: single-token prompt must be mask-independent"
        );

        for n in [2usize, 5, 12] {
            let prompt = prompt_of_len(n, &mut state);
            let a = plain.forward(&prompt);
            let b = masked.forward(&prompt);
            let last_plain = a.layers[0].heads.iter().map(|h| h.row(n - 1).to_vec());
            let last_masked = b.layers[0].heads.iter().map(|h| h.row(n - 1).to_vec());
            for (h, (x, y)) in last_plain.zip(last_masked).enumerate() {
                let bits_x: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                let bits_y: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_x, bits_y, "{backend:?} n={n} head={h}: last row");
            }
        }
    }
}

#[test]
fn causal_masking_changes_registry_scenario_attention() {
    // The mask must be observable end to end: the us_open registry scenario's
    // per-source attention read-out changes when the model goes causal, and
    // the causal read-out is still a usable distribution (the aggregation
    // switch in SimLlm::effective_attention keeps it from collapsing to
    // zero despite the question-first prompt layout).
    let scenario = us_open::scenario();
    let input = LlmInput::new(
        scenario.question.clone(),
        scenario
            .corpus
            .iter()
            .map(|doc| SourceText::new(doc.id.clone(), doc.text.clone()))
            .collect::<Vec<_>>(),
    );

    let plain = SimLlm::new(SimLlmConfig::default());
    let causal_config = SimLlmConfig {
        transformer: TransformerConfig {
            causal: true,
            ..TransformerConfig::default()
        },
        ..SimLlmConfig::default()
    };
    let causal = SimLlm::new(causal_config);

    let a = plain.generate(&input);
    let b = causal.generate(&input);
    assert_eq!(a.source_attention.len(), b.source_attention.len());
    assert_ne!(
        a.source_attention, b.source_attention,
        "causal masking must change the attention read-out"
    );
    let causal_total: f64 = b.source_attention.iter().sum();
    assert!(
        (causal_total - 1.0).abs() < 1e-9,
        "causal attention must stay a distribution, got total {causal_total}"
    );
    assert!(
        b.source_attention.iter().any(|w| *w > 0.0),
        "causal attention must not collapse to zero"
    );
}

#[test]
fn causal_generation_is_deterministic_across_backends_and_caches() {
    let causal_config = SimLlmConfig {
        transformer: TransformerConfig {
            causal: true,
            ..TransformerConfig::default()
        },
        ..SimLlmConfig::default()
    };
    let scenario = us_open::scenario();
    let input = LlmInput::new(
        scenario.question.clone(),
        scenario
            .corpus
            .iter()
            .take(4)
            .map(|doc| SourceText::new(doc.id.clone(), doc.text.clone()))
            .collect::<Vec<_>>(),
    );
    for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
        let plain = SimLlm::new(causal_config.clone()).with_kernel_backend(backend);
        let cached = SimLlm::new(causal_config.clone())
            .with_kernel_backend(backend)
            .with_prefix_cache(Arc::new(PrefixCache::default()));
        let a = plain.generate(&input);
        let b = cached.generate(&input);
        let c = cached.generate(&input);
        assert_eq!(a, b, "{backend:?}: cold cache changed a causal generation");
        assert_eq!(a, c, "{backend:?}: warm cache changed a causal generation");
    }
}

#[test]
fn simd_default_follows_feature_flag_in_models() {
    let expected = if cfg!(feature = "simd") {
        KernelBackend::Simd
    } else {
        KernelBackend::Scalar
    };
    assert_eq!(
        SimLlm::new(SimLlmConfig::default()).kernel_backend(),
        expected
    );
    assert_eq!(kernels::KernelBackend::default(), expected);
}
