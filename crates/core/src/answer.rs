//! Answer normalisation.
//!
//! "Before comparing against the original answer, we convert answers to lowercase,
//! remove punctuation, and trim whitespace" (§II-C). Counterfactual detection and
//! insight grouping both compare answers through [`normalize_answer`].

/// Normalise an answer string: lowercase, strip punctuation, collapse whitespace.
pub fn normalize_answer(answer: &str) -> String {
    let lowered = answer.to_lowercase();
    let mut out = String::with_capacity(lowered.len());
    let mut last_was_space = true;
    for ch in lowered.chars() {
        if ch.is_alphanumeric() {
            out.push(ch);
            last_was_space = false;
        } else if (ch.is_whitespace() || ch.is_ascii_punctuation()) && !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
        // Other characters (symbols, emoji) are dropped entirely.
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Whether two answers are equal after normalisation.
pub fn answers_equal(a: &str, b: &str) -> bool {
    normalize_answer(a) == normalize_answer(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_trims() {
        assert_eq!(normalize_answer("  Roger Federer  "), "roger federer");
    }

    #[test]
    fn removes_punctuation() {
        assert_eq!(normalize_answer("Roger Federer."), "roger federer");
        assert_eq!(normalize_answer("Djokovic!"), "djokovic");
        assert_eq!(normalize_answer("\"Coco Gauff\""), "coco gauff");
    }

    #[test]
    fn collapses_internal_whitespace() {
        assert_eq!(normalize_answer("Novak   Djokovic"), "novak djokovic");
        assert_eq!(normalize_answer("Novak\tDjokovic\n"), "novak djokovic");
    }

    #[test]
    fn numbers_survive() {
        assert_eq!(normalize_answer(" 5 "), "5");
        assert_eq!(normalize_answer("5 times"), "5 times");
    }

    #[test]
    fn punctuation_between_words_becomes_a_separator() {
        assert_eq!(normalize_answer("Gauff,Coco"), "gauff coco");
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert_eq!(normalize_answer(""), "");
        assert_eq!(normalize_answer("?!."), "");
    }

    #[test]
    fn equality_is_normalised() {
        assert!(answers_equal("Roger Federer", "roger federer!"));
        assert!(answers_equal(" 5 ", "5"));
        assert!(!answers_equal("Roger Federer", "Novak Djokovic"));
    }
}
