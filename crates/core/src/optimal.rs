//! Optimal permutations via k-best assignment (§II-C, experiment E6).
//!
//! Placing `k` sources into `k` context positions to maximise (or minimise)
//! the total `relevance × expected-position-attention` is an instance of the
//! linear assignment problem. The top-`s` placements are found with ranked
//! enumeration over the Hungarian algorithm
//! ([`rage_assignment::kbest`]) in `O(s·k³)` — against a naive `O(k!)`
//! baseline ([`naive_orders`]) that scores every permutation, used for
//! cross-checking and as the benchmark strawman.
//!
//! Relevance comes from a [`ScoringMethod`]; expected attention per position
//! comes from a [`PositionBiasProfile`] (the paper's "predefined V-shaped
//! distribution" knob).

use serde::{Deserialize, Serialize};

use rage_assignment::hungarian::CostMatrix;
use rage_assignment::kbest::{k_best_assignments, k_best_max_assignments};
use rage_assignment::kendall::kendall_tau;
use rage_assignment::permutations::PermutationIter;

use rage_llm::position_bias::PositionBiasProfile;

use crate::budget::{Completeness, SearchBudget};
use crate::error::RageError;
use crate::evaluator::Evaluate;
use crate::perturbation::Perturbation;
use crate::scoring::ScoringMethod;

/// Whether to maximise or minimise the placement objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OrderObjective {
    /// The most answer-supporting placements (relevant sources in
    /// high-attention positions).
    #[default]
    Best,
    /// The most answer-degrading placements (relevant sources buried in
    /// low-attention positions) — the adversarial diagnostic.
    Worst,
}

/// Configuration of the optimal-permutation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalConfig {
    /// Relevance estimator for the sources.
    pub scoring: ScoringMethod,
    /// Expected attention per context position.
    pub position_bias: PositionBiasProfile,
    /// How many ranked placements to return (`s`).
    pub num_orders: usize,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        Self {
            scoring: ScoringMethod::default(),
            position_bias: PositionBiasProfile::default(),
            num_orders: 3,
        }
    }
}

impl OptimalConfig {
    /// Set the relevance estimator (builder style).
    pub fn with_scoring(mut self, scoring: ScoringMethod) -> Self {
        self.scoring = scoring;
        self
    }

    /// Set the position-bias profile (builder style).
    pub fn with_position_bias(mut self, profile: PositionBiasProfile) -> Self {
        self.position_bias = profile;
        self
    }

    /// Set the number of ranked placements (builder style).
    pub fn with_num_orders(mut self, s: usize) -> Self {
        self.num_orders = s;
        self
    }
}

/// One ranked placement of the sources into context positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalPermutation {
    /// Entry `p` is the context position of the source placed at prompt
    /// position `p` (the [`Perturbation::Permutation`] convention).
    pub order: Vec<usize>,
    /// Total `relevance × position-weight` of this placement.
    pub objective: f64,
    /// The model's answer under this placement.
    pub answer: String,
    /// Kendall's tau between this order and the original context order.
    pub tau: f64,
}

/// The per-position weights of a profile for a context of `k` sources.
pub fn position_weights(profile: &PositionBiasProfile, k: usize) -> Vec<f64> {
    (0..k).map(|p| profile.weight(p, k)).collect()
}

/// The placement profit matrix: `profit[source][position] =
/// score[source] × weight[position]`.
pub fn placement_profits(scores: &[f64], weights: &[f64]) -> CostMatrix {
    let k = scores.len();
    debug_assert_eq!(weights.len(), k);
    CostMatrix::from_fn(k, |source, position| scores[source] * weights[position])
}

/// The objective value of one explicit order under given scores and weights.
pub fn order_objective(scores: &[f64], weights: &[f64], order: &[usize]) -> f64 {
    order
        .iter()
        .enumerate()
        .map(|(position, &source)| scores[source] * weights[position])
        .sum()
}

fn assignment_to_order(assignment: &[usize]) -> Vec<usize> {
    // assignment[source] = position  →  order[position] = source.
    let mut order = vec![0usize; assignment.len()];
    for (source, &position) in assignment.iter().enumerate() {
        order[position] = source;
    }
    order
}

/// Evaluate each `(objective, order)` pair in one batch and assemble the
/// ranked results (no early exit, so the whole list is a single submission).
fn evaluate_orders<E: Evaluate + ?Sized>(
    evaluator: &E,
    scored_orders: Vec<(f64, Vec<usize>)>,
) -> Result<Vec<OptimalPermutation>, RageError> {
    let batch: Vec<Perturbation> = scored_orders
        .iter()
        .map(|(_, order)| Perturbation::Permutation(order.clone()))
        .collect();
    let results = evaluator.evaluate_batch(&batch);
    let mut orders = Vec::with_capacity(scored_orders.len());
    for ((total, order), result) in scored_orders.into_iter().zip(results) {
        let answer = result?.answer;
        let tau = kendall_tau(&order);
        orders.push(OptimalPermutation {
            order,
            objective: total,
            answer,
            tau,
        });
    }
    Ok(orders)
}

/// The top-`s` placements by ranked assignment enumeration (`O(s·k³)`).
///
/// Each returned order is evaluated against the model (answers come from the
/// evaluator's cache when repeated); the whole ranking is submitted as one
/// evaluation batch. Orders arrive best-first for [`OrderObjective::Best`]
/// and worst-first for [`OrderObjective::Worst`].
pub fn ranked_orders<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &OptimalConfig,
    objective: OrderObjective,
) -> Result<Vec<OptimalPermutation>, RageError> {
    ranked_orders_with_budget(evaluator, config, objective, &SearchBudget::UNLIMITED)
        .map(|(orders, _)| orders)
}

/// Like [`ranked_orders`] but under a [`SearchBudget`], returning the ranked
/// prefix it could afford together with a [`Completeness`] marker.
///
/// With an unlimited budget the whole ranking is submitted as one evaluation
/// batch, exactly like [`ranked_orders`]. Under a budget the ranking is
/// evaluated in windows of [`Evaluate::preferred_batch`], the budget is
/// checked before each window, and a truncated run returns the best-first (or
/// worst-first) prefix evaluated so far.
pub fn ranked_orders_with_budget<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &OptimalConfig,
    objective: OrderObjective,
    budget: &SearchBudget,
) -> Result<(Vec<OptimalPermutation>, Completeness), RageError> {
    let k = evaluator.k();
    if k == 0 || config.num_orders == 0 {
        return Ok((Vec::new(), Completeness::Exact));
    }
    let scores = config.scoring.source_scores(evaluator)?;
    let weights = position_weights(&config.position_bias, k);
    let profits = placement_profits(&scores, &weights);
    let assignments = match objective {
        OrderObjective::Best => k_best_max_assignments(&profits, config.num_orders),
        OrderObjective::Worst => k_best_assignments(&profits, config.num_orders),
    };
    let scored_orders: Vec<(f64, Vec<usize>)> = assignments
        .into_iter()
        .map(|a| (a.total, assignment_to_order(&a.assignment)))
        .collect();

    if budget.is_unlimited() {
        // Single submission — identical batching (and answers) to the
        // historical unbounded path.
        return Ok((
            evaluate_orders(evaluator, scored_orders)?,
            Completeness::Exact,
        ));
    }

    let window = evaluator.preferred_batch().max(1);
    let mut orders = Vec::with_capacity(scored_orders.len());
    let mut next = 0usize;
    while next < scored_orders.len() {
        if let Some(stop) = budget.check(next) {
            return Ok((orders, Completeness::from_stop(stop, next, 0)));
        }
        let mut end = (next + window).min(scored_orders.len());
        if let Some(remaining) = budget.remaining(next) {
            end = end.min(next + remaining);
        }
        let chunk: Vec<(f64, Vec<usize>)> = scored_orders[next..end].to_vec();
        orders.extend(evaluate_orders(evaluator, chunk)?);
        next = end;
    }
    Ok((orders, Completeness::Exact))
}

/// Convenience wrapper: the top placements ([`OrderObjective::Best`]).
pub fn best_orders<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &OptimalConfig,
) -> Result<Vec<OptimalPermutation>, RageError> {
    ranked_orders(evaluator, config, OrderObjective::Best)
}

/// Convenience wrapper: the bottom placements ([`OrderObjective::Worst`]).
pub fn worst_orders<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &OptimalConfig,
) -> Result<Vec<OptimalPermutation>, RageError> {
    ranked_orders(evaluator, config, OrderObjective::Worst)
}

/// The naive `O(k!)` baseline: score every permutation and sort.
///
/// Produces the same objective sequence as [`ranked_orders`]; only usable for
/// small `k`. Ties between equal-objective orders are broken lexicographically,
/// so the *orders* may differ from the ranked enumeration's tie order while the
/// *objectives* always agree.
pub fn naive_orders<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &OptimalConfig,
    objective: OrderObjective,
) -> Result<Vec<OptimalPermutation>, RageError> {
    let k = evaluator.k();
    if k == 0 || config.num_orders == 0 {
        return Ok(Vec::new());
    }
    let scores = config.scoring.source_scores(evaluator)?;
    let weights = position_weights(&config.position_bias, k);

    let mut all: Vec<(f64, Vec<usize>)> = PermutationIter::new(k)
        .map(|order| (order_objective(&scores, &weights, &order), order))
        .collect();
    all.sort_by(|a, b| {
        let primary = match objective {
            OrderObjective::Best => b.0.total_cmp(&a.0),
            OrderObjective::Worst => a.0.total_cmp(&b.0),
        };
        primary.then_with(|| a.1.cmp(&b.1))
    });
    all.truncate(config.num_orders);

    evaluate_orders(evaluator, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::evaluator::Evaluator;
    use rage_assignment::permutations::is_permutation;
    use rage_llm::{Generation, LanguageModel, LlmInput};
    use rage_retrieval::Document;
    use std::sync::Arc;

    struct FirstSourceLlm;

    impl LanguageModel for FirstSourceLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            let answer = input
                .sources
                .first()
                .map(|s| s.id.clone())
                .unwrap_or_else(|| "nothing".to_string());
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    fn evaluator(k: usize) -> Evaluator {
        let docs: Vec<Document> = (0..k)
            .map(|i| {
                let id = char::from(b'a' + i as u8).to_string();
                Document::new(id.clone(), "", format!("text {id}"))
            })
            .collect();
        // from_documents assigns descending retrieval scores k, k-1, .., 1.
        Evaluator::new(
            Arc::new(FirstSourceLlm),
            Context::from_documents("q", &docs),
        )
    }

    fn config() -> OptimalConfig {
        OptimalConfig::default()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_position_bias(PositionBiasProfile::LostInTheMiddle { depth: 0.7 })
    }

    #[test]
    fn best_orders_are_ranked_and_valid() {
        let ev = evaluator(4);
        let best = best_orders(&ev, &config().with_num_orders(6)).unwrap();
        assert_eq!(best.len(), 6);
        for pair in best.windows(2) {
            assert!(pair[0].objective >= pair[1].objective - 1e-9);
        }
        for op in &best {
            assert!(is_permutation(&op.order, 4));
            assert!((-1.0..=1.0).contains(&op.tau));
            assert!(!op.answer.is_empty());
        }
    }

    #[test]
    fn best_beats_worst() {
        let ev = evaluator(5);
        let best = best_orders(&ev, &config()).unwrap();
        let worst = worst_orders(&ev, &config()).unwrap();
        assert!(best[0].objective >= worst[0].objective);
        // Worst-first ordering is non-decreasing.
        for pair in worst.windows(2) {
            assert!(pair[0].objective <= pair[1].objective + 1e-9);
        }
    }

    #[test]
    fn ranked_agrees_with_naive_on_objectives() {
        for k in 2..=6usize {
            let ev = evaluator(k);
            let cfg = config().with_num_orders(8);
            for objective in [OrderObjective::Best, OrderObjective::Worst] {
                let ranked = ranked_orders(&ev, &cfg, objective).unwrap();
                let naive = naive_orders(&ev, &cfg, objective).unwrap();
                assert_eq!(ranked.len(), naive.len(), "k={k}");
                for (r, n) in ranked.iter().zip(naive.iter()) {
                    assert!(
                        (r.objective - n.objective).abs() < 1e-9,
                        "k={k}: ranked {} vs naive {}",
                        r.objective,
                        n.objective
                    );
                }
            }
        }
    }

    #[test]
    fn u_shaped_bias_places_top_sources_at_the_edges() {
        // Descending scores [5,4,3,2,1] and a deep U-shape: the best placement
        // puts the two strongest sources at the two ends.
        let ev = evaluator(5);
        let best = best_orders(&ev, &config().with_num_orders(1)).unwrap();
        let order = &best[0].order;
        let edge_sources = [order[0], order[4]];
        assert!(edge_sources.contains(&0), "order {order:?}");
        assert!(edge_sources.contains(&1), "order {order:?}");
    }

    #[test]
    fn uniform_bias_makes_every_order_equal() {
        let ev = evaluator(3);
        let cfg = config()
            .with_position_bias(PositionBiasProfile::Uniform)
            .with_num_orders(6);
        let best = best_orders(&ev, &cfg).unwrap();
        assert_eq!(best.len(), 6);
        let first = best[0].objective;
        assert!(best.iter().all(|op| (op.objective - first).abs() < 1e-9));
    }

    #[test]
    fn answers_follow_the_placement() {
        let ev = evaluator(3);
        let best = best_orders(&ev, &config().with_num_orders(2)).unwrap();
        for op in &best {
            // FirstSourceLlm answers with the id of the source in position 0.
            let expected = char::from(b'a' + op.order[0] as u8).to_string();
            assert_eq!(op.answer, expected);
        }
    }

    #[test]
    fn degenerate_requests() {
        let ev = evaluator(3);
        assert!(best_orders(&ev, &config().with_num_orders(0))
            .unwrap()
            .is_empty());
        // More orders than 3! exist.
        let all = best_orders(&ev, &config().with_num_orders(100)).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn budgeted_ranking_matches_the_unlimited_prefix() {
        let ev = evaluator(4);
        let cfg = config().with_num_orders(6);
        let full = ranked_orders(&ev, &cfg, OrderObjective::Best).unwrap();
        let (capped, marker) = ranked_orders_with_budget(
            &evaluator(4),
            &cfg,
            OrderObjective::Best,
            &SearchBudget::max_evaluations(2),
        )
        .unwrap();
        assert_eq!(capped.len(), 2);
        assert_eq!(capped.as_slice(), &full[..2]);
        assert_eq!(
            marker,
            Completeness::BudgetTruncated {
                evaluated: 2,
                pruned: 0
            }
        );

        // An unlimited budget reproduces the plain ranking exactly.
        let (all, marker) = ranked_orders_with_budget(
            &evaluator(4),
            &cfg,
            OrderObjective::Best,
            &SearchBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(all, full);
        assert_eq!(marker, Completeness::Exact);
    }

    #[test]
    fn expired_deadline_returns_an_empty_ranking() {
        let ev = evaluator(3);
        let deadline = crate::budget::Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let budget = SearchBudget::UNLIMITED.with_deadline(deadline);
        let (orders, marker) =
            ranked_orders_with_budget(&ev, &config(), OrderObjective::Best, &budget).unwrap();
        assert!(orders.is_empty());
        assert!(matches!(marker, Completeness::DeadlineTruncated { .. }));
    }

    #[test]
    fn objective_helper_matches_matrix_total() {
        let scores = [3.0, 1.0, 2.0];
        let weights = [1.0, 0.5, 0.9];
        let identity = [0, 1, 2];
        let expected = 3.0 * 1.0 + 1.0 * 0.5 + 2.0 * 0.9;
        assert!((order_objective(&scores, &weights, &identity) - expected).abs() < 1e-12);
    }
}
