//! The retrieval-augmented generation pipeline.
//!
//! [`RagPipeline`] wires the three paper components together (Figure 1): the retrieval
//! model `M` (BM25 over the local index), the prompt assembly, and the LLM `L`. Its
//! [`ask`](RagPipeline::ask) method performs one full RAG round trip and returns the
//! retrieved context alongside the model's answer, ready for explanation.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rage_llm::{Generation, LanguageModel};
use rage_retrieval::{Retriever, Searcher};

use crate::context::Context;
use crate::error::RageError;
use crate::evaluator::{Evaluator, ParallelEvaluator};
use crate::prompt::PromptBuilder;

/// The answer of one RAG round trip, with full provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RagResponse {
    /// The retrieved context `Dq`.
    pub context: Context,
    /// The rendered prompt `p` that was (conceptually) sent to the LLM.
    pub prompt_text: String,
    /// The model's generation (answer, response text, attention read-out).
    pub generation: Generation,
}

impl RagResponse {
    /// The short answer string.
    pub fn answer(&self) -> &str {
        &self.generation.answer
    }

    /// Number of retrieved sources.
    pub fn k(&self) -> usize {
        self.context.len()
    }
}

/// Retrieval + prompt assembly + LLM inference.
///
/// Generic over the retrieval backend: any [`Retriever`] plugs in — the single-index
/// [`Searcher`] (the default type parameter, so existing `RagPipeline` signatures keep
/// working unchanged), the partitioned
/// [`ShardedSearcher`](rage_retrieval::ShardedSearcher), or a boxed `dyn Retriever`
/// when the backend is chosen at runtime. Because both shipped backends produce
/// identical rankings (see the `rage_retrieval::sharded` docs), explanations built
/// through a sharded pipeline are equal to the single-index ones.
pub struct RagPipeline<R: Retriever = Searcher> {
    retriever: R,
    llm: Arc<dyn LanguageModel>,
    prompt_builder: PromptBuilder,
}

impl<R: Retriever> RagPipeline<R> {
    /// Build a pipeline from a retrieval backend and a language model.
    pub fn new(retriever: R, llm: Arc<dyn LanguageModel>) -> Self {
        Self {
            retriever,
            llm,
            prompt_builder: PromptBuilder::default(),
        }
    }

    /// Override the prompt template.
    pub fn with_prompt_builder(mut self, builder: PromptBuilder) -> Self {
        self.prompt_builder = builder;
        self
    }

    /// The retrieval component.
    pub fn retriever(&self) -> &R {
        &self.retriever
    }

    /// The retrieval component (alias for [`RagPipeline::retriever`], kept from the
    /// era when the pipeline was hardwired to the single-index [`Searcher`]).
    pub fn searcher(&self) -> &R {
        &self.retriever
    }

    /// The language model (shared handle).
    pub fn llm(&self) -> Arc<dyn LanguageModel> {
        Arc::clone(&self.llm)
    }

    /// The prompt template in use.
    pub fn prompt_builder(&self) -> &PromptBuilder {
        &self.prompt_builder
    }

    /// Retrieve the top-`k` sources for `query` and answer from them.
    ///
    /// Fails with [`RageError::InvalidArgument`] when `k` is zero (an explanation needs
    /// at least one source, so asking for none is a caller error — not a retrieval
    /// miss) and with [`RageError::EmptyContext`] when nothing relevant is retrieved,
    /// since there would be no context to explain.
    pub fn ask(&self, query: &str, k: usize) -> Result<RagResponse, RageError> {
        Self::validate_k(k)?;
        let hits = self.retriever.try_search(query, k)?;
        if hits.is_empty() {
            return Err(RageError::EmptyContext {
                query: query.to_string(),
            });
        }
        let context = Context::from_ranked(query, &hits);
        self.answer_with_context(context)
    }

    /// Reject `k = 0` up front: retrieval would dutifully return zero hits and
    /// surface as [`RageError::EmptyContext`], misdiagnosing a malformed request
    /// as "nothing relevant was retrieved".
    fn validate_k(k: usize) -> Result<(), RageError> {
        if k == 0 {
            return Err(RageError::InvalidArgument {
                reason: "retrieval count k must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// Answer over a caller-supplied context (bypassing retrieval).
    pub fn answer_with_context(&self, context: Context) -> Result<RagResponse, RageError> {
        let sources = context.to_source_texts();
        let question = context.query.clone();
        let prompt_text = self.prompt_builder.render(&question, &sources);
        let input = self.prompt_builder.build_input(&question, &sources);
        let generation = self.llm.generate(&input);
        Ok(RagResponse {
            context,
            prompt_text,
            generation,
        })
    }

    /// Retrieve and answer a whole batch of queries, submitting every prompt
    /// to the model through one `batch_generate` call.
    ///
    /// Retrieval failures are reported per query; all successfully retrieved
    /// contexts still go to the model as a single batch. Responses arrive in
    /// query order and are element-wise identical to what
    /// [`ask`](RagPipeline::ask) would return.
    pub fn ask_many(&self, queries: &[&str], k: usize) -> Vec<Result<RagResponse, RageError>> {
        // Retrieve every context first (cheap), collecting per-query errors.
        let contexts: Vec<Result<Context, RageError>> = queries
            .iter()
            .map(|query| {
                Self::validate_k(k)?;
                let hits = self.retriever.try_search(query, k)?;
                if hits.is_empty() {
                    return Err(RageError::EmptyContext {
                        query: (*query).to_string(),
                    });
                }
                Ok(Context::from_ranked(*query, &hits))
            })
            .collect();

        // One batched inference over the successful retrievals.
        let inputs: Vec<rage_llm::LlmInput> = contexts
            .iter()
            .filter_map(|c| c.as_ref().ok())
            .map(|context| {
                self.prompt_builder
                    .build_input(&context.query, &context.to_source_texts())
            })
            .collect();
        let mut generations = self.llm.batch_generate(&inputs).into_iter();

        contexts
            .into_iter()
            .map(|context| {
                let context = context?;
                let sources = context.to_source_texts();
                let prompt_text = self.prompt_builder.render(&context.query, &sources);
                let generation = generations
                    .next()
                    .expect("batch_generate returns one generation per input");
                Ok(RagResponse {
                    context,
                    prompt_text,
                    generation,
                })
            })
            .collect()
    }

    /// An [`Evaluator`] for the given context, sharing this pipeline's LLM and prompt
    /// template — the entry point into the explanation searches.
    pub fn evaluator(&self, context: Context) -> Evaluator {
        Evaluator::new(Arc::clone(&self.llm), context)
            .with_prompt_builder(self.prompt_builder.clone())
    }

    /// A [`ParallelEvaluator`] over the given context: the same searches, fanned
    /// out across `threads` worker threads with results byte-identical to the
    /// sequential [`evaluator`](RagPipeline::evaluator).
    pub fn parallel_evaluator(&self, context: Context, threads: usize) -> ParallelEvaluator {
        ParallelEvaluator::new(self.evaluator(context), threads)
    }

    /// Convenience: retrieve, answer and build the evaluator in one step.
    pub fn ask_and_explain(
        &self,
        query: &str,
        k: usize,
    ) -> Result<(RagResponse, Evaluator), RageError> {
        let response = self.ask(query, k)?;
        let evaluator = self.evaluator(response.context.clone());
        Ok((response, evaluator))
    }

    /// The anytime end-to-end path: retrieve, answer and assemble a full
    /// [`RageReport`](crate::explanation::RageReport) under an optional
    /// wall-clock deadline.
    ///
    /// The retrieval round trip and baseline answers always complete (the
    /// response is never truncated); the deadline bounds the explanation
    /// searches, whose per-section
    /// [`Completeness`](crate::budget::Completeness) markers state how far
    /// each got. With `deadline = None` this is `ask` followed by
    /// [`RageReport::generate`](crate::explanation::RageReport::generate).
    pub fn ask_and_report(
        &self,
        query: &str,
        k: usize,
        config: &crate::explanation::ReportConfig,
        deadline: Option<crate::budget::Deadline>,
    ) -> Result<(RagResponse, crate::explanation::RageReport), RageError> {
        let response = self.ask(query, k)?;
        let evaluator = self.evaluator(response.context.clone());
        let report =
            crate::explanation::RageReport::generate_with_deadline(&evaluator, config, deadline)?;
        Ok((response, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{Corpus, Document, IndexBuilder};

    fn pipeline() -> RagPipeline {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds the most grand slam titles with 24.",
        ));
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads total match wins with 369 victories.",
        ));
        corpus.push(Document::new(
            "pasta",
            "Cooking",
            "Boil the pasta in salted water until al dente.",
        ));
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        RagPipeline::new(searcher, Arc::new(SimLlm::new(SimLlmConfig::default())))
    }

    #[test]
    fn ask_retrieves_and_answers() {
        let p = pipeline();
        let response = p.ask("Who holds the most grand slam titles?", 2).unwrap();
        assert_eq!(response.answer(), "Novak Djokovic");
        assert!(response.k() >= 1);
        assert_eq!(response.context.sources[0].doc_id, "slams");
        assert!(response.prompt_text.contains("[Source 1: slams]"));
    }

    #[test]
    fn irrelevant_documents_are_not_retrieved() {
        let p = pipeline();
        let response = p.ask("Who holds the most grand slam titles?", 3).unwrap();
        assert!(response.context.sources.iter().all(|s| s.doc_id != "pasta"));
    }

    #[test]
    fn zero_k_is_an_invalid_argument_not_an_empty_context() {
        // Regression: `ask(query, 0)` used to fall through retrieval into
        // EmptyContext, blaming the corpus for a malformed request.
        let p = pipeline();
        let err = p
            .ask("Who holds the most grand slam titles?", 0)
            .unwrap_err();
        assert!(matches!(err, RageError::InvalidArgument { .. }), "{err}");
        assert!(err.to_string().contains("at least 1"));

        // ask_many reports the same per-query error and still answers nothing.
        let results = p.ask_many(&["Who holds the most grand slam titles?", "x"], 0);
        assert_eq!(results.len(), 2);
        for result in results {
            assert!(matches!(
                result.unwrap_err(),
                RageError::InvalidArgument { .. }
            ));
        }

        // ask_and_explain goes through ask, so it is covered too.
        assert!(matches!(
            p.ask_and_explain("anything", 0).err(),
            Some(RageError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn unmatched_query_is_an_empty_context_error() {
        let p = pipeline();
        let err = p
            .ask("completely unrelated quantum chromodynamics", 3)
            .unwrap_err();
        assert!(matches!(err, RageError::EmptyContext { .. }));
    }

    #[test]
    fn empty_query_propagates_retrieval_error() {
        let p = pipeline();
        assert!(matches!(p.ask("", 3), Err(RageError::Retrieval(_))));
    }

    #[test]
    fn answer_with_supplied_context_bypasses_retrieval() {
        let p = pipeline();
        let context = Context::from_documents(
            "Who leads total match wins?",
            &[Document::new(
                "only",
                "Match wins",
                "Roger Federer leads total match wins with 369 victories.",
            )],
        );
        let response = p.answer_with_context(context).unwrap();
        assert_eq!(response.answer(), "Roger Federer");
    }

    #[test]
    fn sharded_retriever_is_a_drop_in_replacement() {
        use rage_retrieval::ShardedSearcher;
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds the most grand slam titles with 24.",
        ));
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads total match wins with 369 victories.",
        ));
        corpus.push(Document::new(
            "pasta",
            "Cooking",
            "Boil the pasta in salted water until al dente.",
        ));
        let llm = Arc::new(SimLlm::new(SimLlmConfig::default()));
        let single = RagPipeline::new(
            Searcher::new(IndexBuilder::default().build(&corpus)),
            llm.clone(),
        );
        for shards in [1, 2, 3, 5] {
            let sharded =
                RagPipeline::new(ShardedSearcher::from_corpus(&corpus, shards), llm.clone());
            let query = "Who holds the most grand slam titles?";
            assert_eq!(
                single.ask(query, 2).unwrap(),
                sharded.ask(query, 2).unwrap(),
                "shards={shards}"
            );
        }
        // A boxed dynamic retriever works too (backend chosen at runtime).
        let boxed: Box<dyn rage_retrieval::Retriever> =
            Box::new(ShardedSearcher::from_corpus(&corpus, 2));
        let dynamic = RagPipeline::new(boxed, llm.clone());
        assert_eq!(
            dynamic
                .ask("Who leads total match wins?", 1)
                .unwrap()
                .answer(),
            "Roger Federer"
        );
    }

    #[test]
    fn ask_and_report_is_the_anytime_round_trip() {
        let p = pipeline();
        let config = crate::explanation::ReportConfig::default();
        let (response, report) = p
            .ask_and_report("Who holds the most grand slam titles?", 2, &config, None)
            .unwrap();
        assert_eq!(report.full_context_answer, response.answer());
        assert!(report.all_sections_exact());

        // An already-expired deadline still answers, with truncated sections.
        let deadline = crate::budget::Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (response, report) = p
            .ask_and_report(
                "Who holds the most grand slam titles?",
                2,
                &config,
                Some(deadline),
            )
            .unwrap();
        assert_eq!(report.full_context_answer, response.answer());
        assert!(!report.all_sections_exact());
    }

    #[test]
    fn evaluator_shares_llm_and_prompt() {
        let p = pipeline();
        let (response, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 2)
            .unwrap();
        assert_eq!(evaluator.full_context_answer().unwrap(), response.answer());
        assert_eq!(evaluator.k(), response.k());
    }
}
