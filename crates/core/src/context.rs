//! The retrieved context `Dq`.
//!
//! A [`Context`] is the ordered sequence of sources the retrieval model returned for a
//! query, each with its retrieval score. It is the object RAGE perturbs: combinations
//! keep a subset of its sources (preserving relative order), permutations reorder all of
//! them.

use serde::{Deserialize, Serialize};

use rage_llm::SourceText;
use rage_retrieval::searcher::RankedSource;
use rage_retrieval::Document;

/// One source inside a retrieved context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSource {
    /// Document id of the source.
    pub doc_id: String,
    /// Human-readable title.
    pub title: String,
    /// The text placed into the prompt.
    pub text: String,
    /// Rank in the original retrieval (0 = most relevant).
    pub rank: usize,
    /// Retrieval (BM25) relevance score with respect to the query.
    pub retrieval_score: f64,
}

impl ContextSource {
    /// The structured form handed to the language model.
    pub fn to_source_text(&self) -> SourceText {
        SourceText::new(self.doc_id.clone(), self.text.clone())
    }
}

/// The ordered retrieved context `Dq` for a query `q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Context {
    /// The query that produced this context.
    pub query: String,
    /// The ordered sources, most relevant first.
    pub sources: Vec<ContextSource>,
}

impl Context {
    /// Build a context from retrieval results.
    pub fn from_ranked(query: impl Into<String>, hits: &[RankedSource]) -> Self {
        Self {
            query: query.into(),
            sources: hits
                .iter()
                .map(|hit| ContextSource {
                    doc_id: hit.doc_id.clone(),
                    title: hit.document.title.clone(),
                    text: hit.document.full_text(),
                    rank: hit.rank,
                    retrieval_score: hit.score,
                })
                .collect(),
        }
    }

    /// Build a context directly from documents (bypassing retrieval), preserving the
    /// given order and assigning synthetic descending scores.
    ///
    /// Useful for tests, for user-supplied contexts, and for replaying a context
    /// captured elsewhere.
    pub fn from_documents(query: impl Into<String>, documents: &[Document]) -> Self {
        let n = documents.len();
        Self {
            query: query.into(),
            sources: documents
                .iter()
                .enumerate()
                .map(|(rank, doc)| ContextSource {
                    doc_id: doc.id.clone(),
                    title: doc.title.clone(),
                    text: doc.full_text(),
                    rank,
                    retrieval_score: (n - rank) as f64,
                })
                .collect(),
        }
    }

    /// Number of sources `k` in the context.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the context holds no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The source at a given position, if any.
    pub fn get(&self, index: usize) -> Option<&ContextSource> {
        self.sources.get(index)
    }

    /// Position of a document id within the context.
    pub fn position_of(&self, doc_id: &str) -> Option<usize> {
        self.sources.iter().position(|s| s.doc_id == doc_id)
    }

    /// The retrieval scores of all sources, in context order.
    pub fn retrieval_scores(&self) -> Vec<f64> {
        self.sources.iter().map(|s| s.retrieval_score).collect()
    }

    /// The document ids at the given context positions, preserving the given
    /// order; out-of-range positions are skipped.
    pub fn doc_ids(&self, positions: &[usize]) -> Vec<&str> {
        positions
            .iter()
            .filter_map(|&i| self.get(i).map(|s| s.doc_id.as_str()))
            .collect()
    }

    /// The structured source list handed to the language model for the *unperturbed*
    /// context.
    pub fn to_source_texts(&self) -> Vec<SourceText> {
        self.sources.iter().map(|s| s.to_source_text()).collect()
    }

    /// The source texts for a subset of positions, preserving the given order.
    ///
    /// Panics if an index is out of range; the [`crate::perturbation`] layer validates
    /// indices before calling this.
    pub fn select(&self, indices: &[usize]) -> Vec<SourceText> {
        indices
            .iter()
            .map(|&i| self.sources[i].to_source_text())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::{Corpus, Document, IndexBuilder, Searcher};

    fn documents() -> Vec<Document> {
        vec![
            Document::new("a", "Title A", "Alpha text about tennis"),
            Document::new("b", "Title B", "Beta text about champions"),
            Document::new("c", "", "Gamma text"),
        ]
    }

    #[test]
    fn from_documents_preserves_order_and_assigns_scores() {
        let ctx = Context::from_documents("q", &documents());
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx.sources[0].doc_id, "a");
        assert_eq!(ctx.sources[0].rank, 0);
        assert!(ctx.sources[0].retrieval_score > ctx.sources[1].retrieval_score);
        assert_eq!(ctx.position_of("c"), Some(2));
        assert_eq!(ctx.position_of("zzz"), None);
    }

    #[test]
    fn from_ranked_uses_retrieval_scores() {
        let mut corpus = Corpus::new();
        for doc in documents() {
            corpus.push(doc);
        }
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let hits = searcher.search("tennis champions", 3);
        let ctx = Context::from_ranked("tennis champions", &hits);
        assert_eq!(ctx.len(), hits.len());
        for (source, hit) in ctx.sources.iter().zip(hits.iter()) {
            assert_eq!(source.doc_id, hit.doc_id);
            assert_eq!(source.retrieval_score, hit.score);
        }
    }

    #[test]
    fn full_text_includes_title() {
        let ctx = Context::from_documents("q", &documents());
        assert!(ctx.sources[0].text.starts_with("Title A."));
        assert_eq!(ctx.sources[2].text, "Gamma text");
    }

    #[test]
    fn select_projects_and_orders() {
        let ctx = Context::from_documents("q", &documents());
        let selected = ctx.select(&[2, 0]);
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id, "c");
        assert_eq!(selected[1].id, "a");
    }

    #[test]
    fn to_source_texts_matches_context_order() {
        let ctx = Context::from_documents("q", &documents());
        let texts = ctx.to_source_texts();
        assert_eq!(texts.len(), 3);
        assert_eq!(texts[1].id, "b");
    }

    #[test]
    fn empty_context() {
        let ctx = Context::from_documents("q", &[]);
        assert!(ctx.is_empty());
        assert!(ctx.get(0).is_none());
        assert!(ctx.retrieval_scores().is_empty());
    }
}
