//! Source-relevance scoring `S(q, d, Dq)`.
//!
//! RAGE lets the user pick between two relevance estimators for a source relative to the
//! query and the rest of the context (§II-C):
//!
//! 1. **Attention** — the LLM's attention values summed over all layers, heads and the
//!    tokens of the source (read out of the full-context generation).
//! 2. **Retrieval score** — the relevance score the retrieval model assigned.
//!
//! Both are used to order equal-size combinations during the counterfactual search and
//! to weight sources in the optimal-permutation objective. "Since we only compare scores
//! for combinations of equal size, there is no need to normalise combination scores by
//! the number of sources."

use serde::{Deserialize, Serialize};

use crate::error::RageError;
use crate::evaluator::Evaluate;

/// Which relevance estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScoringMethod {
    /// The LLM's aggregated attention over each source (one extra full-context call,
    /// answered from the evaluator's cache thereafter).
    #[default]
    Attention,
    /// The retrieval model's relevance scores.
    RetrievalScore,
}

impl ScoringMethod {
    /// Per-source relevance scores, in context order.
    pub fn source_scores<E: Evaluate + ?Sized>(
        &self,
        evaluator: &E,
    ) -> Result<Vec<f64>, RageError> {
        match self {
            ScoringMethod::Attention => {
                let generation = evaluator.full_context_generation()?;
                let mut scores = generation.source_attention;
                // Defensive: an adapter model might not report attention; fall back to
                // uniform scores rather than biasing the search towards "no" sources.
                if scores.len() != evaluator.k() {
                    scores = vec![1.0; evaluator.k()];
                }
                Ok(scores)
            }
            ScoringMethod::RetrievalScore => Ok(evaluator.context().retrieval_scores()),
        }
    }

    /// The estimated relevance of a combination: the sum of its member sources' scores.
    pub fn combination_score(scores: &[f64], combination: &[usize]) -> f64 {
        combination
            .iter()
            .map(|&i| scores.get(i).copied().unwrap_or(0.0))
            .sum()
    }

    /// Short name used in reports and benchmark labels.
    pub fn label(&self) -> &'static str {
        match self {
            ScoringMethod::Attention => "attention",
            ScoringMethod::RetrievalScore => "retrieval-score",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::evaluator::Evaluator;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{Corpus, Document, IndexBuilder, Searcher};
    use std::sync::Arc;

    fn evaluator() -> Evaluator {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds the most grand slam titles with 24 championships.",
        ));
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads total match wins with 369 victories on tour.",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one.",
        ));
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let query = "Who holds the most grand slam titles?";
        let hits = searcher.search(query, 3);
        let context = Context::from_ranked(query, &hits);
        Evaluator::new(Arc::new(SimLlm::new(SimLlmConfig::default())), context)
    }

    #[test]
    fn retrieval_scores_match_the_context() {
        let ev = evaluator();
        let scores = ScoringMethod::RetrievalScore.source_scores(&ev).unwrap();
        assert_eq!(scores, ev.context().retrieval_scores());
        assert_eq!(scores.len(), ev.k());
        // Retrieval scores arrive rank-ordered.
        for pair in scores.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn attention_scores_have_one_entry_per_source() {
        let ev = evaluator();
        let scores = ScoringMethod::Attention.source_scores(&ev).unwrap();
        assert_eq!(scores.len(), ev.k());
        assert!(scores.iter().all(|&s| s >= 0.0));
        let total: f64 = scores.iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn attention_scoring_reuses_the_cached_full_context_call() {
        let ev = evaluator();
        ScoringMethod::Attention.source_scores(&ev).unwrap();
        ScoringMethod::Attention.source_scores(&ev).unwrap();
        // One full-context generation only.
        assert_eq!(ev.llm_calls(), 1);
    }

    #[test]
    fn combination_scores_sum_member_scores() {
        let scores = vec![3.0, 1.0, 2.0];
        assert_eq!(ScoringMethod::combination_score(&scores, &[0, 2]), 5.0);
        assert_eq!(ScoringMethod::combination_score(&scores, &[]), 0.0);
        assert_eq!(ScoringMethod::combination_score(&scores, &[9]), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ScoringMethod::Attention.label(), "attention");
        assert_eq!(ScoringMethod::RetrievalScore.label(), "retrieval-score");
        assert_eq!(ScoringMethod::default(), ScoringMethod::Attention);
    }
}
