//! Error taxonomy of the explanation engine.

use std::fmt;

use rage_retrieval::RetrievalError;

/// Errors surfaced by the RAGE pipeline and searches.
#[derive(Debug)]
pub enum RageError {
    /// The retrieval substrate failed (empty query, I/O, ...).
    Retrieval(RetrievalError),
    /// Retrieval returned no sources, so there is no context to explain.
    EmptyContext {
        /// The query that produced no results.
        query: String,
    },
    /// A perturbation referenced a source index outside the context.
    InvalidSourceIndex {
        /// The offending index.
        index: usize,
        /// Number of sources in the context.
        context_size: usize,
    },
    /// A permutation perturbation was not a valid permutation of the context.
    InvalidPermutation {
        /// Human-readable reason.
        reason: String,
    },
    /// The search stopped without finding a counterfactual — either the
    /// evaluation budget ran out first, or the whole searched space was
    /// covered and provably contains none.
    BudgetExhausted {
        /// Number of perturbations evaluated before giving up.
        evaluated: usize,
        /// `true` when the search covered its entire candidate space (no
        /// counterfactual exists in it — a larger budget cannot help);
        /// `false` when the budget or deadline cut the search short (a larger
        /// budget might still find one).
        space_exhausted: bool,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A caller-supplied argument was invalid before any work was attempted
    /// (e.g. asking for `k = 0` sources).
    ///
    /// Distinct from [`RageError::EmptyContext`]: that variant means retrieval
    /// ran and found nothing relevant, this one means the request itself was
    /// malformed — a service maps the former to "no results" and the latter to
    /// a client error (HTTP 400).
    InvalidArgument {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for RageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RageError::Retrieval(err) => write!(f, "retrieval failed: {err}"),
            RageError::EmptyContext { query } => {
                write!(f, "no sources retrieved for query: {query}")
            }
            RageError::InvalidSourceIndex { index, context_size } => write!(
                f,
                "source index {index} out of range for a context of {context_size} sources"
            ),
            RageError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation perturbation: {reason}")
            }
            RageError::BudgetExhausted {
                evaluated,
                space_exhausted: true,
            } => write!(
                f,
                "search space exhausted after {evaluated} perturbations: no counterfactual exists in the searched space"
            ),
            RageError::BudgetExhausted {
                evaluated,
                space_exhausted: false,
            } => write!(
                f,
                "evaluation budget exhausted after {evaluated} perturbations without a counterfactual; a larger budget or deadline may find one"
            ),
            RageError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RageError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for RageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RageError::Retrieval(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RetrievalError> for RageError {
    fn from(err: RetrievalError) -> Self {
        RageError::Retrieval(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = RageError::EmptyContext {
            query: "abc".into(),
        };
        assert!(err.to_string().contains("abc"));
        let err = RageError::InvalidSourceIndex {
            index: 7,
            context_size: 3,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('3'));
        let err = RageError::BudgetExhausted {
            evaluated: 12,
            space_exhausted: false,
        };
        assert!(err.to_string().contains("12"));
        let err = RageError::InvalidPermutation {
            reason: "dup".into(),
        };
        assert!(err.to_string().contains("dup"));
        let err = RageError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(err.to_string().contains("bad"));
        let err = RageError::InvalidArgument {
            reason: "k must be at least 1".into(),
        };
        assert!(err.to_string().contains("invalid argument"));
        assert!(err.to_string().contains("k must be at least 1"));
    }

    #[test]
    fn budget_exhaustion_distinguishes_space_exhaustion() {
        // Regression (ISSUE 8 satellite): the two failure modes used to share
        // one message. "Space exhausted" must tell the caller a larger budget
        // cannot help; "budget exhausted" must suggest one might.
        let out_of_budget = RageError::BudgetExhausted {
            evaluated: 3,
            space_exhausted: false,
        };
        assert!(out_of_budget.to_string().contains("budget exhausted"));
        assert!(out_of_budget.to_string().contains("larger budget"));
        assert!(!out_of_budget.to_string().contains("space exhausted"));

        let no_counterfactual = RageError::BudgetExhausted {
            evaluated: 7,
            space_exhausted: true,
        };
        assert!(no_counterfactual.to_string().contains("space exhausted"));
        assert!(no_counterfactual
            .to_string()
            .contains("no counterfactual exists"));
        assert!(!no_counterfactual.to_string().contains("larger budget"));
    }

    #[test]
    fn retrieval_error_converts_and_keeps_source() {
        use std::error::Error;
        let err: RageError = RetrievalError::EmptyQuery.into();
        assert!(err.to_string().contains("retrieval failed"));
        assert!(err.source().is_some());
    }
}
