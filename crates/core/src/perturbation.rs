//! Context perturbations.
//!
//! RAGE derives explanations from two complementary perturbation families (§II-A):
//! **combinations**, which drop sources from the context while preserving the relative
//! order of the survivors, and **permutations**, which keep every source but change the
//! order. [`Perturbation`] represents one concrete perturbation and knows how to apply
//! itself to a [`Context`].

use serde::{Deserialize, Serialize};

use rage_llm::SourceText;

use crate::context::Context;
use crate::error::RageError;

/// One concrete context perturbation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Perturbation {
    /// Keep only the sources at these context positions (ascending order = original
    /// relative order). The empty combination is the empty context.
    Combination(Vec<usize>),
    /// Reorder all sources: entry `p` of the vector is the context position of the
    /// source placed at prompt position `p`.
    Permutation(Vec<usize>),
}

impl Perturbation {
    /// The unperturbed context as a combination of all `k` sources.
    pub fn identity_combination(k: usize) -> Self {
        Perturbation::Combination((0..k).collect())
    }

    /// The unperturbed context as the identity permutation of `k` sources.
    pub fn identity_permutation(k: usize) -> Self {
        Perturbation::Permutation((0..k).collect())
    }

    /// A combination that removes the given positions from a context of `k` sources.
    pub fn removal(k: usize, removed: &[usize]) -> Self {
        let kept: Vec<usize> = (0..k).filter(|i| !removed.contains(i)).collect();
        Perturbation::Combination(kept)
    }

    /// Number of sources present in the perturbed context.
    pub fn len(&self) -> usize {
        match self {
            Perturbation::Combination(kept) => kept.len(),
            Perturbation::Permutation(order) => order.len(),
        }
    }

    /// Whether the perturbed context is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate the perturbation against a context of `k` sources.
    pub fn validate(&self, k: usize) -> Result<(), RageError> {
        match self {
            Perturbation::Combination(kept) => {
                for &index in kept {
                    if index >= k {
                        return Err(RageError::InvalidSourceIndex {
                            index,
                            context_size: k,
                        });
                    }
                }
                for window in kept.windows(2) {
                    if window[0] >= window[1] {
                        return Err(RageError::InvalidPermutation {
                            reason: format!(
                                "combination indices must be strictly increasing, got {kept:?}"
                            ),
                        });
                    }
                }
                Ok(())
            }
            Perturbation::Permutation(order) => {
                if order.len() != k {
                    return Err(RageError::InvalidPermutation {
                        reason: format!(
                            "permutation has length {} but the context has {k} sources",
                            order.len()
                        ),
                    });
                }
                let mut seen = vec![false; k];
                for &index in order {
                    if index >= k {
                        return Err(RageError::InvalidSourceIndex {
                            index,
                            context_size: k,
                        });
                    }
                    if seen[index] {
                        return Err(RageError::InvalidPermutation {
                            reason: format!("source {index} appears twice"),
                        });
                    }
                    seen[index] = true;
                }
                Ok(())
            }
        }
    }

    /// Apply the perturbation to a context, producing the perturbed source order.
    pub fn apply(&self, context: &Context) -> Result<Vec<SourceText>, RageError> {
        self.validate(context.len())?;
        let indices = match self {
            Perturbation::Combination(kept) => kept.clone(),
            Perturbation::Permutation(order) => order.clone(),
        };
        Ok(context.select(&indices))
    }

    /// The context positions removed by a combination (empty for permutations).
    pub fn removed_positions(&self, k: usize) -> Vec<usize> {
        match self {
            Perturbation::Combination(kept) => (0..k).filter(|i| !kept.contains(i)).collect(),
            Perturbation::Permutation(_) => Vec::new(),
        }
    }

    /// A short human-readable description in terms of document ids.
    pub fn describe(&self, context: &Context) -> String {
        match self {
            Perturbation::Combination(kept) => {
                if kept.is_empty() {
                    "empty context".to_string()
                } else {
                    format!("keep {{{}}}", context.doc_ids(kept).join(", "))
                }
            }
            Perturbation::Permutation(order) => {
                format!("order [{}]", context.doc_ids(order).join(" -> "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::Document;

    fn context() -> Context {
        Context::from_documents(
            "q",
            &[
                Document::new("a", "", "first"),
                Document::new("b", "", "second"),
                Document::new("c", "", "third"),
            ],
        )
    }

    #[test]
    fn identity_constructors() {
        assert_eq!(
            Perturbation::identity_combination(3),
            Perturbation::Combination(vec![0, 1, 2])
        );
        assert_eq!(
            Perturbation::identity_permutation(2),
            Perturbation::Permutation(vec![0, 1])
        );
    }

    #[test]
    fn removal_constructor_complements() {
        let p = Perturbation::removal(4, &[1, 3]);
        assert_eq!(p, Perturbation::Combination(vec![0, 2]));
        assert_eq!(p.removed_positions(4), vec![1, 3]);
    }

    #[test]
    fn combination_apply_preserves_relative_order() {
        let ctx = context();
        let sources = Perturbation::Combination(vec![0, 2]).apply(&ctx).unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].id, "a");
        assert_eq!(sources[1].id, "c");
    }

    #[test]
    fn empty_combination_is_the_empty_context() {
        let ctx = context();
        let p = Perturbation::Combination(vec![]);
        assert!(p.is_empty());
        assert!(p.apply(&ctx).unwrap().is_empty());
        assert_eq!(p.describe(&ctx), "empty context");
    }

    #[test]
    fn permutation_apply_reorders() {
        let ctx = context();
        let sources = Perturbation::Permutation(vec![2, 0, 1])
            .apply(&ctx)
            .unwrap();
        let ids: Vec<&str> = sources.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, vec!["c", "a", "b"]);
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let ctx = context();
        let err = Perturbation::Combination(vec![0, 9])
            .apply(&ctx)
            .unwrap_err();
        assert!(matches!(
            err,
            RageError::InvalidSourceIndex { index: 9, .. }
        ));
        let err = Perturbation::Permutation(vec![0, 1, 9])
            .apply(&ctx)
            .unwrap_err();
        assert!(matches!(
            err,
            RageError::InvalidSourceIndex { index: 9, .. }
        ));
    }

    #[test]
    fn malformed_perturbations_are_rejected() {
        let ctx = context();
        // Non-increasing combination.
        assert!(Perturbation::Combination(vec![2, 1]).apply(&ctx).is_err());
        // Wrong-length permutation.
        assert!(Perturbation::Permutation(vec![0, 1]).apply(&ctx).is_err());
        // Duplicate entries.
        assert!(Perturbation::Permutation(vec![0, 1, 1])
            .apply(&ctx)
            .is_err());
    }

    #[test]
    fn describe_names_documents() {
        let ctx = context();
        assert_eq!(
            Perturbation::Combination(vec![0, 1]).describe(&ctx),
            "keep {a, b}"
        );
        assert_eq!(
            Perturbation::Permutation(vec![1, 0, 2]).describe(&ctx),
            "order [b -> a -> c]"
        );
    }
}
