//! # rage-core
//!
//! The RAGE explanation engine: counterfactual explanations and perturbation insights
//! for retrieval-augmented LLM question answering, reproducing *"RAGE Against the
//! Machine: Retrieval-Augmented LLM Explanations"* (ICDE 2024).
//!
//! ## The problem
//!
//! In open-book QA with retrieval-augmented generation, a retrieval model `M` ranks the
//! `k` most relevant sources `Dq` for a query `q`; the LLM `L` answers from the prompt
//! assembled out of `q` and `Dq`: `a = L(q, Dq)`. RAGE explains *where that answer came
//! from* by perturbing the context:
//!
//! * **Combinations** — which sources must be removed (top-down) or retained
//!   (bottom-up) to change the answer; these counterfactuals act as citations.
//! * **Permutations** — how stable the answer is under re-ordering of the sources,
//!   exposing "lost in the middle" position bias.
//!
//! Because the candidate space is exponential (`2^k` subsets, `k!` orders), RAGE prunes
//! it: combinations are evaluated in increasing size with ties broken by estimated
//! relevance (attention-based or retrieval-score-based), permutations in decreasing
//! Kendall-tau similarity, and "optimal permutations" are found by casting source-to-
//! position placement as an assignment problem solved in `O(s·k³)`.
//!
//! ## Crate layout
//!
//! * [`context`] — the retrieved context `Dq` ([`Context`], [`ContextSource`]).
//! * [`prompt`] — natural-language prompt assembly with delimited sources.
//! * [`answer`] — answer normalisation (lowercase, strip punctuation, trim).
//! * [`budget`] — the unified cost-control layer: [`SearchBudget`], monotonic
//!   [`Deadline`]s and per-search [`Completeness`] markers.
//! * [`pipeline`] — [`RagPipeline`](pipeline::RagPipeline): retrieval + LLM end to end.
//! * [`perturbation`] — combination/permutation perturbations and their application.
//! * [`evaluator`] — cached, counted evaluation of perturbed contexts against the LLM:
//!   the [`Evaluate`](evaluator::Evaluate) trait, the sequential
//!   [`Evaluator`](evaluator::Evaluator) and the worker-pool
//!   [`ParallelEvaluator`](evaluator::ParallelEvaluator).
//! * [`scoring`] — the two source-relevance estimators `S(q, d, Dq)`.
//! * [`counterfactual`] — top-down, bottom-up and permutation counterfactual search.
//! * [`insights`] — answer distributions, rules and tables over perturbation samples.
//! * [`optimal`] — optimal permutations via k-best assignment (and the naive baseline).
//! * [`explanation`] — the assembled [`RageReport`](explanation::RageReport).
//!
//! ## Quick start
//!
//! ```
//! use rage_core::pipeline::RagPipeline;
//! use rage_core::counterfactual::{CounterfactualConfig, SearchDirection};
//! use rage_core::scoring::ScoringMethod;
//! use rage_llm::model::{SimLlm, SimLlmConfig};
//! use rage_retrieval::{Corpus, Document, IndexBuilder, Searcher};
//! use std::sync::Arc;
//!
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new(
//!     "slams",
//!     "Grand slams",
//!     "Novak Djokovic holds the most grand slam titles.",
//! ));
//! corpus.push(Document::new("wins", "Match wins", "Roger Federer leads total match wins."));
//! let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
//! let llm = Arc::new(SimLlm::new(SimLlmConfig::default()));
//!
//! let pipeline = RagPipeline::new(searcher, llm);
//! let response = pipeline.ask("Who holds the most grand slam titles?", 2).unwrap();
//! assert_eq!(response.answer(), "Novak Djokovic");
//!
//! // Explain it: the smallest source removal that changes the answer.
//! let evaluator = pipeline.evaluator(response.context.clone());
//! let outcome = rage_core::counterfactual::find_combination_counterfactual(
//!     &evaluator,
//!     &CounterfactualConfig::top_down().with_scoring(ScoringMethod::RetrievalScore),
//! )
//! .unwrap();
//! let citation = outcome.counterfactual.expect("an answer-changing removal exists");
//! assert!(citation.removed.contains(&0));
//! assert_ne!(citation.answer, "Novak Djokovic");
//! # let _ = SearchDirection::TopDown;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod budget;
pub mod context;
pub mod counterfactual;
pub mod error;
pub mod evaluator;
pub mod explanation;
pub mod insights;
pub mod optimal;
pub mod perturbation;
pub mod pipeline;
pub mod prompt;
pub mod scoring;

pub use answer::{answers_equal, normalize_answer};
pub use budget::{Completeness, Deadline, SearchBudget};
pub use context::{Context, ContextSource};
pub use error::RageError;
pub use evaluator::{CacheStats, Evaluate, Evaluator, ParallelEvaluator};
pub use explanation::{CorpusProvenance, RageReport};
pub use perturbation::Perturbation;
pub use pipeline::{RagPipeline, RagResponse};
pub use scoring::ScoringMethod;
