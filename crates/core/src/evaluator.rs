//! Cached, counted evaluation of perturbed contexts.
//!
//! Every perturbation the searches consider costs one LLM inference. [`Evaluator`]
//! centralises those calls: it builds the prompt for a perturbed context, queries the
//! model, caches answers keyed by the perturbation (identical perturbations are never
//! re-evaluated) and counts the number of true LLM invocations — the cost metric used by
//! the pruning experiments (E7).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use rage_llm::{Generation, LanguageModel};

use crate::context::Context;
use crate::error::RageError;
use crate::perturbation::Perturbation;
use crate::prompt::PromptBuilder;

/// Evaluates perturbations of one fixed (question, context) pair against an LLM.
pub struct Evaluator {
    llm: Arc<dyn LanguageModel>,
    prompt_builder: PromptBuilder,
    context: Context,
    question: String,
    cache: RefCell<HashMap<Perturbation, Generation>>,
    llm_calls: Cell<usize>,
}

impl Evaluator {
    /// Create an evaluator for a context; the question defaults to the context's query.
    pub fn new(llm: Arc<dyn LanguageModel>, context: Context) -> Self {
        let question = context.query.clone();
        Self {
            llm,
            prompt_builder: PromptBuilder::default(),
            context,
            question,
            cache: RefCell::new(HashMap::new()),
            llm_calls: Cell::new(0),
        }
    }

    /// Override the question (when it differs from the retrieval query).
    pub fn with_question(mut self, question: impl Into<String>) -> Self {
        self.question = question.into();
        self
    }

    /// Override the prompt template.
    pub fn with_prompt_builder(mut self, builder: PromptBuilder) -> Self {
        self.prompt_builder = builder;
        self
    }

    /// The context being explained.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The question posed to the LLM.
    pub fn question(&self) -> &str {
        &self.question
    }

    /// Number of sources `k` in the context.
    pub fn k(&self) -> usize {
        self.context.len()
    }

    /// Number of *actual* LLM inferences performed so far (cache hits excluded).
    pub fn llm_calls(&self) -> usize {
        self.llm_calls.get()
    }

    /// Number of distinct perturbations evaluated so far.
    pub fn evaluations(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Cache-canonical form of a perturbation: the identity permutation
    /// produces the same prompt as the full-context combination, so both map
    /// to one cache entry (and one LLM call).
    fn canonical(&self, perturbation: &Perturbation) -> Perturbation {
        match perturbation {
            Perturbation::Permutation(order)
                if order.len() == self.context.len()
                    && order
                        .iter()
                        .enumerate()
                        .all(|(prompt, &source)| prompt == source) =>
            {
                Perturbation::Combination(order.clone())
            }
            _ => perturbation.clone(),
        }
    }

    /// The full generation (answer + attention read-out) for a perturbation.
    pub fn generation_for(&self, perturbation: &Perturbation) -> Result<Generation, RageError> {
        let key = self.canonical(perturbation);
        if let Some(hit) = self.cache.borrow().get(&key) {
            return Ok(hit.clone());
        }
        let sources = perturbation.apply(&self.context)?;
        let input = self.prompt_builder.build_input(&self.question, &sources);
        let generation = self.llm.generate(&input);
        self.llm_calls.set(self.llm_calls.get() + 1);
        self.cache.borrow_mut().insert(key, generation.clone());
        Ok(generation)
    }

    /// The raw answer string for a perturbation.
    pub fn answer_for(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        Ok(self.generation_for(perturbation)?.answer)
    }

    /// The answer over the full, unperturbed context (`a = L(q, Dq)`).
    pub fn full_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::identity_combination(self.k()))
    }

    /// The generation over the full, unperturbed context (used by attention scoring).
    pub fn full_context_generation(&self) -> Result<Generation, RageError> {
        self.generation_for(&Perturbation::identity_combination(self.k()))
    }

    /// The answer over the empty context (prior knowledge only).
    pub fn empty_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::Combination(Vec::new()))
    }

    /// The rendered prompt text for a perturbation (for provenance display).
    pub fn prompt_text(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        let sources = perturbation.apply(&self.context)?;
        Ok(self.prompt_builder.render(&self.question, &sources))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_llm::{LlmInput, SourceText};
    use rage_retrieval::Document;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A trivial deterministic model: answers with the id of the first source, or
    /// "nothing" for an empty context. Counts its invocations.
    struct FirstSourceLlm {
        calls: AtomicUsize,
    }

    impl FirstSourceLlm {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for FirstSourceLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let answer = input
                .sources
                .first()
                .map(|s: &SourceText| s.id.clone())
                .unwrap_or_else(|| "nothing".to_string());
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![
                    1.0 / input.sources.len().max(1) as f64;
                    input.sources.len()
                ],
                prompt_tokens: 1,
            }
        }
        fn name(&self) -> &str {
            "first-source"
        }
    }

    fn context() -> Context {
        Context::from_documents(
            "what is first?",
            &[
                Document::new("a", "", "alpha"),
                Document::new("b", "", "beta"),
                Document::new("c", "", "gamma"),
            ],
        )
    }

    #[test]
    fn answers_follow_the_perturbed_context() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert_eq!(evaluator.full_context_answer().unwrap(), "a");
        assert_eq!(
            evaluator
                .answer_for(&Perturbation::Combination(vec![1, 2]))
                .unwrap(),
            "b"
        );
        assert_eq!(
            evaluator
                .answer_for(&Perturbation::Permutation(vec![2, 0, 1]))
                .unwrap(),
            "c"
        );
        assert_eq!(evaluator.empty_context_answer().unwrap(), "nothing");
    }

    #[test]
    fn cache_prevents_repeated_llm_calls() {
        let llm = Arc::new(FirstSourceLlm::new());
        let evaluator = Evaluator::new(llm.clone(), context());
        let p = Perturbation::Combination(vec![0, 2]);
        for _ in 0..5 {
            evaluator.answer_for(&p).unwrap();
        }
        assert_eq!(evaluator.llm_calls(), 1);
        assert_eq!(llm.calls.load(Ordering::SeqCst), 1);
        assert_eq!(evaluator.evaluations(), 1);
    }

    #[test]
    fn identity_permutation_shares_the_full_context_cache_entry() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        evaluator.full_context_answer().unwrap();
        let via_permutation = evaluator
            .answer_for(&Perturbation::identity_permutation(3))
            .unwrap();
        assert_eq!(via_permutation, "a");
        // Same prompt, one inference, one cache entry.
        assert_eq!(evaluator.llm_calls(), 1);
        assert_eq!(evaluator.evaluations(), 1);
        // A *shorter* prefix permutation is not the identity and must still be
        // rejected as invalid rather than aliased to a combination.
        assert!(evaluator
            .answer_for(&Perturbation::Permutation(vec![0, 1]))
            .is_err());
    }

    #[test]
    fn distinct_perturbations_are_distinct_calls() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        evaluator.full_context_answer().unwrap();
        evaluator.empty_context_answer().unwrap();
        evaluator
            .answer_for(&Perturbation::Permutation(vec![1, 0, 2]))
            .unwrap();
        assert_eq!(evaluator.llm_calls(), 3);
    }

    #[test]
    fn invalid_perturbations_propagate_errors() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert!(evaluator
            .answer_for(&Perturbation::Combination(vec![5]))
            .is_err());
        assert_eq!(evaluator.llm_calls(), 0);
    }

    #[test]
    fn question_override_is_used_in_prompts() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context())
            .with_question("custom question?");
        assert_eq!(evaluator.question(), "custom question?");
        let text = evaluator
            .prompt_text(&Perturbation::identity_combination(3))
            .unwrap();
        assert!(text.contains("custom question?"));
        assert!(text.contains("alpha"));
    }

    #[test]
    fn full_generation_exposes_attention() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        let generation = evaluator.full_context_generation().unwrap();
        assert_eq!(generation.source_attention.len(), 3);
    }
}
