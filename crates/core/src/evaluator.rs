//! Cached, counted evaluation of perturbed contexts — sequential and parallel.
//!
//! Every perturbation the searches consider costs one LLM inference. This
//! module centralises those calls behind the [`Evaluate`] trait: build the
//! prompt for a perturbed context, query the model, cache answers keyed by the
//! (canonicalised) perturbation and count true LLM invocations — the cost
//! metric used by the pruning experiments (E7).
//!
//! ## Concurrency model
//!
//! Two implementations share one contract:
//!
//! * [`Evaluator`] — the sequential reference implementation. Its memo cache
//!   is a lock-striped map and its counters are atomics, so the whole struct
//!   is `Sync` and can be shared across threads, but it performs every
//!   evaluation on the calling thread, strictly in submission order.
//! * [`ParallelEvaluator`] — wraps an `Arc<Evaluator>` and owns a fixed pool
//!   of `std::thread` workers fed over an mpsc channel. A batch is
//!   deduplicated by canonical perturbation, the unique keys are fanned out to
//!   the workers, and results are scattered back by index, so the returned
//!   vector is **byte-identical** to what the sequential evaluator would
//!   return for the same batch — thread count and scheduling can never leak
//!   into results (the model itself is deterministic, and the memo guarantees
//!   one inference per distinct perturbation).
//!
//! Searches interact with either through [`Evaluate::evaluate_batch`] and size
//! their submission windows by [`Evaluate::preferred_batch`]: the sequential
//! evaluator reports `1`, which reproduces the historical one-at-a-time
//! early-exit behaviour (and its exact cost accounting); the parallel
//! evaluator reports a fixed window ([`DEFAULT_BATCH_WINDOW`]) that is
//! deliberately **independent of the thread count**, so reports generated with
//! 1, 2, 4 or 8 threads are equal down to the cost counters. Relative to the
//! sequential evaluator, a windowed search may evaluate up to `window - 1`
//! speculative candidates past an answer flip; this affects only the cost
//! counters, never which counterfactual is found.
//!
//! ## Cache invariants
//!
//! * One memo entry per canonical perturbation; the canonical form aliases the
//!   full identity permutation to the all-sources combination because both
//!   render the same prompt.
//! * `misses == llm_calls`: every miss performs exactly one inference, hits
//!   perform none ([`Evaluator::cache_stats`]).
//! * Entries are never evicted or mutated, so a cached [`Generation`] is
//!   returned bit-identically forever after.
//! * Striping (16 stripes, keyed by the perturbation hash) bounds lock
//!   contention under the worker pool; a stripe lock is held only for the
//!   O(1) lookup/insert, never across an LLM inference. Two workers racing on
//!   the *same* uncached perturbation would both run the inference (the
//!   deterministic model makes the results identical); the parallel batch path
//!   prevents that by deduplicating before dispatch, which keeps the
//!   `llm_calls` accounting exact.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

pub use rage_llm::cache::CacheStats;
use rage_llm::{Generation, LanguageModel};

use crate::context::Context;
use crate::error::RageError;
use crate::perturbation::Perturbation;
use crate::prompt::PromptBuilder;

/// Number of stripes in the shared memo map. A power of two comfortably above
/// any sensible worker count, so concurrent lookups rarely collide.
const MEMO_STRIPES: usize = 16;

/// Fixed batch window advertised by [`ParallelEvaluator::preferred_batch`].
///
/// Deliberately independent of the worker count: the window determines how
/// many speculative candidates a search may evaluate past an early exit, and
/// keeping it constant makes explanation *cost accounting* (not just
/// explanation content) identical across thread counts.
pub const DEFAULT_BATCH_WINDOW: usize = 16;

/// The evaluation contract shared by sequential and parallel evaluators.
///
/// Implementations memoise generations per canonical perturbation and count
/// true LLM inferences; see the module docs for the exact invariants. All
/// methods take `&self` — implementations use interior mutability and must be
/// safe to call from the thread that owns the evaluator (both implementations
/// here are additionally `Sync`).
pub trait Evaluate {
    /// The context being explained.
    fn context(&self) -> &Context;

    /// The question posed to the LLM.
    fn question(&self) -> &str;

    /// The full generation (answer + attention read-out) for a perturbation.
    fn generation_for(&self, perturbation: &Perturbation) -> Result<Generation, RageError>;

    /// Evaluate a batch of perturbations, returning one result per input in
    /// input order.
    ///
    /// The results must be exactly what element-wise
    /// [`generation_for`](Evaluate::generation_for) calls would produce;
    /// batching is a throughput lever, never a semantic one.
    fn evaluate_batch(&self, perturbations: &[Perturbation]) -> Vec<Result<Generation, RageError>>;

    /// How many perturbations a search should submit per
    /// [`evaluate_batch`](Evaluate::evaluate_batch) call to keep this
    /// evaluator busy. Searches with early exits may evaluate up to this many
    /// candidates speculatively past the exit point.
    fn preferred_batch(&self) -> usize {
        1
    }

    /// Number of *actual* LLM inferences performed so far (cache hits excluded).
    fn llm_calls(&self) -> usize;

    /// Number of distinct perturbations evaluated so far.
    fn evaluations(&self) -> usize;

    /// Hit/miss counters of the memo cache (`misses == llm_calls`; the memo
    /// never evicts, so `evictions` is always 0).
    fn cache_stats(&self) -> CacheStats;

    /// The rendered prompt text for a perturbation (for provenance display).
    fn prompt_text(&self, perturbation: &Perturbation) -> Result<String, RageError>;

    /// Number of sources `k` in the context.
    fn k(&self) -> usize {
        self.context().len()
    }

    /// The raw answer string for a perturbation.
    fn answer_for(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        Ok(self.generation_for(perturbation)?.answer)
    }

    /// The answer over the full, unperturbed context (`a = L(q, Dq)`).
    fn full_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::identity_combination(self.k()))
    }

    /// The generation over the full, unperturbed context (used by attention scoring).
    fn full_context_generation(&self) -> Result<Generation, RageError> {
        self.generation_for(&Perturbation::identity_combination(self.k()))
    }

    /// The answer over the empty context (prior knowledge only).
    fn empty_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::Combination(Vec::new()))
    }
}

/// The shared memo: perturbation → generation, striped to keep worker threads
/// off each other's locks.
struct StripedMemo {
    stripes: Vec<Mutex<HashMap<Perturbation, Generation>>>,
}

impl StripedMemo {
    fn new() -> Self {
        Self {
            stripes: (0..MEMO_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn stripe_of(&self, key: &Perturbation) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.stripes.len()
    }

    fn get(&self, key: &Perturbation) -> Option<Generation> {
        self.stripes[self.stripe_of(key)]
            .lock()
            .expect("memo stripe poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: Perturbation, value: Generation) {
        let stripe = self.stripe_of(&key);
        self.stripes[stripe]
            .lock()
            .expect("memo stripe poisoned")
            .insert(key, value);
    }

    fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe poisoned").len())
            .sum()
    }
}

/// Evaluates perturbations of one fixed (question, context) pair against an
/// LLM, strictly on the calling thread.
///
/// This is the sequential [`Evaluate`] implementation and the cache/counter
/// substrate the [`ParallelEvaluator`] wraps. It is `Sync`: the memo is a
/// lock-striped map and the counters are atomics.
pub struct Evaluator {
    llm: Arc<dyn LanguageModel>,
    prompt_builder: PromptBuilder,
    context: Context,
    question: String,
    cache: StripedMemo,
    llm_calls: AtomicUsize,
    cache_hits: AtomicUsize,
}

impl Evaluator {
    /// Create an evaluator for a context; the question defaults to the context's query.
    pub fn new(llm: Arc<dyn LanguageModel>, context: Context) -> Self {
        let question = context.query.clone();
        Self {
            llm,
            prompt_builder: PromptBuilder::default(),
            context,
            question,
            cache: StripedMemo::new(),
            llm_calls: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// Override the question (when it differs from the retrieval query).
    pub fn with_question(mut self, question: impl Into<String>) -> Self {
        self.question = question.into();
        self
    }

    /// Override the prompt template.
    pub fn with_prompt_builder(mut self, builder: PromptBuilder) -> Self {
        self.prompt_builder = builder;
        self
    }

    /// The context being explained.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The question posed to the LLM.
    pub fn question(&self) -> &str {
        &self.question
    }

    /// Number of sources `k` in the context.
    pub fn k(&self) -> usize {
        self.context.len()
    }

    /// Number of *actual* LLM inferences performed so far (cache hits excluded).
    pub fn llm_calls(&self) -> usize {
        self.llm_calls.load(Ordering::SeqCst)
    }

    /// Number of distinct perturbations evaluated so far.
    pub fn evaluations(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss counters of the memo cache. Every miss is exactly one LLM
    /// inference (`misses == llm_calls`); lookups that error before reaching
    /// the model (invalid perturbations) count as neither.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::SeqCst) as u64,
            misses: self.llm_calls.load(Ordering::SeqCst) as u64,
            evictions: 0,
        }
    }

    /// Cache-canonical form of a perturbation: the identity permutation
    /// produces the same prompt as the full-context combination, so both map
    /// to one cache entry (and one LLM call).
    fn canonical(&self, perturbation: &Perturbation) -> Perturbation {
        match perturbation {
            Perturbation::Permutation(order)
                if order.len() == self.context.len()
                    && order
                        .iter()
                        .enumerate()
                        .all(|(prompt, &source)| prompt == source) =>
            {
                Perturbation::Combination(order.clone())
            }
            _ => perturbation.clone(),
        }
    }

    /// The full generation (answer + attention read-out) for a perturbation.
    pub fn generation_for(&self, perturbation: &Perturbation) -> Result<Generation, RageError> {
        let key = self.canonical(perturbation);
        if let Some(hit) = self.cache.get(&key) {
            self.cache_hits.fetch_add(1, Ordering::SeqCst);
            return Ok(hit);
        }
        let sources = perturbation.apply(&self.context)?;
        let input = self.prompt_builder.build_input(&self.question, &sources);
        let generation = self.llm.generate(&input);
        self.llm_calls.fetch_add(1, Ordering::SeqCst);
        self.cache.insert(key, generation.clone());
        Ok(generation)
    }

    /// Evaluate a batch one perturbation at a time, in input order.
    pub fn evaluate_batch(
        &self,
        perturbations: &[Perturbation],
    ) -> Vec<Result<Generation, RageError>> {
        perturbations
            .iter()
            .map(|p| self.generation_for(p))
            .collect()
    }

    /// The raw answer string for a perturbation.
    pub fn answer_for(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        Ok(self.generation_for(perturbation)?.answer)
    }

    /// The answer over the full, unperturbed context (`a = L(q, Dq)`).
    pub fn full_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::identity_combination(self.k()))
    }

    /// The generation over the full, unperturbed context (used by attention scoring).
    pub fn full_context_generation(&self) -> Result<Generation, RageError> {
        self.generation_for(&Perturbation::identity_combination(self.k()))
    }

    /// The answer over the empty context (prior knowledge only).
    pub fn empty_context_answer(&self) -> Result<String, RageError> {
        self.answer_for(&Perturbation::Combination(Vec::new()))
    }

    /// The rendered prompt text for a perturbation (for provenance display).
    pub fn prompt_text(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        let sources = perturbation.apply(&self.context)?;
        Ok(self.prompt_builder.render(&self.question, &sources))
    }
}

impl Evaluate for Evaluator {
    fn context(&self) -> &Context {
        Evaluator::context(self)
    }

    fn question(&self) -> &str {
        Evaluator::question(self)
    }

    fn generation_for(&self, perturbation: &Perturbation) -> Result<Generation, RageError> {
        Evaluator::generation_for(self, perturbation)
    }

    fn evaluate_batch(&self, perturbations: &[Perturbation]) -> Vec<Result<Generation, RageError>> {
        Evaluator::evaluate_batch(self, perturbations)
    }

    fn llm_calls(&self) -> usize {
        Evaluator::llm_calls(self)
    }

    fn evaluations(&self) -> usize {
        Evaluator::evaluations(self)
    }

    fn cache_stats(&self) -> CacheStats {
        Evaluator::cache_stats(self)
    }

    fn prompt_text(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        Evaluator::prompt_text(self, perturbation)
    }
}

/// One unit of work for the pool: evaluate `perturbation`, report under `index`.
struct Job {
    index: usize,
    perturbation: Perturbation,
}

/// A fixed set of worker threads fed over an mpsc channel.
///
/// Workers pull jobs from a shared receiver (guarded by a mutex — contention
/// is negligible because one job costs an LLM inference) and push
/// `(index, result)` pairs back on a shared result channel. The `dispatch`
/// mutex serialises whole batches so results from concurrent
/// [`ParallelEvaluator::evaluate_batch`] callers cannot interleave. Dropping
/// the pool closes the job channel, which terminates every worker.
struct WorkerPool {
    job_tx: Option<mpsc::Sender<Job>>,
    result_rx: Mutex<mpsc::Receiver<(usize, Result<Generation, RageError>)>>,
    dispatch: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(inner: Arc<Evaluator>, threads: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel();
        let handles = (0..threads)
            .map(|worker| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rage-eval-{worker}"))
                    .spawn(move || loop {
                        // The guard is scoped to the recv: one worker at a
                        // time waits on the channel, then releases the lock to
                        // run the (comparatively huge) inference.
                        let job = {
                            let rx = job_rx.lock().expect("job channel poisoned");
                            rx.recv()
                        };
                        match job {
                            Ok(job) => {
                                let result = inner.generation_for(&job.perturbation);
                                if result_tx.send((job.index, result)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break, // job channel closed: shut down
                        }
                    })
                    .expect("failed to spawn evaluator worker thread")
            })
            .collect();
        Self {
            job_tx: Some(job_tx),
            result_rx: Mutex::new(result_rx),
            dispatch: Mutex::new(()),
            handles,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel makes every worker's recv() fail, so they
        // exit their loops; then reap them.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A batched, parallel [`Evaluate`] implementation over a worker-thread pool.
///
/// Wraps a (shared, `Sync`) [`Evaluator`]: the memo cache, the counters and
/// the LLM handle all live in the inner evaluator, so sequential calls through
/// [`ParallelEvaluator::generation_for`] and batched calls through
/// [`ParallelEvaluator::evaluate_batch`] observe one coherent cache.
///
/// Batches are deduplicated by canonical perturbation before dispatch — each
/// distinct perturbation is evaluated by exactly one worker — which keeps the
/// `llm_calls`/hit/miss accounting identical to a sequential evaluation of the
/// same batch. Results are scattered back by input index, so batch output
/// order (and content, the model being deterministic) is byte-identical to the
/// sequential evaluator's regardless of thread count or scheduling. See the
/// module docs for the full concurrency model.
pub struct ParallelEvaluator {
    inner: Arc<Evaluator>,
    threads: usize,
    batch_window: usize,
    pool: WorkerPool,
}

impl ParallelEvaluator {
    /// Spawn a pool of `threads` workers (clamped to at least 1) over the
    /// given evaluator.
    pub fn new(evaluator: Evaluator, threads: usize) -> Self {
        Self::from_shared(Arc::new(evaluator), threads)
    }

    /// Like [`ParallelEvaluator::new`] but sharing an evaluator that other
    /// parties hold too (they all see the same memo cache and counters).
    pub fn from_shared(inner: Arc<Evaluator>, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = WorkerPool::spawn(Arc::clone(&inner), threads);
        Self {
            inner,
            threads,
            batch_window: DEFAULT_BATCH_WINDOW,
            pool,
        }
    }

    /// Override the advertised batch window (clamped to at least 1).
    ///
    /// Larger windows feed the pool better but evaluate more speculative
    /// candidates past a search's early exit; the window affects cost
    /// accounting only, never which explanation is found.
    pub fn with_batch_window(mut self, window: usize) -> Self {
        self.batch_window = window.max(1);
        self
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped sequential evaluator (shared cache and counters).
    pub fn inner(&self) -> &Evaluator {
        &self.inner
    }

    /// Evaluate a batch across the worker pool; results arrive in input order.
    pub fn evaluate_batch(
        &self,
        perturbations: &[Perturbation],
    ) -> Vec<Result<Generation, RageError>> {
        if perturbations.is_empty() {
            return Vec::new();
        }
        // Deduplicate by canonical key so each distinct perturbation is
        // evaluated exactly once (keeping llm_calls identical to a sequential
        // pass over the same batch).
        let mut seen: HashSet<Perturbation> = HashSet::new();
        let mut unique: Vec<usize> = Vec::new();
        for (index, perturbation) in perturbations.iter().enumerate() {
            if seen.insert(self.inner.canonical(perturbation)) {
                unique.push(index);
            }
        }

        let mut slots: Vec<Option<Result<Generation, RageError>>> =
            (0..perturbations.len()).map(|_| None).collect();
        {
            // Serialise whole batches: the result channel is shared, and
            // interleaved batches would steal each other's (index, result)
            // pairs.
            let _batch = self.pool.dispatch.lock().expect("dispatch lock poisoned");
            let job_tx = self
                .pool
                .job_tx
                .as_ref()
                .expect("worker pool alive while evaluator exists");
            for &index in &unique {
                job_tx
                    .send(Job {
                        index,
                        perturbation: perturbations[index].clone(),
                    })
                    .expect("worker pool alive while evaluator exists");
            }
            let result_rx = self.pool.result_rx.lock().expect("result channel poisoned");
            let mut received = 0usize;
            while received < unique.len() {
                match result_rx.recv_timeout(std::time::Duration::from_millis(100)) {
                    Ok((index, result)) => {
                        slots[index] = Some(result);
                        received += 1;
                    }
                    // A worker can only exit while the pool lives if it
                    // panicked mid-inference (its result will never arrive);
                    // propagate instead of waiting forever. The timeout only
                    // paces this liveness check — slow inferences keep
                    // looping until their results land.
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if self.pool.handles.iter().any(|handle| handle.is_finished()) {
                            panic!("evaluator worker thread panicked during a batch");
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        panic!("evaluator worker pool disconnected during a batch");
                    }
                }
            }
        }

        // Duplicates resolve through the (now warm) memo — a cache hit for
        // successes, the identical deterministic error otherwise — exactly as
        // they would sequentially.
        slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Some(result) => result,
                None => self.inner.generation_for(&perturbations[index]),
            })
            .collect()
    }
}

impl Evaluate for ParallelEvaluator {
    fn context(&self) -> &Context {
        self.inner.context()
    }

    fn question(&self) -> &str {
        self.inner.question()
    }

    fn generation_for(&self, perturbation: &Perturbation) -> Result<Generation, RageError> {
        self.inner.generation_for(perturbation)
    }

    fn evaluate_batch(&self, perturbations: &[Perturbation]) -> Vec<Result<Generation, RageError>> {
        ParallelEvaluator::evaluate_batch(self, perturbations)
    }

    fn preferred_batch(&self) -> usize {
        self.batch_window
    }

    fn llm_calls(&self) -> usize {
        self.inner.llm_calls()
    }

    fn evaluations(&self) -> usize {
        self.inner.evaluations()
    }

    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    fn prompt_text(&self, perturbation: &Perturbation) -> Result<String, RageError> {
        self.inner.prompt_text(perturbation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_llm::{LlmInput, SourceText};
    use rage_retrieval::Document;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A trivial deterministic model: answers with the id of the first source, or
    /// "nothing" for an empty context. Counts its invocations.
    struct FirstSourceLlm {
        calls: AtomicUsize,
    }

    impl FirstSourceLlm {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for FirstSourceLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let answer = input
                .sources
                .first()
                .map(|s: &SourceText| s.id.clone())
                .unwrap_or_else(|| "nothing".to_string());
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![
                    1.0 / input.sources.len().max(1) as f64;
                    input.sources.len()
                ],
                prompt_tokens: 1,
            }
        }
        fn name(&self) -> &str {
            "first-source"
        }
    }

    fn context() -> Context {
        Context::from_documents(
            "what is first?",
            &[
                Document::new("a", "", "alpha"),
                Document::new("b", "", "beta"),
                Document::new("c", "", "gamma"),
            ],
        )
    }

    #[test]
    fn answers_follow_the_perturbed_context() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert_eq!(evaluator.full_context_answer().unwrap(), "a");
        assert_eq!(
            evaluator
                .answer_for(&Perturbation::Combination(vec![1, 2]))
                .unwrap(),
            "b"
        );
        assert_eq!(
            evaluator
                .answer_for(&Perturbation::Permutation(vec![2, 0, 1]))
                .unwrap(),
            "c"
        );
        assert_eq!(evaluator.empty_context_answer().unwrap(), "nothing");
    }

    #[test]
    fn cache_prevents_repeated_llm_calls() {
        let llm = Arc::new(FirstSourceLlm::new());
        let evaluator = Evaluator::new(llm.clone(), context());
        let p = Perturbation::Combination(vec![0, 2]);
        for _ in 0..5 {
            evaluator.answer_for(&p).unwrap();
        }
        assert_eq!(evaluator.llm_calls(), 1);
        assert_eq!(llm.calls.load(Ordering::SeqCst), 1);
        assert_eq!(evaluator.evaluations(), 1);
    }

    #[test]
    fn cache_stats_pin_hit_and_miss_accounting() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert_eq!(evaluator.cache_stats(), CacheStats::default());

        let p = Perturbation::Combination(vec![0, 2]);
        evaluator.answer_for(&p).unwrap(); // miss
        evaluator.answer_for(&p).unwrap(); // hit
        evaluator.answer_for(&p).unwrap(); // hit
        evaluator.full_context_answer().unwrap(); // miss
                                                  // The identity permutation aliases to the full-context entry: a hit.
        evaluator
            .answer_for(&Perturbation::identity_permutation(3))
            .unwrap();

        let stats = evaluator.cache_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses as usize, evaluator.llm_calls());
        assert_eq!(stats.lookups(), 5);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);

        // Invalid perturbations count as neither hit nor miss.
        assert!(evaluator
            .answer_for(&Perturbation::Combination(vec![9]))
            .is_err());
        assert_eq!(evaluator.cache_stats(), stats);
    }

    #[test]
    fn identity_permutation_shares_the_full_context_cache_entry() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        evaluator.full_context_answer().unwrap();
        let via_permutation = evaluator
            .answer_for(&Perturbation::identity_permutation(3))
            .unwrap();
        assert_eq!(via_permutation, "a");
        // Same prompt, one inference, one cache entry.
        assert_eq!(evaluator.llm_calls(), 1);
        assert_eq!(evaluator.evaluations(), 1);
        // A *shorter* prefix permutation is not the identity and must still be
        // rejected as invalid rather than aliased to a combination.
        assert!(evaluator
            .answer_for(&Perturbation::Permutation(vec![0, 1]))
            .is_err());
    }

    #[test]
    fn distinct_perturbations_are_distinct_calls() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        evaluator.full_context_answer().unwrap();
        evaluator.empty_context_answer().unwrap();
        evaluator
            .answer_for(&Perturbation::Permutation(vec![1, 0, 2]))
            .unwrap();
        assert_eq!(evaluator.llm_calls(), 3);
    }

    #[test]
    fn invalid_perturbations_propagate_errors() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert!(evaluator
            .answer_for(&Perturbation::Combination(vec![5]))
            .is_err());
        assert_eq!(evaluator.llm_calls(), 0);
    }

    #[test]
    fn question_override_is_used_in_prompts() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context())
            .with_question("custom question?");
        assert_eq!(evaluator.question(), "custom question?");
        let text = evaluator
            .prompt_text(&Perturbation::identity_combination(3))
            .unwrap();
        assert!(text.contains("custom question?"));
        assert!(text.contains("alpha"));
    }

    #[test]
    fn full_generation_exposes_attention() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        let generation = evaluator.full_context_generation().unwrap();
        assert_eq!(generation.source_attention.len(), 3);
    }

    #[test]
    fn sequential_batch_matches_elementwise_calls() {
        let batch = vec![
            Perturbation::Combination(vec![0, 1, 2]),
            Perturbation::Combination(vec![1, 2]),
            Perturbation::Combination(vec![1, 2]), // duplicate: a hit
            Perturbation::Permutation(vec![2, 0, 1]),
        ];
        let reference = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        let expected: Vec<Generation> = batch
            .iter()
            .map(|p| reference.generation_for(p).unwrap())
            .collect();

        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        let results = evaluator.evaluate_batch(&batch);
        let got: Vec<Generation> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expected);
        assert_eq!(evaluator.llm_calls(), reference.llm_calls());
        assert_eq!(evaluator.cache_stats(), reference.cache_stats());
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_sequential() {
        let batch: Vec<Perturbation> = vec![
            Perturbation::Combination(vec![0]),
            Perturbation::Combination(vec![1]),
            Perturbation::Combination(vec![2]),
            Perturbation::Combination(vec![0, 1]),
            Perturbation::Combination(vec![0, 2]),
            Perturbation::Combination(vec![1, 2]),
            Perturbation::Combination(vec![0, 1, 2]),
            Perturbation::Permutation(vec![1, 0, 2]),
            Perturbation::Permutation(vec![2, 1, 0]),
            Perturbation::Combination(vec![0, 1]), // duplicate
            Perturbation::identity_permutation(3), // aliases the full context
        ];
        let sequential = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        let expected = sequential.evaluate_batch(&batch);

        for threads in [1, 2, 4, 8] {
            let llm = Arc::new(FirstSourceLlm::new());
            let parallel = ParallelEvaluator::new(Evaluator::new(llm.clone(), context()), threads);
            let got = parallel.evaluate_batch(&batch);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(
                    g.as_ref().unwrap(),
                    e.as_ref().unwrap(),
                    "threads={threads}"
                );
            }
            // Dedup keeps true inference counts identical to sequential.
            assert_eq!(parallel.llm_calls(), sequential.llm_calls());
            assert_eq!(
                llm.calls.load(Ordering::SeqCst),
                sequential.llm_calls(),
                "threads={threads}"
            );
            assert_eq!(parallel.cache_stats(), sequential.cache_stats());
        }
    }

    #[test]
    fn parallel_batch_propagates_errors_per_item() {
        let parallel = ParallelEvaluator::new(
            Evaluator::new(Arc::new(FirstSourceLlm::new()), context()),
            4,
        );
        let batch = vec![
            Perturbation::Combination(vec![0]),
            Perturbation::Combination(vec![9]), // invalid
            Perturbation::Combination(vec![9]), // duplicate invalid
            Perturbation::Combination(vec![1]),
        ];
        let results = parallel.evaluate_batch(&batch);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_err());
        assert!(results[3].is_ok());
    }

    /// Answers normally except for the empty context, where it panics.
    struct PanicOnEmptyLlm;

    impl LanguageModel for PanicOnEmptyLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            let answer = input
                .sources
                .first()
                .map(|s| s.id.clone())
                .unwrap_or_else(|| panic!("poison perturbation reached the model"));
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        let parallel =
            ParallelEvaluator::new(Evaluator::new(Arc::new(PanicOnEmptyLlm), context()), 2);
        let batch = vec![
            Perturbation::Combination(vec![0]),
            Perturbation::Combination(vec![]), // triggers the model panic
            Perturbation::Combination(vec![1]),
        ];
        let _ = parallel.evaluate_batch(&batch);
    }

    #[test]
    fn parallel_empty_batch_is_a_no_op() {
        let parallel = ParallelEvaluator::new(
            Evaluator::new(Arc::new(FirstSourceLlm::new()), context()),
            2,
        );
        assert!(parallel.evaluate_batch(&[]).is_empty());
        assert_eq!(parallel.llm_calls(), 0);
    }

    #[test]
    fn parallel_evaluator_reports_fixed_window_and_threads() {
        let parallel = ParallelEvaluator::new(
            Evaluator::new(Arc::new(FirstSourceLlm::new()), context()),
            0,
        );
        assert_eq!(parallel.threads(), 1); // clamped
        assert_eq!(Evaluate::preferred_batch(&parallel), DEFAULT_BATCH_WINDOW);
        let parallel = parallel.with_batch_window(0);
        assert_eq!(Evaluate::preferred_batch(&parallel), 1); // clamped

        let sequential = Evaluator::new(Arc::new(FirstSourceLlm::new()), context());
        assert_eq!(Evaluate::preferred_batch(&sequential), 1);
    }

    #[test]
    fn shared_inner_evaluator_shares_the_memo() {
        let inner = Arc::new(Evaluator::new(Arc::new(FirstSourceLlm::new()), context()));
        let parallel = ParallelEvaluator::from_shared(Arc::clone(&inner), 2);
        parallel
            .evaluate_batch(&[Perturbation::Combination(vec![0, 1])])
            .into_iter()
            .for_each(|r| {
                r.unwrap();
            });
        // The same perturbation through the inner handle is a cache hit.
        inner
            .answer_for(&Perturbation::Combination(vec![0, 1]))
            .unwrap();
        assert_eq!(inner.llm_calls(), 1);
        assert_eq!(inner.cache_stats().hits, 1);
    }
}
