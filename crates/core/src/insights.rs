//! Perturbation insights: answer distributions, frequency tables and rules.
//!
//! Counterfactuals pinpoint one answer-changing perturbation; *insights*
//! characterise the model's behaviour over a whole *sample* of perturbations
//! (§II-B): how the answers distribute, how often each source appears in the
//! contexts producing each answer and at which prompt position, and which
//! simple presence/absence rules ("whenever source `d` is present the answer
//! is `a`") hold with high confidence. Samples are evaluated through the
//! [`Evaluator`], so repeated perturbations cost nothing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rage_assignment::combinations::SizeOrderedSubsets;
use rage_assignment::permutations::sample_permutations;

use crate::answer::normalize_answer;
use crate::budget::{BudgetStop, Completeness, SearchBudget};
use crate::counterfactual::SearchStats;
use crate::error::RageError;
use crate::evaluator::Evaluate;
use crate::perturbation::Perturbation;

/// A normal-approximation 95% confidence interval for an answer share,
/// attached when a budget truncated the sample (the evaluated prefix is then
/// an estimate of the full seeded sample's distribution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareInterval {
    /// Lower bound of the interval (clamped to 0).
    pub lower: f64,
    /// Upper bound of the interval (clamped to 1).
    pub upper: f64,
}

impl ShareInterval {
    /// The Wald interval `p ± 1.96·sqrt(p(1−p)/n)` clamped to `[0, 1]`.
    pub fn normal_approx(share: f64, n: usize) -> Self {
        let half = 1.96 * (share * (1.0 - share) / n.max(1) as f64).sqrt();
        ShareInterval {
            lower: (share - half).max(0.0),
            upper: (share + half).min(1.0),
        }
    }
}

/// One answer and its share of the sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerShare {
    /// A representative surface form of the answer.
    pub answer: String,
    /// The normalised form used for grouping.
    pub normalized: String,
    /// Number of samples producing this answer.
    pub count: usize,
    /// Fraction of all samples producing this answer.
    pub share: f64,
    /// 95% confidence interval for the share, present only when the sample was
    /// budget- or deadline-truncated (an exact sample needs no interval).
    pub interval: Option<ShareInterval>,
}

/// The distribution of answers over a perturbation sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AnswerDistribution {
    /// Total number of samples.
    pub total: usize,
    /// Entries sorted by descending count (ties by normalised answer).
    pub entries: Vec<AnswerShare>,
}

impl AnswerDistribution {
    /// The most frequent answer, if the sample is non-empty.
    pub fn top(&self) -> Option<&AnswerShare> {
        self.entries.first()
    }

    /// Number of distinct (normalised) answers.
    pub fn num_answers(&self) -> usize {
        self.entries.len()
    }

    /// The share of a given answer (0 when absent), compared normalised.
    pub fn share_of(&self, answer: &str) -> f64 {
        let needle = normalize_answer(answer);
        self.entries
            .iter()
            .find(|e| e.normalized == needle)
            .map(|e| e.share)
            .unwrap_or(0.0)
    }
}

/// Per-source, per-answer occurrence statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyCell {
    /// The normalised answer this cell describes.
    pub answer: String,
    /// Samples with this answer in which the source was present.
    pub present: usize,
    /// Samples with this answer overall.
    pub out_of: usize,
    /// Mean prompt position of the source when present (0 = first), if ever.
    pub mean_position: Option<f64>,
}

/// One source's row of the frequency table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyRow {
    /// Context position of the source.
    pub source: usize,
    /// Document id of the source.
    pub doc_id: String,
    /// Samples in which the source was present at all.
    pub present_in: usize,
    /// Per-answer occurrence cells, one per distinct answer.
    pub cells: Vec<FrequencyCell>,
}

/// The source × answer frequency table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FrequencyTable {
    /// One row per context source.
    pub rows: Vec<FrequencyRow>,
}

/// A mined presence/absence rule: "when source `s` is present (absent), the
/// answer is `a`".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresenceRule {
    /// Context position of the source.
    pub source: usize,
    /// Document id of the source.
    pub doc_id: String,
    /// `true` for a presence rule, `false` for an absence rule.
    pub present: bool,
    /// The implied (normalised) answer.
    pub answer: String,
    /// Fraction of *all* samples matching both the condition and the answer.
    pub support: f64,
    /// Fraction of condition-matching samples that produce the answer.
    pub confidence: f64,
}

/// Insights computed over one perturbation sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insights {
    /// Number of perturbations in the sample.
    pub num_samples: usize,
    /// Whether the whole requested sample was evaluated, or a budget/deadline
    /// truncated it to a prefix (the unevaluated tail is counted as `pruned`).
    pub completeness: Completeness,
    /// The answer distribution.
    pub distribution: AnswerDistribution,
    /// The source × answer frequency table.
    pub table: FrequencyTable,
    /// Rules meeting the confidence threshold, strongest first.
    pub rules: Vec<PresenceRule>,
    /// Cost accounting for evaluating the sample.
    pub stats: SearchStats,
}

/// Minimum confidence for a rule to be reported by [`Insights::from_perturbations`].
pub const DEFAULT_MIN_CONFIDENCE: f64 = 0.8;

/// Every non-empty combination of `k` sources up to `max_size` (all sizes when
/// `None`), in the search's size-then-lexicographic order.
pub fn all_combinations(k: usize, max_size: Option<usize>) -> Vec<Perturbation> {
    SizeOrderedSubsets::bounded(k, max_size.unwrap_or(k))
        .map(Perturbation::Combination)
        .collect()
}

/// `s` uniformly random permutations of `k` sources (deterministic in `seed`),
/// sampled with the `O(k·s)` Fisher–Yates sampler.
pub fn random_permutations(k: usize, s: usize, seed: u64) -> Vec<Perturbation> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_permutations(k, s, &mut rng)
        .into_iter()
        .map(Perturbation::Permutation)
        .collect()
}

impl Insights {
    /// Evaluate every perturbation and aggregate distribution, table and rules
    /// (rules need [`DEFAULT_MIN_CONFIDENCE`]; use
    /// [`Insights::with_min_confidence`] to override).
    pub fn from_perturbations<E: Evaluate + ?Sized>(
        evaluator: &E,
        perturbations: &[Perturbation],
    ) -> Result<Self, RageError> {
        Self::with_min_confidence(evaluator, perturbations, DEFAULT_MIN_CONFIDENCE)
    }

    /// Like [`Insights::from_perturbations`] with an explicit rule-confidence
    /// threshold in `[0, 1]`.
    ///
    /// The whole sample is needed (no early exit), so it is submitted to the
    /// evaluator as one batch — on a parallel evaluator the sample fans out
    /// across the worker pool.
    pub fn with_min_confidence<E: Evaluate + ?Sized>(
        evaluator: &E,
        perturbations: &[Perturbation],
        min_confidence: f64,
    ) -> Result<Self, RageError> {
        Self::with_budget(
            evaluator,
            perturbations,
            min_confidence,
            &SearchBudget::UNLIMITED,
        )
    }

    /// Like [`Insights::with_min_confidence`] under a [`SearchBudget`].
    ///
    /// An evaluation cap keeps the *prefix* of the (seeded, deterministic)
    /// sample, so two runs with the same seed and cap see identical
    /// perturbations. Without a deadline the kept sample is submitted as one
    /// batch — identical fan-out to the unbudgeted path; with a deadline it is
    /// evaluated in windows of [`Evaluate::preferred_batch`] with the budget
    /// checked before each window. When the sample is truncated, the returned
    /// [`Insights::completeness`] is non-`Exact` (counting the unevaluated
    /// tail as `pruned`) and every [`AnswerShare`] carries a
    /// normal-approximation 95% confidence interval for its share.
    pub fn with_budget<E: Evaluate + ?Sized>(
        evaluator: &E,
        perturbations: &[Perturbation],
        min_confidence: f64,
        budget: &SearchBudget,
    ) -> Result<Self, RageError> {
        let k = evaluator.k();
        let llm_calls_before = evaluator.llm_calls();

        // The evaluation cap truncates the deterministic sample to a prefix.
        let capped: &[Perturbation] = match budget.max_evaluations {
            Some(cap) if cap < perturbations.len() => &perturbations[..cap],
            _ => perturbations,
        };

        // Evaluate the sample: (perturbation, normalised answer, surface form).
        let mut samples: Vec<(&Perturbation, String, String)> = Vec::with_capacity(capped.len());
        let mut deadline_stop: Option<BudgetStop> = None;
        if budget.deadline.is_none() {
            let results = evaluator.evaluate_batch(capped);
            for (perturbation, result) in capped.iter().zip(results) {
                let answer = result?.answer;
                samples.push((perturbation, normalize_answer(&answer), answer));
            }
        } else {
            let window = evaluator.preferred_batch().max(1);
            let mut next = 0usize;
            while next < capped.len() {
                if let Some(stop) = budget.check(next) {
                    deadline_stop = Some(stop);
                    break;
                }
                let chunk = &capped[next..(next + window).min(capped.len())];
                let results = evaluator.evaluate_batch(chunk);
                for (perturbation, result) in chunk.iter().zip(results) {
                    let answer = result?.answer;
                    samples.push((perturbation, normalize_answer(&answer), answer));
                }
                next += chunk.len();
            }
        }
        let total = samples.len();
        let completeness = match deadline_stop {
            Some(stop) => Completeness::from_stop(stop, total, perturbations.len() - total),
            None if total < perturbations.len() => Completeness::BudgetTruncated {
                evaluated: total,
                pruned: perturbations.len() - total,
            },
            None => Completeness::Exact,
        };

        // Distribution.
        let mut counts: BTreeMap<String, (usize, String)> = BTreeMap::new();
        for (_, normalized, surface) in &samples {
            let entry = counts
                .entry(normalized.clone())
                .or_insert((0, surface.clone()));
            entry.0 += 1;
        }
        let mut entries: Vec<AnswerShare> = counts
            .into_iter()
            .map(|(normalized, (count, answer))| AnswerShare {
                answer,
                normalized,
                count,
                share: if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                },
                interval: None,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.normalized.cmp(&b.normalized))
        });
        if !completeness.is_exact() && total > 0 {
            // A truncated sample only estimates the full sample's shares:
            // attach the uncertainty.
            for entry in &mut entries {
                entry.interval = Some(ShareInterval::normal_approx(entry.share, total));
            }
        }
        let distribution = AnswerDistribution { total, entries };

        // Presence and position of each source in each sample.
        // position_of[source] = Some(prompt position) when present.
        let positions_per_sample: Vec<Vec<Option<usize>>> = samples
            .iter()
            .map(|(perturbation, _, _)| {
                let mut positions = vec![None; k];
                let indices: &[usize] = match perturbation {
                    Perturbation::Combination(kept) => kept,
                    Perturbation::Permutation(order) => order,
                };
                for (prompt_pos, &source) in indices.iter().enumerate() {
                    positions[source] = Some(prompt_pos);
                }
                positions
            })
            .collect();

        // Frequency table.
        let answers: Vec<&str> = distribution
            .entries
            .iter()
            .map(|e| e.normalized.as_str())
            .collect();
        let mut rows = Vec::with_capacity(k);
        for source in 0..k {
            let doc_id = evaluator
                .context()
                .get(source)
                .map(|s| s.doc_id.clone())
                .unwrap_or_default();
            let present_in = positions_per_sample
                .iter()
                .filter(|positions| positions[source].is_some())
                .count();
            let mut cells = Vec::with_capacity(answers.len());
            for &answer in &answers {
                let mut present = 0usize;
                let mut out_of = 0usize;
                let mut position_sum = 0usize;
                for ((_, normalized, _), positions) in
                    samples.iter().zip(positions_per_sample.iter())
                {
                    if normalized != answer {
                        continue;
                    }
                    out_of += 1;
                    if let Some(position) = positions[source] {
                        present += 1;
                        position_sum += position;
                    }
                }
                cells.push(FrequencyCell {
                    answer: answer.to_string(),
                    present,
                    out_of,
                    mean_position: (present > 0).then(|| position_sum as f64 / present as f64),
                });
            }
            rows.push(FrequencyRow {
                source,
                doc_id,
                present_in,
                cells,
            });
        }
        let table = FrequencyTable { rows };

        // Rules: for each source and condition (present/absent), the answer
        // distribution conditioned on it.
        let mut rules = Vec::new();
        for row in &table.rows {
            for present in [true, false] {
                let condition_count = if present {
                    row.present_in
                } else {
                    total - row.present_in
                };
                if condition_count == 0 {
                    continue;
                }
                for cell in &row.cells {
                    let matching = if present {
                        cell.present
                    } else {
                        cell.out_of - cell.present
                    };
                    if matching == 0 {
                        continue;
                    }
                    let confidence = matching as f64 / condition_count as f64;
                    if confidence < min_confidence {
                        continue;
                    }
                    rules.push(PresenceRule {
                        source: row.source,
                        doc_id: row.doc_id.clone(),
                        present,
                        answer: cell.answer.clone(),
                        support: matching as f64 / total.max(1) as f64,
                        confidence,
                    });
                }
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| b.support.total_cmp(&a.support))
                .then_with(|| a.source.cmp(&b.source))
        });

        Ok(Insights {
            num_samples: total,
            completeness,
            distribution,
            table,
            rules,
            stats: SearchStats {
                candidates: total,
                llm_calls: evaluator.llm_calls() - llm_calls_before,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::evaluator::Evaluator;
    use rage_assignment::permutations::is_permutation;
    use rage_llm::{Generation, LanguageModel, LlmInput};
    use rage_retrieval::Document;
    use std::sync::Arc;

    struct FirstSourceLlm;

    impl LanguageModel for FirstSourceLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            let answer = input
                .sources
                .first()
                .map(|s| s.id.clone())
                .unwrap_or_else(|| "nothing".to_string());
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    fn evaluator() -> Evaluator {
        Evaluator::new(
            Arc::new(FirstSourceLlm),
            Context::from_documents(
                "q",
                &[
                    Document::new("a", "", "alpha"),
                    Document::new("b", "", "beta"),
                    Document::new("c", "", "gamma"),
                ],
            ),
        )
    }

    #[test]
    fn sample_helpers_enumerate_and_sample() {
        let combos = all_combinations(3, None);
        assert_eq!(combos.len(), 7);
        assert!(matches!(&combos[0], Perturbation::Combination(v) if v == &vec![0]));

        let bounded = all_combinations(4, Some(2));
        assert!(bounded.iter().all(|p| p.len() <= 2));

        let perms = random_permutations(4, 10, 42);
        assert_eq!(perms.len(), 10);
        for p in &perms {
            match p {
                Perturbation::Permutation(order) => assert!(is_permutation(order, 4)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Deterministic in the seed.
        assert_eq!(perms, random_permutations(4, 10, 42));
    }

    #[test]
    fn permutation_sampling_matches_golden_values() {
        // Pins the whole sampling chain — vendored SplitMix64 stream →
        // widening-multiply index draw → Durstenfeld shuffle — so perturbation
        // samples (and therefore report insights) stay reproducible across
        // refactors of any link. The raw RNG stream has its own golden test in
        // the vendored `rand` crate.
        assert_eq!(
            random_permutations(4, 3, 42),
            vec![
                Perturbation::Permutation(vec![1, 3, 0, 2]),
                Perturbation::Permutation(vec![2, 3, 0, 1]),
                Perturbation::Permutation(vec![1, 3, 2, 0]),
            ]
        );
        assert_eq!(
            random_permutations(5, 2, 7),
            vec![
                Perturbation::Permutation(vec![3, 4, 2, 0, 1]),
                Perturbation::Permutation(vec![4, 3, 1, 0, 2]),
            ]
        );
    }

    #[test]
    fn distribution_counts_first_source_answers() {
        let ev = evaluator();
        let insights = Insights::from_perturbations(&ev, &all_combinations(3, None)).unwrap();
        assert_eq!(insights.num_samples, 7);
        // Subsets led by source 0: {0}, {0,1}, {0,2}, {0,1,2} → 4 × "a";
        // led by source 1: {1}, {1,2} → 2 × "b"; {2} → 1 × "c".
        assert_eq!(insights.distribution.top().unwrap().normalized, "a");
        assert_eq!(insights.distribution.top().unwrap().count, 4);
        assert_eq!(insights.distribution.num_answers(), 3);
        assert!((insights.distribution.share_of("A!") - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(insights.distribution.share_of("zzz"), 0.0);
    }

    #[test]
    fn frequency_table_tracks_presence_and_position() {
        let ev = evaluator();
        let insights = Insights::from_perturbations(&ev, &all_combinations(3, None)).unwrap();
        let row0 = &insights.table.rows[0];
        assert_eq!(row0.doc_id, "a");
        assert_eq!(row0.present_in, 4);
        // Source 0 appears in every "a"-answering sample, always at position 0.
        let cell_a = row0.cells.iter().find(|c| c.answer == "a").unwrap();
        assert_eq!(cell_a.present, 4);
        assert_eq!(cell_a.out_of, 4);
        assert_eq!(cell_a.mean_position, Some(0.0));
        // Source 0 never appears in a "b"-answering sample.
        let cell_b = row0.cells.iter().find(|c| c.answer == "b").unwrap();
        assert_eq!(cell_b.present, 0);
        assert!(cell_b.mean_position.is_none());
    }

    #[test]
    fn rules_capture_the_deciding_source() {
        let ev = evaluator();
        let insights = Insights::from_perturbations(&ev, &all_combinations(3, None)).unwrap();
        // "source a present → answer a" holds with confidence 1.
        let rule = insights
            .rules
            .iter()
            .find(|r| r.source == 0 && r.present)
            .expect("presence rule for source 0");
        assert_eq!(rule.answer, "a");
        assert_eq!(rule.doc_id, "a");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!((rule.support - 4.0 / 7.0).abs() < 1e-12);
        // Low-confidence associations are filtered out.
        assert!(insights
            .rules
            .iter()
            .all(|r| r.confidence >= DEFAULT_MIN_CONFIDENCE));
    }

    #[test]
    fn permutation_samples_have_full_presence() {
        let ev = evaluator();
        let perms = random_permutations(3, 12, 7);
        let insights = Insights::from_perturbations(&ev, &perms).unwrap();
        assert_eq!(insights.num_samples, 12);
        for row in &insights.table.rows {
            assert_eq!(row.present_in, 12);
        }
        // Every answer is some source id (never "nothing").
        assert!(insights
            .distribution
            .entries
            .iter()
            .all(|e| ["a", "b", "c"].contains(&e.normalized.as_str())));
    }

    #[test]
    fn cache_is_shared_with_other_searches() {
        let ev = evaluator();
        let combos = all_combinations(3, None);
        let first = Insights::from_perturbations(&ev, &combos).unwrap();
        assert_eq!(first.stats.llm_calls, 7);
        let second = Insights::from_perturbations(&ev, &combos).unwrap();
        assert_eq!(second.stats.llm_calls, 0);
        assert_eq!(second.distribution, first.distribution);
    }

    #[test]
    fn empty_sample_is_well_formed() {
        let ev = evaluator();
        let insights = Insights::from_perturbations(&ev, &[]).unwrap();
        assert_eq!(insights.num_samples, 0);
        assert_eq!(insights.completeness, Completeness::Exact);
        assert!(insights.distribution.top().is_none());
        assert!(insights.rules.is_empty());
        assert_eq!(insights.table.rows.len(), 3);
    }

    #[test]
    fn unlimited_budget_reproduces_the_plain_sample() {
        let combos = all_combinations(3, None);
        let plain = Insights::from_perturbations(&evaluator(), &combos).unwrap();
        let budgeted = Insights::with_budget(
            &evaluator(),
            &combos,
            DEFAULT_MIN_CONFIDENCE,
            &SearchBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(budgeted, plain);
        assert_eq!(budgeted.completeness, Completeness::Exact);
        assert!(budgeted
            .distribution
            .entries
            .iter()
            .all(|e| e.interval.is_none()));
    }

    #[test]
    fn evaluation_cap_keeps_the_sample_prefix_with_intervals() {
        let combos = all_combinations(3, None);
        let insights = Insights::with_budget(
            &evaluator(),
            &combos,
            DEFAULT_MIN_CONFIDENCE,
            &SearchBudget::max_evaluations(4),
        )
        .unwrap();
        assert_eq!(insights.num_samples, 4);
        assert_eq!(
            insights.completeness,
            Completeness::BudgetTruncated {
                evaluated: 4,
                pruned: 3
            }
        );
        // Prefix of the size-ordered subsets: {0}, {1}, {2}, {0,1} → answers
        // a, b, c, a.
        assert_eq!(insights.distribution.top().unwrap().normalized, "a");
        assert_eq!(insights.distribution.top().unwrap().count, 2);
        for entry in &insights.distribution.entries {
            let interval = entry.interval.expect("truncated shares carry intervals");
            assert!(interval.lower <= entry.share && entry.share <= interval.upper);
            assert!((0.0..=1.0).contains(&interval.lower));
            assert!((0.0..=1.0).contains(&interval.upper));
        }
    }

    #[test]
    fn expired_deadline_truncates_the_sample() {
        let combos = all_combinations(3, None);
        let deadline = crate::budget::Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let insights = Insights::with_budget(
            &evaluator(),
            &combos,
            DEFAULT_MIN_CONFIDENCE,
            &SearchBudget::UNLIMITED.with_deadline(deadline),
        )
        .unwrap();
        assert_eq!(insights.num_samples, 0);
        assert!(matches!(
            insights.completeness,
            Completeness::DeadlineTruncated { .. }
        ));
    }

    #[test]
    fn share_interval_is_clamped_and_symmetric_inside() {
        let wide = ShareInterval::normal_approx(0.5, 4);
        assert!(wide.lower < 0.5 && wide.upper > 0.5);
        let edge = ShareInterval::normal_approx(1.0, 10);
        assert_eq!(edge.lower, 1.0);
        assert_eq!(edge.upper, 1.0);
        let zero = ShareInterval::normal_approx(0.0, 10);
        assert_eq!(zero.lower, 0.0);
        assert_eq!(zero.upper, 0.0);
    }
}
