//! The assembled explanation report.
//!
//! [`RageReport`] runs every explanation the engine offers over one
//! (question, context) pair — top-down and bottom-up combination
//! counterfactuals, the permutation counterfactual, best/worst optimal
//! permutations and permutation insights — sharing a single [`Evaluator`]
//! cache so overlapping perturbations are never paid for twice. This is the
//! object the demonstration UI of the paper renders, and what `rage-report`
//! turns into markdown.

use serde::{Deserialize, Serialize};

use rage_llm::position_bias::PositionBiasProfile;

use crate::budget::{Completeness, Deadline, SearchBudget};
use crate::context::Context;
use crate::counterfactual::{
    find_combination_counterfactual, find_permutation_counterfactual, CombinationOutcome,
    CounterfactualConfig, PermutationOutcome, SearchDirection, DEFAULT_PERMUTATION_BUDGET,
};
use crate::error::RageError;
use crate::evaluator::Evaluate;
use crate::insights::{random_permutations, Insights, DEFAULT_MIN_CONFIDENCE};
use crate::optimal::{
    ranked_orders_with_budget, OptimalConfig, OptimalPermutation, OrderObjective,
};
use crate::scoring::ScoringMethod;

/// Configuration for [`RageReport::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportConfig {
    /// Relevance estimator used by every search.
    pub scoring: ScoringMethod,
    /// Expected position-attention profile for the optimal permutations.
    pub position_bias: PositionBiasProfile,
    /// How many best (and worst) placements to rank.
    pub num_optimal_orders: usize,
    /// Evaluation budget per combination search.
    pub combination_budget: Option<usize>,
    /// Evaluation budget for the permutation counterfactual search.
    pub permutation_budget: Option<usize>,
    /// Number of random permutations sampled for the insights section.
    pub insight_samples: usize,
    /// RNG seed for the insight sample (the report is deterministic in it).
    pub seed: u64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            scoring: ScoringMethod::default(),
            position_bias: PositionBiasProfile::default(),
            num_optimal_orders: 3,
            combination_budget: Some(256),
            permutation_budget: Some(128),
            insight_samples: 24,
            seed: 7,
        }
    }
}

impl ReportConfig {
    /// The budget the permutation counterfactual search actually runs under:
    /// the explicit [`ReportConfig::permutation_budget`], or the engine-wide
    /// [`DEFAULT_PERMUTATION_BUDGET`] when unset. Reports surface this so a
    /// served report always states what bound it ran under.
    pub fn effective_permutation_budget(&self) -> usize {
        self.permutation_budget
            .unwrap_or(DEFAULT_PERMUTATION_BUDGET)
    }
}

/// Identity of the corpus a report was generated against.
///
/// Stamped by services that track mutable corpora (`rage_report::Service`): the
/// monotonically increasing corpus version, the order-independent content
/// fingerprint and the live document count at generation time. Library paths that
/// explain over an anonymous, immutable corpus leave it `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusProvenance {
    /// Monotonically increasing mutation counter of the corpus (1 = as built).
    pub version: u64,
    /// Order-independent content hash of the corpus at generation time.
    pub fingerprint: u64,
    /// Number of live documents at generation time.
    pub num_docs: usize,
}

/// The complete explanation of one RAG answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RageReport {
    /// The question being explained.
    pub question: String,
    /// The retrieved context `Dq`.
    pub context: Context,
    /// The answer over the full context (`a = L(q, Dq)`).
    pub full_context_answer: String,
    /// The answer with no context (prior knowledge only).
    pub empty_context_answer: String,
    /// Per-source relevance scores under the configured [`ScoringMethod`].
    pub source_scores: Vec<f64>,
    /// Top-down combination counterfactual (minimal answer-changing removal).
    pub top_down: CombinationOutcome,
    /// Bottom-up combination counterfactual (minimal answer-changing retention).
    pub bottom_up: CombinationOutcome,
    /// Permutation counterfactual (most similar answer-changing re-ordering).
    pub permutation: PermutationOutcome,
    /// The effective evaluation budget of the permutation counterfactual
    /// search — the configured value or [`DEFAULT_PERMUTATION_BUDGET`] when
    /// none was given — so the report states the bound it ran under.
    pub permutation_budget: usize,
    /// Best source placements, best-first.
    pub best_orders: Vec<OptimalPermutation>,
    /// Worst source placements, worst-first.
    pub worst_orders: Vec<OptimalPermutation>,
    /// Whether both placement rankings were fully evaluated, or a deadline cut
    /// them to a prefix (the markers of the two rankings merged).
    pub placements_completeness: Completeness,
    /// Insights over a random permutation sample.
    pub insights: Insights,
    /// Total distinct perturbations evaluated while building the report.
    pub evaluations: usize,
    /// Total LLM inferences paid for (cache hits excluded).
    pub llm_calls: usize,
    /// Identity of the corpus the report describes, when the generator tracks one.
    ///
    /// `None` on the library generation path ([`RageReport::generate`]); services
    /// with versioned corpora stamp it after generation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub corpus: Option<CorpusProvenance>,
}

impl RageReport {
    /// Run every search over the evaluator's context and assemble the report.
    ///
    /// Works over any [`Evaluate`] implementation. With a
    /// [`ParallelEvaluator`](crate::evaluator::ParallelEvaluator) the report's
    /// explanation content (answers, counterfactuals, placements, insights) is
    /// identical to the sequential evaluator's, and is invariant in the thread
    /// count down to the cost counters; relative to a sequential run, the cost
    /// counters may include a few speculative evaluations per search (see the
    /// evaluator module docs).
    pub fn generate<E: Evaluate + ?Sized>(
        evaluator: &E,
        config: &ReportConfig,
    ) -> Result<Self, RageError> {
        Self::generate_with_deadline(evaluator, config, None)
    }

    /// Like [`RageReport::generate`] under an optional wall-clock [`Deadline`]
    /// — the *anytime* path.
    ///
    /// The deadline is shared by every section: each search checks it at its
    /// batch boundaries and stops with a
    /// [`Completeness::DeadlineTruncated`] marker instead of running on, so
    /// the report returns in bounded time with whatever each section resolved.
    /// The baseline answers and source scores are always computed (an anytime
    /// report still answers the question). The combination searches run
    /// *without* the [`CounterfactualConfig::with_pruning`] bound: that bound
    /// assumes perturbation-monotone evaluators, which served scenarios are
    /// not (see the counterfactual module docs), so an anytime report only
    /// ever truncates — it never skips work that could change an answer.
    /// With `deadline = None` this is exactly [`RageReport::generate`].
    pub fn generate_with_deadline<E: Evaluate + ?Sized>(
        evaluator: &E,
        config: &ReportConfig,
        deadline: Option<Deadline>,
    ) -> Result<Self, RageError> {
        let evaluations_before = evaluator.evaluations();
        let llm_calls_before = evaluator.llm_calls();
        let full_context_answer = evaluator.full_context_answer()?;
        let empty_context_answer = evaluator.empty_context_answer()?;
        let source_scores = config.scoring.source_scores(evaluator)?;

        let combination_config = CounterfactualConfig {
            direction: SearchDirection::TopDown,
            scoring: config.scoring,
            max_size: None,
            budget: SearchBudget::from(config.combination_budget).with_deadline_opt(deadline),
            // Never pruned, even under a deadline: the pruning bound is only
            // admissible for monotone evaluators, and a ranking scenario can
            // flip under a partial removal even when the full removal restores
            // the baseline answer.
            prune: false,
        };
        let top_down = find_combination_counterfactual(evaluator, &combination_config)?;
        let bottom_up = find_combination_counterfactual(
            evaluator,
            &CounterfactualConfig {
                direction: SearchDirection::BottomUp,
                ..combination_config
            },
        )?;
        let permutation_search_budget =
            SearchBudget::from(config.permutation_budget).with_deadline_opt(deadline);
        let permutation = find_permutation_counterfactual(evaluator, &permutation_search_budget)?;

        let optimal_config = OptimalConfig {
            scoring: config.scoring,
            position_bias: config.position_bias,
            num_orders: config.num_optimal_orders,
        };
        let placement_budget = SearchBudget::UNLIMITED.with_deadline_opt(deadline);
        let (best_orders, best_marker) = ranked_orders_with_budget(
            evaluator,
            &optimal_config,
            OrderObjective::Best,
            &placement_budget,
        )?;
        let (worst_orders, worst_marker) = ranked_orders_with_budget(
            evaluator,
            &optimal_config,
            OrderObjective::Worst,
            &placement_budget,
        )?;
        let placements_completeness = best_marker.merge(worst_marker);

        let samples = random_permutations(evaluator.k(), config.insight_samples, config.seed);
        let insights = Insights::with_budget(
            evaluator,
            &samples,
            DEFAULT_MIN_CONFIDENCE,
            &SearchBudget::UNLIMITED.with_deadline_opt(deadline),
        )?;

        Ok(RageReport {
            question: evaluator.question().to_string(),
            context: evaluator.context().clone(),
            full_context_answer,
            empty_context_answer,
            source_scores,
            top_down,
            bottom_up,
            permutation,
            permutation_budget: config.effective_permutation_budget(),
            best_orders,
            worst_orders,
            placements_completeness,
            insights,
            evaluations: evaluator.evaluations() - evaluations_before,
            llm_calls: evaluator.llm_calls() - llm_calls_before,
            corpus: None,
        })
    }

    /// Whether every section of the report resolved its whole search space.
    pub fn all_sections_exact(&self) -> bool {
        self.top_down.completeness.is_exact()
            && self.bottom_up.completeness.is_exact()
            && self.permutation.completeness.is_exact()
            && self.placements_completeness.is_exact()
            && self.insights.completeness.is_exact()
    }

    /// The document ids the explanation cites: the sources whose removal
    /// changes the answer (top-down counterfactual).
    pub fn citations(&self) -> Vec<&str> {
        self.top_down
            .counterfactual
            .as_ref()
            .map(|cf| self.context.doc_ids(&cf.removed))
            .unwrap_or_default()
    }

    /// Whether re-ordering the context can change the answer.
    pub fn order_sensitive(&self) -> bool {
        self.permutation.counterfactual.is_some()
    }

    /// A compact human-readable summary (one fact per line).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("question: {}\n", self.question));
        out.push_str(&format!("answer: {}\n", self.full_context_answer));
        out.push_str(&format!(
            "answer without context: {}\n",
            self.empty_context_answer
        ));
        match &self.top_down.counterfactual {
            Some(cf) => out.push_str(&format!(
                "citation (remove to change the answer): {:?} -> {}\n",
                self.citations(),
                cf.answer
            )),
            None => out.push_str("citation: none found\n"),
        }
        match &self.bottom_up.counterfactual {
            Some(cf) => out.push_str(&format!(
                "minimal supporting context: {} source(s) -> {}\n",
                cf.kept.len(),
                cf.answer
            )),
            None => out.push_str("minimal supporting context: none found\n"),
        }
        match &self.permutation.counterfactual {
            Some(cf) => out.push_str(&format!(
                "order sensitivity: re-ordering (tau {:.2}) changes the answer to {}\n",
                cf.tau, cf.answer
            )),
            None => out.push_str("order sensitivity: stable under tested re-orderings\n"),
        }
        if let Some(best) = self.best_orders.first() {
            out.push_str(&format!(
                "best placement: {:?} (objective {:.3}) -> {}\n",
                best.order, best.objective, best.answer
            ));
        }
        if let Some(top) = self.insights.distribution.top() {
            out.push_str(&format!(
                "answer share over {} sampled orders: {} at {:.0}%\n",
                self.insights.num_samples,
                top.answer,
                top.share * 100.0
            ));
        }
        out.push_str(&format!(
            "cost: {} evaluations, {} llm calls\n",
            self.evaluations, self.llm_calls
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{Corpus, Document, IndexBuilder, Searcher};
    use std::sync::Arc;

    use crate::pipeline::RagPipeline;

    fn pipeline() -> RagPipeline {
        let mut corpus = Corpus::new();
        corpus.push(Document::new(
            "slams",
            "Grand slams",
            "Novak Djokovic holds the most grand slam titles with 24 championships.",
        ));
        corpus.push(Document::new(
            "wins",
            "Match wins",
            "Roger Federer leads total match wins with 369 victories on tour.",
        ));
        corpus.push(Document::new(
            "weeks",
            "Weeks at number one",
            "Novak Djokovic spent the most weeks ranked number one in tennis.",
        ));
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        RagPipeline::new(searcher, Arc::new(SimLlm::new(SimLlmConfig::default())))
    }

    #[test]
    fn report_assembles_every_section() {
        let p = pipeline();
        let (response, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();

        assert_eq!(report.full_context_answer, response.answer());
        assert_eq!(report.question, "Who holds the most grand slam titles?");
        assert_eq!(report.source_scores.len(), report.context.len());
        // At most 3 ranked orders were requested; with a small retrieved
        // context there are only k! distinct orders in total.
        let expected_orders =
            3.min(rage_assignment::numeric::factorial(report.context.len()) as usize);
        assert_eq!(report.best_orders.len(), expected_orders);
        assert_eq!(report.worst_orders.len(), expected_orders);
        assert!(report.insights.num_samples > 0);
        assert!(report.llm_calls > 0);
        assert!(report.evaluations >= report.llm_calls);
    }

    #[test]
    fn report_is_deterministic() {
        let p = pipeline();
        let config = ReportConfig::default();
        let (_, ev1) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let (_, ev2) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let a = RageReport::generate(&ev1, &config).unwrap();
        let b = RageReport::generate(&ev2, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn citations_name_the_counterfactual_documents() {
        let p = pipeline();
        let (_, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
        if report.top_down.counterfactual.is_some() {
            assert!(!report.citations().is_empty());
            for id in report.citations() {
                assert!(report.context.position_of(id).is_some());
            }
        }
    }

    #[test]
    fn summary_mentions_the_headline_facts() {
        let p = pipeline();
        let (_, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
        let summary = report.summary();
        assert!(summary.contains("question: Who holds the most grand slam titles?"));
        assert!(summary.contains(&format!("answer: {}", report.full_context_answer)));
        assert!(summary.contains("cost:"));
    }

    #[test]
    fn no_deadline_is_exactly_the_default_generation() {
        let p = pipeline();
        let config = ReportConfig::default();
        let (_, ev1) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let (_, ev2) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let plain = RageReport::generate(&ev1, &config).unwrap();
        let anytime = RageReport::generate_with_deadline(&ev2, &config, None).unwrap();
        assert_eq!(plain, anytime);
        assert!(plain.all_sections_exact());
        assert_eq!(
            plain.permutation_budget,
            config.effective_permutation_budget()
        );
    }

    #[test]
    fn effective_permutation_budget_falls_back_to_the_default() {
        let explicit = ReportConfig::default();
        assert_eq!(explicit.effective_permutation_budget(), 128);
        let defaulted = ReportConfig {
            permutation_budget: None,
            ..ReportConfig::default()
        };
        assert_eq!(
            defaulted.effective_permutation_budget(),
            crate::counterfactual::DEFAULT_PERMUTATION_BUDGET
        );
    }

    #[test]
    fn expired_deadline_yields_a_bounded_truncated_report() {
        let p = pipeline();
        let (_, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let deadline = Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let report = RageReport::generate_with_deadline(
            &evaluator,
            &ReportConfig::default(),
            Some(deadline),
        )
        .unwrap();
        // The anytime report still answers the question...
        assert!(!report.full_context_answer.is_empty());
        assert_eq!(report.source_scores.len(), report.context.len());
        // ...but every search stopped at its first batch boundary.
        assert!(!report.all_sections_exact());
        assert!(matches!(
            report.permutation.completeness,
            Completeness::DeadlineTruncated { .. }
        ));
        assert!(matches!(
            report.placements_completeness,
            Completeness::DeadlineTruncated { .. }
        ));
        assert!(matches!(
            report.insights.completeness,
            Completeness::DeadlineTruncated { .. }
        ));
        assert!(report.best_orders.is_empty());
        assert_eq!(report.insights.num_samples, 0);
    }

    #[test]
    fn shared_cache_keeps_report_cost_sublinear() {
        let p = pipeline();
        let (_, evaluator) = p
            .ask_and_explain("Who holds the most grand slam titles?", 3)
            .unwrap();
        let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
        // Every evaluation is an LLM call at most once.
        assert_eq!(report.llm_calls, report.evaluations);
        // Re-generating the report from the same evaluator is free.
        let calls_before = evaluator.llm_calls();
        RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
        assert_eq!(evaluator.llm_calls(), calls_before);
    }
}
