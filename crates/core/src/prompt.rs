//! Natural-language prompt assembly.
//!
//! RAGE combines the query `q` and the retrieved context `Dq` into a prompt `p` that
//! instructs the LLM to answer using the delimited sources. [`PromptBuilder`] renders
//! that prompt text (for provenance display and logging) and produces the structured
//! [`LlmInput`] consumed by the model substrate.

use serde::{Deserialize, Serialize};

use rage_llm::{LlmInput, SourceText};

/// Prompt template configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptBuilder {
    /// Instruction preamble placed before the sources.
    pub instruction: String,
    /// Delimiter line printed before each source; `{index}` and `{id}` are substituted.
    pub source_header: String,
    /// Line introducing the question at the end of the prompt.
    pub question_header: String,
}

impl Default for PromptBuilder {
    fn default() -> Self {
        Self {
            instruction: "Answer the question using only the information contained in the \
                          following delimited sources. Reply with a short answer."
                .to_string(),
            source_header: "[Source {index}: {id}]".to_string(),
            question_header: "Question:".to_string(),
        }
    }
}

impl PromptBuilder {
    /// Render the full natural-language prompt `p` for a question and ordered sources.
    pub fn render(&self, question: &str, sources: &[SourceText]) -> String {
        let mut prompt = String::new();
        prompt.push_str(&self.instruction);
        prompt.push_str("\n\n");
        if sources.is_empty() {
            prompt.push_str("(no sources provided)\n\n");
        } else {
            for (index, source) in sources.iter().enumerate() {
                let header = self
                    .source_header
                    .replace("{index}", &(index + 1).to_string())
                    .replace("{id}", &source.id);
                prompt.push_str(&header);
                prompt.push('\n');
                prompt.push_str(&source.text);
                prompt.push_str("\n\n");
            }
        }
        prompt.push_str(&self.question_header);
        prompt.push(' ');
        prompt.push_str(question);
        prompt
    }

    /// The structured input handed to the language model.
    pub fn build_input(&self, question: &str, sources: &[SourceText]) -> LlmInput {
        LlmInput::new(question, sources.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> Vec<SourceText> {
        vec![
            SourceText::new("doc-a", "Federer leads match wins."),
            SourceText::new("doc-b", "Djokovic leads grand slams."),
        ]
    }

    #[test]
    fn renders_instruction_sources_and_question() {
        let builder = PromptBuilder::default();
        let prompt = builder.render("Who is the best?", &sources());
        assert!(prompt.starts_with("Answer the question"));
        assert!(prompt.contains("[Source 1: doc-a]"));
        assert!(prompt.contains("[Source 2: doc-b]"));
        assert!(prompt.contains("Federer leads match wins."));
        assert!(prompt.ends_with("Question: Who is the best?"));
    }

    #[test]
    fn source_order_is_preserved_in_the_prompt() {
        let builder = PromptBuilder::default();
        let prompt = builder.render("q", &sources());
        let pos_a = prompt.find("doc-a").unwrap();
        let pos_b = prompt.find("doc-b").unwrap();
        assert!(pos_a < pos_b);

        let mut reversed = sources();
        reversed.reverse();
        let prompt = builder.render("q", &reversed);
        let pos_a = prompt.find("doc-a").unwrap();
        let pos_b = prompt.find("doc-b").unwrap();
        assert!(pos_b < pos_a);
    }

    #[test]
    fn empty_context_is_stated_explicitly() {
        let builder = PromptBuilder::default();
        let prompt = builder.render("Who won?", &[]);
        assert!(prompt.contains("(no sources provided)"));
        assert!(prompt.contains("Who won?"));
    }

    #[test]
    fn custom_templates_are_applied() {
        let builder = PromptBuilder {
            instruction: "INSTRUCTION".into(),
            source_header: "### {id} ###".into(),
            question_header: "Q>".into(),
        };
        let prompt = builder.render("why?", &sources());
        assert!(prompt.starts_with("INSTRUCTION"));
        assert!(prompt.contains("### doc-a ###"));
        assert!(prompt.contains("Q> why?"));
    }

    #[test]
    fn build_input_round_trips_sources() {
        let builder = PromptBuilder::default();
        let input = builder.build_input("q", &sources());
        assert_eq!(input.question, "q");
        assert_eq!(input.num_sources(), 2);
        assert_eq!(input.sources[0].id, "doc-a");
    }
}
