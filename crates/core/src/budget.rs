//! The unified cost-control layer: evaluation budgets, wall-clock deadlines
//! and search-completeness markers.
//!
//! Every RAGE search is exhaustive-within-budget over an exponential candidate
//! space, so at large `k` the budget *is* the latency. This module gives the
//! engine one first-class vocabulary for that trade-off:
//!
//! * [`SearchBudget`] — how much a search may spend: a cap on candidate
//!   evaluations, an optional monotonic [`Deadline`], or both. Searches check
//!   it at **batch boundaries** (between evaluation windows), never inside a
//!   batch, so the anytime path keeps the exact same batching — and therefore
//!   the exact same answers — as the unlimited path up to the point where it
//!   stops.
//! * [`Deadline`] — a monotonic ([`std::time::Instant`]-based) wall-clock
//!   bound, immune to system clock adjustments.
//! * [`Completeness`] — what a truncated search *means*: every search reports
//!   whether it covered its whole space ([`Completeness::Exact`]), stopped at
//!   the evaluation cap ([`Completeness::BudgetTruncated`], which also counts
//!   any candidates the opt-in pruning bound skipped instead of evaluating)
//!   or ran out of wall-clock time ([`Completeness::DeadlineTruncated`]).
//!
//! The report layer (`rage-report`) carries the per-section markers into the
//! versioned JSON schema, the HTTP service keys its cache on the deadline so
//! anytime reports never poison exact ones, and the server/CLI expose the knob
//! as `deadline_ms=` / `--anytime <ms>`.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// A monotonic wall-clock deadline.
///
/// Built from [`Instant`], so it measures elapsed monotonic time and is not
/// affected by system clock changes. Copies share the same start and end
/// points, so one deadline can be threaded through every section of a report
/// generation and they all expire together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    started: Instant,
    ends: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Self::after(Duration::from_millis(ms))
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        let started = Instant::now();
        Self {
            started,
            ends: started + budget,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.ends
    }

    /// Milliseconds elapsed since the deadline was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// What stopped a search at a batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The evaluation cap was reached.
    Evaluations,
    /// The wall-clock deadline expired.
    Deadline {
        /// Milliseconds elapsed since the deadline was created.
        elapsed_ms: u64,
    },
}

/// How much a search may spend: an optional cap on candidate evaluations plus
/// an optional monotonic [`Deadline`].
///
/// This replaces the scattered `Option<usize>` budget plumbing of the early
/// engine: the combination, permutation, optimal-placement and insight
/// searches all take a `SearchBudget` and check it with [`SearchBudget::check`]
/// at their batch boundaries. [`SearchBudget::UNLIMITED`] (the default)
/// reproduces the unbounded searches exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    /// Maximum number of candidate evaluations (`None` = unlimited; baseline
    /// answers are never counted against it).
    pub max_evaluations: Option<usize>,
    /// Wall-clock bound for the whole search (`None` = no deadline).
    pub deadline: Option<Deadline>,
}

impl SearchBudget {
    /// No cap, no deadline: the search runs to space exhaustion.
    pub const UNLIMITED: SearchBudget = SearchBudget {
        max_evaluations: None,
        deadline: None,
    };

    /// A budget of at most `n` candidate evaluations (no deadline).
    pub fn max_evaluations(n: usize) -> Self {
        SearchBudget {
            max_evaluations: Some(n),
            deadline: None,
        }
    }

    /// Attach a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an optional deadline (builder style; `None` leaves it unset).
    pub fn with_deadline_opt(mut self, deadline: Option<Deadline>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Whether this budget can never stop a search.
    pub fn is_unlimited(&self) -> bool {
        self.max_evaluations.is_none() && self.deadline.is_none()
    }

    /// Check the budget at a batch boundary, after `evaluated` candidate
    /// evaluations: `None` means keep going. The deadline outranks the count
    /// (an expired anytime request should stop even with count room left).
    pub fn check(&self, evaluated: usize) -> Option<BudgetStop> {
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(BudgetStop::Deadline {
                    elapsed_ms: deadline.elapsed_ms(),
                });
            }
        }
        match self.max_evaluations {
            Some(max) if evaluated >= max => Some(BudgetStop::Evaluations),
            _ => None,
        }
    }

    /// Evaluations left under the cap after `evaluated` (`None` = unlimited).
    pub fn remaining(&self, evaluated: usize) -> Option<usize> {
        self.max_evaluations
            .map(|max| max.saturating_sub(evaluated))
    }
}

impl From<Option<usize>> for SearchBudget {
    /// The bridge from the old `Option<usize>` budget knobs: `Some(n)` caps
    /// evaluations at `n`, `None` is unlimited. Neither carries a deadline.
    fn from(max_evaluations: Option<usize>) -> Self {
        SearchBudget {
            max_evaluations,
            deadline: None,
        }
    }
}

impl From<usize> for SearchBudget {
    fn from(max_evaluations: usize) -> Self {
        SearchBudget::max_evaluations(max_evaluations)
    }
}

/// How completely a search covered its candidate space.
///
/// `Exact` results are what the unbounded search would have returned. The two
/// truncated markers describe *why* the search stopped and how much ground it
/// covered, so a served report can state exactly what its numbers mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Completeness {
    /// The whole (size-bounded) candidate space was resolved.
    #[default]
    Exact,
    /// The evaluation cap stopped the search before the space was resolved —
    /// or, when `pruned > 0`, part of the frontier was skipped because an
    /// admissible bound proved it could not contain a counterfactual.
    BudgetTruncated {
        /// Candidates actually evaluated.
        evaluated: usize,
        /// Candidates skipped without evaluation because a superset that
        /// already failed to flip proves they cannot flip either (0 when no
        /// pruning applied).
        pruned: usize,
    },
    /// The wall-clock deadline expired before the space was resolved.
    DeadlineTruncated {
        /// Milliseconds elapsed when the search stopped.
        elapsed_ms: u64,
    },
}

impl Completeness {
    /// Whether the search resolved its whole space.
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }

    /// The marker for a search stopped by `stop` after `evaluated` candidate
    /// evaluations with `pruned` candidates skipped by a pruning bound.
    pub fn from_stop(stop: BudgetStop, evaluated: usize, pruned: usize) -> Self {
        match stop {
            BudgetStop::Evaluations => Completeness::BudgetTruncated { evaluated, pruned },
            BudgetStop::Deadline { elapsed_ms } => Completeness::DeadlineTruncated { elapsed_ms },
        }
    }

    /// Merge the markers of two sub-searches into one section marker: exact
    /// only when both are, deadline truncation (with the larger elapsed time)
    /// outranking budget truncation, and budget truncations pooling their
    /// evaluated/pruned counts.
    pub fn merge(self, other: Completeness) -> Completeness {
        match (self, other) {
            (Completeness::Exact, other) => other,
            (this, Completeness::Exact) => this,
            (
                Completeness::DeadlineTruncated { elapsed_ms: a },
                Completeness::DeadlineTruncated { elapsed_ms: b },
            ) => Completeness::DeadlineTruncated {
                elapsed_ms: a.max(b),
            },
            (this @ Completeness::DeadlineTruncated { .. }, _) => this,
            (_, other @ Completeness::DeadlineTruncated { .. }) => other,
            (
                Completeness::BudgetTruncated {
                    evaluated: e1,
                    pruned: p1,
                },
                Completeness::BudgetTruncated {
                    evaluated: e2,
                    pruned: p2,
                },
            ) => Completeness::BudgetTruncated {
                evaluated: e1 + e2,
                pruned: p1 + p2,
            },
        }
    }

    /// A short human-readable description ("exact", "budget-truncated after
    /// 12 evaluations (3 pruned)", "deadline-truncated after 52 ms").
    pub fn describe(&self) -> String {
        match self {
            Completeness::Exact => "exact".to_string(),
            Completeness::BudgetTruncated { evaluated, pruned } if *pruned > 0 => {
                format!("budget-truncated after {evaluated} evaluations ({pruned} pruned)")
            }
            Completeness::BudgetTruncated { evaluated, .. } => {
                format!("budget-truncated after {evaluated} evaluations")
            }
            Completeness::DeadlineTruncated { elapsed_ms } => {
                format!("deadline-truncated after {elapsed_ms} ms")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = SearchBudget::UNLIMITED;
        assert!(budget.is_unlimited());
        assert_eq!(budget.check(0), None);
        assert_eq!(budget.check(usize::MAX), None);
        assert_eq!(budget.remaining(123), None);
    }

    #[test]
    fn evaluation_cap_stops_at_the_boundary() {
        let budget = SearchBudget::max_evaluations(3);
        assert_eq!(budget.check(2), None);
        assert_eq!(budget.check(3), Some(BudgetStop::Evaluations));
        assert_eq!(budget.remaining(1), Some(2));
        assert_eq!(budget.remaining(5), Some(0));
    }

    #[test]
    fn option_bridge_matches_the_old_semantics() {
        assert_eq!(SearchBudget::from(None), SearchBudget::UNLIMITED);
        assert_eq!(
            SearchBudget::from(Some(7usize)),
            SearchBudget::max_evaluations(7)
        );
        assert_eq!(SearchBudget::from(7usize).max_evaluations, Some(7));
    }

    #[test]
    fn expired_deadline_outranks_the_count() {
        let deadline = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(deadline.expired());
        let budget = SearchBudget::max_evaluations(10).with_deadline(deadline);
        match budget.check(0) {
            Some(BudgetStop::Deadline { .. }) => {}
            other => panic!("expected a deadline stop, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let budget = SearchBudget::UNLIMITED.with_deadline(Deadline::after_ms(60_000));
        assert_eq!(budget.check(1_000_000), None);
        assert!(!budget.is_unlimited());
    }

    #[test]
    fn completeness_markers_describe_themselves() {
        assert!(Completeness::Exact.is_exact());
        assert_eq!(Completeness::Exact.describe(), "exact");
        let truncated = Completeness::from_stop(BudgetStop::Evaluations, 12, 0);
        assert_eq!(
            truncated,
            Completeness::BudgetTruncated {
                evaluated: 12,
                pruned: 0
            }
        );
        assert!(!truncated.is_exact());
        assert!(truncated.describe().contains("12"));
        let pruned = Completeness::BudgetTruncated {
            evaluated: 2,
            pruned: 5,
        };
        assert!(pruned.describe().contains("5 pruned"));
        let late = Completeness::from_stop(BudgetStop::Deadline { elapsed_ms: 52 }, 9, 0);
        assert_eq!(late, Completeness::DeadlineTruncated { elapsed_ms: 52 });
        assert!(late.describe().contains("52 ms"));
    }

    #[test]
    fn merging_markers_keeps_the_worst() {
        let exact = Completeness::Exact;
        let capped = Completeness::BudgetTruncated {
            evaluated: 3,
            pruned: 1,
        };
        let late = Completeness::DeadlineTruncated { elapsed_ms: 10 };
        assert_eq!(exact.merge(exact), exact);
        assert_eq!(exact.merge(capped), capped);
        assert_eq!(capped.merge(exact), capped);
        assert_eq!(capped.merge(late), late);
        assert_eq!(
            late.merge(Completeness::DeadlineTruncated { elapsed_ms: 30 }),
            Completeness::DeadlineTruncated { elapsed_ms: 30 }
        );
        assert_eq!(
            capped.merge(capped),
            Completeness::BudgetTruncated {
                evaluated: 6,
                pruned: 2
            }
        );
    }
}
