//! Counterfactual search over combinations and permutations (§II-C).
//!
//! A *combination counterfactual* is a set of sources whose removal (top-down)
//! or retention (bottom-up) changes the model's answer; it acts as a citation
//! for the original answer. A *permutation counterfactual* is a re-ordering of
//! the full context that changes the answer; it exposes position bias.
//!
//! Both candidate spaces are exponential (`2^k` subsets, `k!` orders), so the
//! searches prune exactly the way the paper prescribes:
//!
//! * combinations are evaluated in **increasing size**, and inside one size
//!   class in **decreasing estimated relevance** (attention- or
//!   retrieval-score-based, [`ScoringMethod`]) — the sources most relevant to
//!   the answer are the most likely to flip it;
//! * permutations are evaluated in **decreasing Kendall-tau similarity** to the
//!   original order — the least disruptive re-orderings first;
//! * every search runs under a [`SearchBudget`] — an evaluation cap plus an
//!   optional monotonic [`Deadline`](crate::budget::Deadline) — checked at
//!   batch boundaries; the [`Evaluator`] caches and counts the underlying LLM
//!   calls (cost metric of experiment E7);
//! * with [`CounterfactualConfig::with_pruning`], the combination search may
//!   additionally *prune* candidates under a monotonicity bound: a candidate
//!   set whose superset already failed to flip the answer is assumed unable to
//!   flip it either, so the covered frontier is skipped and **counted**
//!   (reported in [`Completeness::BudgetTruncated`]) instead of evaluated.
//!   The bound is admissible only for *perturbation-monotone* models. Real
//!   models (including the simulated ranking scenarios) are not monotone — an
//!   answer can flip under a partial removal even when removing everything
//!   restores the prior answer — so pruning is opt-in, never enabled on the
//!   report or anytime paths, and its behaviour on both monotone and
//!   non-monotone evaluators is pinned by the differential suite
//!   (`crates/core/tests/differential.rs`).
//!
//! Every outcome carries a [`Completeness`] marker stating whether the search
//! resolved its whole space or was truncated by the cap, the deadline or the
//! pruning bound.

use serde::{Deserialize, Serialize};

use rage_assignment::combinations::{complement, CombinationIter};
use rage_assignment::kendall::kendall_tau;
use rage_assignment::numeric::{binomial, factorial};
use rage_assignment::permutations::SimilarityPermutations;

use crate::answer::answers_equal;
use crate::budget::{Completeness, SearchBudget};
use crate::error::RageError;
use crate::evaluator::Evaluate;
use crate::perturbation::Perturbation;
use crate::scoring::ScoringMethod;

/// Which end of the subset lattice the combination search starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SearchDirection {
    /// Start from the full context and *remove* sources: a counterfactual is a
    /// minimal removal set that changes the full-context answer.
    #[default]
    TopDown,
    /// Start from the empty context and *retain* sources: a counterfactual is a
    /// minimal retained set that changes the empty-context (prior) answer.
    BottomUp,
}

/// Configuration of the combination counterfactual search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CounterfactualConfig {
    /// Search direction (top-down removal by default).
    pub direction: SearchDirection,
    /// Relevance estimator used to order equal-size candidates.
    pub scoring: ScoringMethod,
    /// Largest candidate set size to consider (defaults to `k`).
    pub max_size: Option<usize>,
    /// Evaluation cap and optional deadline ([`SearchBudget::UNLIMITED`] by
    /// default; the baseline answers are not counted against it).
    pub budget: SearchBudget,
    /// Enable the monotonicity pruning bound: when the lattice-maximal
    /// perturbation (remove everything for top-down, retain everything for
    /// bottom-up) already fails to flip the answer, every candidate — each a
    /// subset of it — is pruned and counted instead of evaluated.
    ///
    /// Admissible only for perturbation-monotone models; off by default and
    /// never enabled by the report or anytime paths (see the module docs).
    pub prune: bool,
}

impl CounterfactualConfig {
    /// A top-down (removal) configuration.
    pub fn top_down() -> Self {
        Self {
            direction: SearchDirection::TopDown,
            ..Self::default()
        }
    }

    /// A bottom-up (retention) configuration.
    pub fn bottom_up() -> Self {
        Self {
            direction: SearchDirection::BottomUp,
            ..Self::default()
        }
    }

    /// Set the relevance estimator (builder style).
    pub fn with_scoring(mut self, scoring: ScoringMethod) -> Self {
        self.scoring = scoring;
        self
    }

    /// Bound the candidate set size (builder style).
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = Some(max_size);
        self
    }

    /// Bound the number of candidate evaluations (builder style).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget.max_evaluations = Some(budget);
        self
    }

    /// Set the whole [`SearchBudget`] — cap and/or deadline (builder style).
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: crate::budget::Deadline) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Enable the monotonicity pruning bound (builder style).
    pub fn with_pruning(mut self) -> Self {
        self.prune = true;
        self
    }
}

/// Cost accounting for one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SearchStats {
    /// Number of candidate perturbations evaluated (cache hits included).
    pub candidates: usize,
    /// Number of *new* LLM inferences the search caused.
    pub llm_calls: usize,
}

/// A combination whose removal/retention changes the answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationCounterfactual {
    /// Context positions removed relative to the full context.
    pub removed: Vec<usize>,
    /// Context positions retained (the evaluated combination).
    pub kept: Vec<usize>,
    /// The answer being explained (full-context for top-down, empty-context
    /// for bottom-up).
    pub baseline_answer: String,
    /// The answer after the perturbation — different from the baseline.
    pub answer: String,
}

impl CombinationCounterfactual {
    /// The counterfactual's *active* positions: the removed set for top-down
    /// searches, the retained set for bottom-up searches. These are the sources
    /// the explanation cites.
    pub fn cited_positions(&self, direction: SearchDirection) -> &[usize] {
        match direction {
            SearchDirection::TopDown => &self.removed,
            SearchDirection::BottomUp => &self.kept,
        }
    }
}

/// Result of a combination counterfactual search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationOutcome {
    /// The first (smallest, most relevant) counterfactual found, if any.
    pub counterfactual: Option<CombinationCounterfactual>,
    /// Whether the search stopped early because the evaluation budget (cap or
    /// deadline) ran out.
    pub exhausted_budget: bool,
    /// How completely the candidate space was resolved.
    pub completeness: Completeness,
    /// Cost accounting.
    pub stats: SearchStats,
}

/// A full-context re-ordering that changes the answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermutationCounterfactual {
    /// The counterfactual order: entry `p` is the context position of the
    /// source placed at prompt position `p`.
    pub order: Vec<usize>,
    /// Kendall's tau between the counterfactual order and the original one
    /// (high tau = small disruption).
    pub tau: f64,
    /// The full-context answer being explained.
    pub baseline_answer: String,
    /// The answer under the re-ordered context — different from the baseline.
    pub answer: String,
}

/// Result of a permutation counterfactual search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermutationOutcome {
    /// The most-similar answer-changing re-ordering found, if any.
    pub counterfactual: Option<PermutationCounterfactual>,
    /// Whether the search stopped early because the evaluation budget (cap or
    /// deadline) ran out.
    pub exhausted_budget: bool,
    /// How completely the candidate space was resolved.
    pub completeness: Completeness,
    /// Cost accounting.
    pub stats: SearchStats,
}

/// Default cap on permutation candidates when no explicit budget is given
/// (6! = 720; beyond that the similarity frontier is too wide to enumerate
/// blindly and callers should set a budget).
pub const DEFAULT_PERMUTATION_BUDGET: usize = 720;

/// First submission window of a batched search: windows ramp up `4 → 8 → …`
/// towards the evaluator's preferred batch, so a flip on the very first
/// candidates wastes at most a handful of speculative evaluations while
/// flip-less searches still reach full batch width. The ramp depends only on
/// the preferred batch size (never the thread count), preserving
/// thread-count-invariant cost accounting.
const WINDOW_RAMP_START: usize = 4;

/// The next submission window: double towards the cap.
fn ramped(window: usize, cap: usize) -> usize {
    (window * 2).min(cap)
}

/// Search for the smallest, most relevant combination counterfactual.
///
/// Candidates are enumerated in increasing set size; equal-size candidates are
/// evaluated in decreasing estimated relevance. The search stops at the first
/// answer change, after the whole (size-bounded) space has been evaluated, or
/// when the [`SearchBudget`] (evaluation cap or deadline) runs out — the
/// returned [`CombinationOutcome::completeness`] marker distinguishes the
/// cases, and [`CombinationOutcome::exhausted_budget`] stays as the boolean
/// summary.
///
/// Candidates are submitted to the evaluator in windows of
/// [`Evaluate::preferred_batch`] (truncated at the remaining budget), then
/// scanned in candidate order. With the sequential evaluator (window 1) this
/// reproduces the one-at-a-time early-exit search exactly; a batched evaluator
/// may evaluate up to `window - 1` candidates past the first flip — spending a
/// few speculative LLM calls to keep its workers busy — without ever changing
/// which counterfactual is found or how many candidates are *counted*.
pub fn find_combination_counterfactual<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &CounterfactualConfig,
) -> Result<CombinationOutcome, RageError> {
    let k = evaluator.k();
    let llm_calls_before = evaluator.llm_calls();
    let baseline = match config.direction {
        SearchDirection::TopDown => evaluator.full_context_answer()?,
        SearchDirection::BottomUp => evaluator.empty_context_answer()?,
    };
    let scores = config.scoring.source_scores(evaluator)?;
    let max_size = config.max_size.unwrap_or(k).min(k);
    let max_window = evaluator.preferred_batch().max(1);
    let mut window = max_window.min(WINDOW_RAMP_START);

    if config.prune {
        // Monotonicity bound at the lattice-maximal perturbation: every
        // candidate set is a subset of the full removal (top-down) / full
        // retention (bottom-up), so — for a perturbation-monotone model — if
        // even that endpoint leaves the baseline answer unchanged, no candidate
        // in the frontier can flip it. The endpoint is the *other* cached
        // baseline, so the check costs at most one LLM call and no candidate
        // evaluations. Non-monotone models can defeat the bound (see the
        // module docs), which is why nothing enables it implicitly.
        let endpoint = match config.direction {
            SearchDirection::TopDown => evaluator.empty_context_answer()?,
            SearchDirection::BottomUp => evaluator.full_context_answer()?,
        };
        if answers_equal(&endpoint, &baseline) {
            let pruned: u128 = (1..=max_size).map(|size| binomial(k, size)).sum();
            let pruned = usize::try_from(pruned).unwrap_or(usize::MAX);
            return Ok(CombinationOutcome {
                counterfactual: None,
                exhausted_budget: false,
                completeness: Completeness::BudgetTruncated {
                    evaluated: 0,
                    pruned,
                },
                stats: SearchStats {
                    candidates: 0,
                    llm_calls: evaluator.llm_calls() - llm_calls_before,
                },
            });
        }
    }

    let mut candidates = 0usize;
    for size in 1..=max_size {
        // The candidate sets of this size: removal sets for top-down,
        // retained sets for bottom-up. Either way the set's relevance is the
        // sum of its members' scores, and more relevant sets go first.
        let mut sets: Vec<Vec<usize>> = CombinationIter::new(k, size).collect();
        sets.sort_by(|a, b| {
            let sa = ScoringMethod::combination_score(&scores, a);
            let sb = ScoringMethod::combination_score(&scores, b);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });

        // (kept, removed) per candidate, in evaluation order.
        let splits: Vec<(Vec<usize>, Vec<usize>)> = sets
            .into_iter()
            .map(|set| match config.direction {
                SearchDirection::TopDown => (complement(k, &set), set),
                SearchDirection::BottomUp => {
                    let removed = complement(k, &set);
                    (set, removed)
                }
            })
            .collect();

        let mut next = 0usize;
        while next < splits.len() {
            if let Some(stop) = config.budget.check(candidates) {
                return Ok(CombinationOutcome {
                    counterfactual: None,
                    exhausted_budget: true,
                    completeness: Completeness::from_stop(stop, candidates, 0),
                    stats: SearchStats {
                        candidates,
                        llm_calls: evaluator.llm_calls() - llm_calls_before,
                    },
                });
            }
            let mut end = (next + window).min(splits.len());
            if let Some(remaining) = config.budget.remaining(candidates) {
                end = end.min(next + remaining);
            }
            let batch: Vec<Perturbation> = splits[next..end]
                .iter()
                .map(|(kept, _)| Perturbation::Combination(kept.clone()))
                .collect();
            let results = evaluator.evaluate_batch(&batch);
            for (offset, result) in results.into_iter().enumerate() {
                let answer = result?.answer;
                candidates += 1;
                if !answers_equal(&answer, &baseline) {
                    let (kept, removed) = splits[next + offset].clone();
                    return Ok(CombinationOutcome {
                        counterfactual: Some(CombinationCounterfactual {
                            removed,
                            kept,
                            baseline_answer: baseline,
                            answer,
                        }),
                        exhausted_budget: false,
                        completeness: Completeness::Exact,
                        stats: SearchStats {
                            candidates,
                            llm_calls: evaluator.llm_calls() - llm_calls_before,
                        },
                    });
                }
            }
            next = end;
            window = ramped(window, max_window);
        }
    }

    Ok(CombinationOutcome {
        counterfactual: None,
        exhausted_budget: false,
        completeness: Completeness::Exact,
        stats: SearchStats {
            candidates,
            llm_calls: evaluator.llm_calls() - llm_calls_before,
        },
    })
}

/// Like [`find_combination_counterfactual`] but demands a result: failing to
/// find one (budget exhausted or space exhausted) is a
/// [`RageError::BudgetExhausted`], with
/// [`space_exhausted`](RageError::BudgetExhausted::space_exhausted)
/// distinguishing "no counterfactual exists in the searched space" from
/// "the budget or deadline stopped the search first".
pub fn require_combination_counterfactual<E: Evaluate + ?Sized>(
    evaluator: &E,
    config: &CounterfactualConfig,
) -> Result<CombinationCounterfactual, RageError> {
    let outcome = find_combination_counterfactual(evaluator, config)?;
    outcome.counterfactual.ok_or(RageError::BudgetExhausted {
        evaluated: outcome.stats.candidates,
        space_exhausted: !outcome.exhausted_budget,
    })
}

/// Search for the answer-changing re-ordering most similar to the original.
///
/// Candidate permutations are enumerated in decreasing Kendall-tau similarity
/// (increasing inversion count) and evaluated until the answer changes. At most
/// `budget.max_evaluations` candidates — [`DEFAULT_PERMUTATION_BUDGET`] when
/// unset — are evaluated, the budget's deadline (if any) is checked before
/// each window, and the identity order is not a candidate.
///
/// Candidates are submitted in windows of [`Evaluate::preferred_batch`] and
/// scanned in similarity order, with the same speculative-evaluation caveat as
/// [`find_combination_counterfactual`].
pub fn find_permutation_counterfactual<E: Evaluate + ?Sized>(
    evaluator: &E,
    budget: &SearchBudget,
) -> Result<PermutationOutcome, RageError> {
    let k = evaluator.k();
    let llm_calls_before = evaluator.llm_calls();
    let baseline = evaluator.full_context_answer()?;
    let cap = budget.max_evaluations.unwrap_or(DEFAULT_PERMUTATION_BUDGET);
    let max_window = evaluator.preferred_batch().max(1);
    let mut window = max_window.min(WINDOW_RAMP_START);

    // Total non-identity permutations; saturating, only compared against the
    // cap to decide whether the space (not just the budget) was exhausted.
    let space = factorial(k).saturating_sub(1);
    let limit = (cap as u128).min(space) as usize;

    // The lazy frontier iterator yields the identity first; skip it. Orders
    // are pulled one evaluation window at a time, so only the current window
    // (plus the iterator's current inversion level) is ever materialised —
    // an early answer flip never pays for the deeper levels.
    let mut orders = SimilarityPermutations::new(k).skip(1).take(limit);
    let mut candidates = 0usize;
    loop {
        let window_orders: Vec<Vec<usize>> = orders.by_ref().take(window).collect();
        if window_orders.is_empty() {
            break;
        }
        // `take(limit)` already enforces the evaluation cap, so at a non-empty
        // window only the deadline can stop us here.
        if let Some(stop) = budget.check(candidates) {
            return Ok(PermutationOutcome {
                counterfactual: None,
                exhausted_budget: true,
                completeness: Completeness::from_stop(stop, candidates, 0),
                stats: SearchStats {
                    candidates,
                    llm_calls: evaluator.llm_calls() - llm_calls_before,
                },
            });
        }
        let batch: Vec<Perturbation> = window_orders
            .iter()
            .map(|order| Perturbation::Permutation(order.clone()))
            .collect();
        let results = evaluator.evaluate_batch(&batch);
        for (offset, result) in results.into_iter().enumerate() {
            let answer = result?.answer;
            candidates += 1;
            if !answers_equal(&answer, &baseline) {
                let order = window_orders[offset].clone();
                let tau = kendall_tau(&order);
                return Ok(PermutationOutcome {
                    counterfactual: Some(PermutationCounterfactual {
                        order,
                        tau,
                        baseline_answer: baseline,
                        answer,
                    }),
                    exhausted_budget: false,
                    completeness: Completeness::Exact,
                    stats: SearchStats {
                        candidates,
                        llm_calls: evaluator.llm_calls() - llm_calls_before,
                    },
                });
            }
        }
        window = ramped(window, max_window);
    }

    let exhausted_budget = (candidates as u128) < space;
    Ok(PermutationOutcome {
        counterfactual: None,
        exhausted_budget,
        completeness: if exhausted_budget {
            Completeness::BudgetTruncated {
                evaluated: candidates,
                pruned: 0,
            }
        } else {
            Completeness::Exact
        },
        stats: SearchStats {
            candidates,
            llm_calls: evaluator.llm_calls() - llm_calls_before,
        },
    })
}

/// Like [`find_permutation_counterfactual`] but demands a result.
pub fn require_permutation_counterfactual<E: Evaluate + ?Sized>(
    evaluator: &E,
    budget: &SearchBudget,
) -> Result<PermutationCounterfactual, RageError> {
    let outcome = find_permutation_counterfactual(evaluator, budget)?;
    outcome.counterfactual.ok_or(RageError::BudgetExhausted {
        evaluated: outcome.stats.candidates,
        space_exhausted: !outcome.exhausted_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::evaluator::{Evaluator, ParallelEvaluator};
    use rage_llm::{Generation, LanguageModel, LlmInput};
    use rage_retrieval::Document;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Answers with the id of the first source ("nothing" on empty context)
    /// and reports the given attention profile over the full context.
    struct FirstSourceLlm {
        attention: Vec<f64>,
        calls: Mutex<Vec<Vec<String>>>,
    }

    impl FirstSourceLlm {
        fn uniform(k: usize) -> Self {
            Self {
                attention: vec![1.0 / k as f64; k],
                calls: Mutex::new(Vec::new()),
            }
        }

        fn with_attention(attention: Vec<f64>) -> Self {
            Self {
                attention,
                calls: Mutex::new(Vec::new()),
            }
        }
    }

    impl LanguageModel for FirstSourceLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            self.calls
                .lock()
                .unwrap()
                .push(input.sources.iter().map(|s| s.id.clone()).collect());
            let answer = input
                .sources
                .first()
                .map(|s| s.id.clone())
                .unwrap_or_else(|| "nothing".to_string());
            let attention = if input.sources.len() == self.attention.len() {
                self.attention.clone()
            } else {
                vec![1.0; input.sources.len()]
            };
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: attention,
                prompt_tokens: 1,
            }
        }
        fn name(&self) -> &str {
            "first-source"
        }
    }

    /// Always answers the same thing regardless of context.
    struct ConstantLlm;

    impl LanguageModel for ConstantLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            Generation {
                answer: "same".into(),
                text: "same".into(),
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    fn context(k: usize) -> Context {
        let docs: Vec<Document> = (0..k)
            .map(|i| {
                let id = char::from(b'a' + i as u8).to_string();
                Document::new(id.clone(), "", format!("text {id}"))
            })
            .collect();
        Context::from_documents("which one?", &docs)
    }

    #[test]
    fn top_down_finds_the_first_source_removal() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::uniform(3)), context(3));
        let outcome =
            find_combination_counterfactual(&evaluator, &CounterfactualConfig::top_down()).unwrap();
        let cf = outcome.counterfactual.expect("counterfactual exists");
        assert_eq!(cf.removed, vec![0]);
        assert_eq!(cf.kept, vec![1, 2]);
        assert_eq!(cf.baseline_answer, "a");
        assert_eq!(cf.answer, "b");
        assert_eq!(cf.cited_positions(SearchDirection::TopDown), &[0]);
        assert!(!outcome.exhausted_budget);
        assert!(outcome.stats.candidates >= 1);
    }

    #[test]
    fn bottom_up_finds_the_smallest_retained_set() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::uniform(3)), context(3));
        let outcome =
            find_combination_counterfactual(&evaluator, &CounterfactualConfig::bottom_up())
                .unwrap();
        let cf = outcome.counterfactual.expect("counterfactual exists");
        assert_eq!(cf.kept.len(), 1);
        assert_eq!(cf.baseline_answer, "nothing");
        assert_ne!(cf.answer, "nothing");
        assert_eq!(cf.removed.len(), 2);
        assert_eq!(
            cf.cited_positions(SearchDirection::BottomUp),
            cf.kept.as_slice()
        );
    }

    #[test]
    fn relevance_orders_equal_size_candidates() {
        // Source 1 has the highest attention, so the first top-down candidate
        // must be the removal of source 1 (context without "b").
        let llm = Arc::new(FirstSourceLlm::with_attention(vec![0.2, 0.5, 0.3]));
        let evaluator = Evaluator::new(llm.clone(), context(3));
        // ConstantLlm-like behaviour is not needed; we only inspect call order.
        let config = CounterfactualConfig::top_down().with_max_size(1);
        find_combination_counterfactual(&evaluator, &config).unwrap();
        let calls = llm.calls.lock().unwrap();
        // Call 0 is the full-context baseline (also provides attention);
        // call 1 is the first candidate: sources {a, c} (source b removed).
        assert_eq!(calls[0], vec!["a", "b", "c"]);
        assert_eq!(calls[1], vec!["a", "c"]);
    }

    #[test]
    fn no_counterfactual_in_the_searched_space_is_ok_none() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let outcome =
            find_combination_counterfactual(&evaluator, &CounterfactualConfig::top_down()).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(!outcome.exhausted_budget);
        assert_eq!(outcome.completeness, Completeness::Exact);
        // All 2^3 - 1 = 7 non-full subsets of removals == 7 candidates.
        assert_eq!(outcome.stats.candidates, 7);
    }

    #[test]
    fn budget_stops_the_search_early() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(4));
        let config = CounterfactualConfig::top_down().with_budget(3);
        let outcome = find_combination_counterfactual(&evaluator, &config).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(outcome.exhausted_budget);
        assert_eq!(outcome.stats.candidates, 3);
        assert_eq!(
            outcome.completeness,
            Completeness::BudgetTruncated {
                evaluated: 3,
                pruned: 0
            }
        );

        let err = require_combination_counterfactual(&evaluator, &config).unwrap_err();
        assert!(matches!(
            err,
            RageError::BudgetExhausted {
                evaluated: 3,
                space_exhausted: false
            }
        ));
    }

    #[test]
    fn space_exhaustion_is_reported_as_such() {
        // ConstantLlm never flips, so the unbounded search covers all 7
        // candidates and the error must say the *space* is exhausted.
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let err = require_combination_counterfactual(&evaluator, &CounterfactualConfig::top_down())
            .unwrap_err();
        assert!(matches!(
            err,
            RageError::BudgetExhausted {
                evaluated: 7,
                space_exhausted: true
            }
        ));
    }

    #[test]
    fn pruning_skips_a_provably_flip_free_frontier() {
        // ConstantLlm: the empty-context answer equals the full-context answer,
        // so the lattice-maximal removal fails to flip and the whole top-down
        // frontier (2^4 - 1 = 15 sets) is pruned without a single evaluation.
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(4));
        let config = CounterfactualConfig::top_down().with_pruning();
        let outcome = find_combination_counterfactual(&evaluator, &config).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(!outcome.exhausted_budget);
        assert_eq!(outcome.stats.candidates, 0);
        assert_eq!(
            outcome.completeness,
            Completeness::BudgetTruncated {
                evaluated: 0,
                pruned: 15
            }
        );
        // The pruned "no counterfactual" verdict counts as space-resolved.
        let err = require_combination_counterfactual(&evaluator, &config).unwrap_err();
        assert!(matches!(
            err,
            RageError::BudgetExhausted {
                evaluated: 0,
                space_exhausted: true
            }
        ));
    }

    #[test]
    fn pruning_preserves_the_answer_when_a_flip_exists() {
        // FirstSourceLlm flips at the endpoint (empty context answers
        // "nothing" != "a"), so pruning must not trigger and both runs must
        // find the identical counterfactual at the identical cost.
        let plain = Evaluator::new(Arc::new(FirstSourceLlm::uniform(3)), context(3));
        let unpruned =
            find_combination_counterfactual(&plain, &CounterfactualConfig::top_down()).unwrap();
        let gated = Evaluator::new(Arc::new(FirstSourceLlm::uniform(3)), context(3));
        let pruned = find_combination_counterfactual(
            &gated,
            &CounterfactualConfig::top_down().with_pruning(),
        )
        .unwrap();
        assert_eq!(pruned.counterfactual, unpruned.counterfactual);
        assert_eq!(pruned.stats.candidates, unpruned.stats.candidates);
        assert_eq!(pruned.completeness, Completeness::Exact);
    }

    #[test]
    fn expired_deadline_truncates_the_combination_search() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let deadline = crate::budget::Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let config = CounterfactualConfig::top_down().with_deadline(deadline);
        let outcome = find_combination_counterfactual(&evaluator, &config).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(outcome.exhausted_budget);
        assert_eq!(outcome.stats.candidates, 0);
        assert!(matches!(
            outcome.completeness,
            Completeness::DeadlineTruncated { .. }
        ));
    }

    #[test]
    fn expired_deadline_truncates_the_permutation_search() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let deadline = crate::budget::Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let budget = SearchBudget::UNLIMITED.with_deadline(deadline);
        let outcome = find_permutation_counterfactual(&evaluator, &budget).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(outcome.exhausted_budget);
        assert_eq!(outcome.stats.candidates, 0);
        assert!(matches!(
            outcome.completeness,
            Completeness::DeadlineTruncated { .. }
        ));
    }

    #[test]
    fn cache_makes_repeated_searches_free() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let config = CounterfactualConfig::top_down();
        let first = find_combination_counterfactual(&evaluator, &config).unwrap();
        assert!(first.stats.llm_calls > 0);
        let second = find_combination_counterfactual(&evaluator, &config).unwrap();
        assert_eq!(second.stats.llm_calls, 0);
        assert_eq!(second.stats.candidates, first.stats.candidates);
    }

    #[test]
    fn permutation_search_finds_the_most_similar_flip() {
        let evaluator = Evaluator::new(Arc::new(FirstSourceLlm::uniform(3)), context(3));
        let outcome =
            find_permutation_counterfactual(&evaluator, &SearchBudget::UNLIMITED).unwrap();
        let cf = outcome.counterfactual.expect("counterfactual exists");
        // The single-inversion orders are [0,2,1] (same first source, same
        // answer) and [1,0,2] (answer flips to "b"); the search must find the
        // latter and never report the identity.
        assert_eq!(cf.order, vec![1, 0, 2]);
        assert_eq!(cf.baseline_answer, "a");
        assert_eq!(cf.answer, "b");
        assert!((cf.tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_search_exhausts_small_spaces() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(3));
        let outcome =
            find_permutation_counterfactual(&evaluator, &SearchBudget::UNLIMITED).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(!outcome.exhausted_budget);
        assert_eq!(outcome.completeness, Completeness::Exact);
        // 3! - 1 = 5 non-identity orders.
        assert_eq!(outcome.stats.candidates, 5);
    }

    #[test]
    fn permutation_budget_is_respected() {
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context(4));
        let budget = SearchBudget::max_evaluations(4);
        let outcome = find_permutation_counterfactual(&evaluator, &budget).unwrap();
        assert!(outcome.counterfactual.is_none());
        assert!(outcome.exhausted_budget);
        assert_eq!(outcome.stats.candidates, 4);
        assert_eq!(
            outcome.completeness,
            Completeness::BudgetTruncated {
                evaluated: 4,
                pruned: 0
            }
        );
        assert!(matches!(
            require_permutation_counterfactual(&evaluator, &budget),
            Err(RageError::BudgetExhausted {
                evaluated: 4,
                space_exhausted: false
            })
        ));
    }

    #[test]
    fn parallel_searches_find_the_same_counterfactuals() {
        let sequential = Evaluator::new(Arc::new(FirstSourceLlm::uniform(4)), context(4));
        let combo_seq =
            find_combination_counterfactual(&sequential, &CounterfactualConfig::top_down())
                .unwrap();
        let perm_seq =
            find_permutation_counterfactual(&sequential, &SearchBudget::UNLIMITED).unwrap();

        for threads in [1, 2, 4] {
            let parallel = ParallelEvaluator::new(
                Evaluator::new(Arc::new(FirstSourceLlm::uniform(4)), context(4)),
                threads,
            );
            let combo =
                find_combination_counterfactual(&parallel, &CounterfactualConfig::top_down())
                    .unwrap();
            let perm =
                find_permutation_counterfactual(&parallel, &SearchBudget::UNLIMITED).unwrap();
            // Identical explanations and identical logical candidate counts;
            // only the speculative llm_calls may exceed the sequential run's.
            assert_eq!(combo.counterfactual, combo_seq.counterfactual);
            assert_eq!(combo.stats.candidates, combo_seq.stats.candidates);
            assert_eq!(perm.counterfactual, perm_seq.counterfactual);
            assert_eq!(perm.stats.candidates, perm_seq.stats.candidates);
            assert!(perm.stats.llm_calls >= perm_seq.stats.llm_calls);
        }
    }

    #[test]
    fn retrieval_scoring_skips_the_attention_call() {
        let llm = Arc::new(ConstantLlm);
        let evaluator = Evaluator::new(llm, context(3));
        let config = CounterfactualConfig::top_down()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(1);
        let outcome = find_combination_counterfactual(&evaluator, &config).unwrap();
        // One baseline + one candidate; no extra attention read-out call.
        assert_eq!(outcome.stats.llm_calls, 2);
    }
}
