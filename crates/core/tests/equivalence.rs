//! Equivalence suite: the parallel evaluator must explain exactly like the
//! sequential one.
//!
//! Two guarantees are locked in over the demonstration scenarios (`us_open`,
//! `big_three`) and a synthetic ranking scenario:
//!
//! 1. **Thread-count invariance** — `ParallelEvaluator` over 1, 2, 4 and 8
//!    threads produces *fully* identical `RageReport`s (explanations **and**
//!    cost counters), because its batch window is fixed independently of the
//!    worker count.
//! 2. **Sequential equivalence** — every explanation a parallel report
//!    contains (answers, counterfactuals, optimal placements, insight
//!    distribution/table/rules, source scores, candidate counts) equals the
//!    sequential evaluator's. Only raw `llm_calls`/`evaluations` may exceed
//!    the sequential run's, by the documented speculative window evaluations
//!    past an early exit.
//!
//! A third axis rides along: enabling the `SimLlm` prefix cache must leave a
//! sequential report bit-for-bit unchanged.

use std::sync::Arc;

use rage_core::explanation::ReportConfig;
use rage_core::{Evaluator, ParallelEvaluator, RagPipeline, RageReport};
use rage_datasets::synthetic::{ranking_scenario, RankingConfig};
use rage_datasets::{big_three, us_open, Scenario};
use rage_llm::cache::PrefixCache;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, Searcher};

fn pipeline_for(scenario: &Scenario, prefix_cache: bool) -> RagPipeline {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let mut llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    if prefix_cache {
        llm = llm.with_prefix_cache(Arc::new(PrefixCache::default()));
    }
    RagPipeline::new(searcher, Arc::new(llm))
}

fn evaluator_for(scenario: &Scenario, prefix_cache: bool) -> Evaluator {
    let pipeline = pipeline_for(scenario, prefix_cache);
    let (_, evaluator) = pipeline
        .ask_and_explain(&scenario.question, scenario.retrieval_k)
        .expect("scenario question retrieves a context");
    evaluator
}

/// A trimmed config that still exercises every search (both combination
/// directions, the permutation search, rankings and insights).
fn report_config() -> ReportConfig {
    ReportConfig {
        num_optimal_orders: 2,
        combination_budget: Some(24),
        permutation_budget: Some(16),
        insight_samples: 8,
        seed: 7,
        ..ReportConfig::default()
    }
}

/// The explanation content (everything except raw cache-cost counters) of two
/// reports must match.
fn assert_same_explanations(label: &str, a: &RageReport, b: &RageReport) {
    assert_eq!(a.question, b.question, "{label}: question");
    assert_eq!(a.context, b.context, "{label}: context");
    assert_eq!(
        a.full_context_answer, b.full_context_answer,
        "{label}: full-context answer"
    );
    assert_eq!(
        a.empty_context_answer, b.empty_context_answer,
        "{label}: empty-context answer"
    );
    assert_eq!(a.source_scores, b.source_scores, "{label}: source scores");
    assert_eq!(
        a.top_down.counterfactual, b.top_down.counterfactual,
        "{label}: top-down counterfactual"
    );
    assert_eq!(
        a.bottom_up.counterfactual, b.bottom_up.counterfactual,
        "{label}: bottom-up counterfactual"
    );
    assert_eq!(
        a.permutation.counterfactual, b.permutation.counterfactual,
        "{label}: permutation counterfactual"
    );
    // Logical candidate accounting is window-independent and must also agree.
    assert_eq!(
        a.top_down.stats.candidates, b.top_down.stats.candidates,
        "{label}: top-down candidates"
    );
    assert_eq!(
        a.bottom_up.stats.candidates, b.bottom_up.stats.candidates,
        "{label}: bottom-up candidates"
    );
    assert_eq!(
        a.permutation.stats.candidates, b.permutation.stats.candidates,
        "{label}: permutation candidates"
    );
    assert_eq!(
        a.top_down.exhausted_budget, b.top_down.exhausted_budget,
        "{label}: top-down budget flag"
    );
    assert_eq!(
        a.bottom_up.exhausted_budget, b.bottom_up.exhausted_budget,
        "{label}: bottom-up budget flag"
    );
    assert_eq!(
        a.permutation.exhausted_budget, b.permutation.exhausted_budget,
        "{label}: permutation budget flag"
    );
    assert_eq!(a.best_orders, b.best_orders, "{label}: best orders");
    assert_eq!(a.worst_orders, b.worst_orders, "{label}: worst orders");
    assert_eq!(
        a.insights.num_samples, b.insights.num_samples,
        "{label}: insight samples"
    );
    assert_eq!(
        a.insights.distribution, b.insights.distribution,
        "{label}: insight distribution"
    );
    assert_eq!(a.insights.table, b.insights.table, "{label}: insight table");
    assert_eq!(a.insights.rules, b.insights.rules, "{label}: insight rules");
}

fn scenarios() -> Vec<Scenario> {
    vec![
        us_open::scenario(),
        big_three::scenario(),
        ranking_scenario(RankingConfig {
            num_sources: 5,
            ..RankingConfig::default()
        }),
    ]
}

#[test]
fn parallel_reports_match_sequential_reports_on_every_scenario() {
    let config = report_config();
    for (scenario_index, scenario) in scenarios().into_iter().enumerate() {
        let sequential = evaluator_for(&scenario, false);
        let reference = RageReport::generate(&sequential, &config).unwrap();

        // The full 1/2/4/8 sweep runs on the first scenario; the others get a
        // two-point sweep to keep the suite fast — invariance is a property of
        // the fixed batch window, not of the scenario.
        let sweep: &[usize] = if scenario_index == 0 {
            &[1, 2, 4, 8]
        } else {
            &[2, 8]
        };
        let mut parallel_reports = Vec::new();
        for &threads in sweep {
            let evaluator = ParallelEvaluator::new(evaluator_for(&scenario, false), threads);
            let report = RageReport::generate(&evaluator, &config).unwrap();
            assert_same_explanations(
                &format!("{} @ {threads} threads vs sequential", scenario.name),
                &report,
                &reference,
            );
            // Speculative windows may only ever add cost, never remove it.
            assert!(
                report.llm_calls >= reference.llm_calls,
                "{}: parallel did fewer inferences than sequential",
                scenario.name
            );
            parallel_reports.push((threads, report));
        }

        // Thread-count invariance is *full* equality, cost counters included.
        let (_, first) = &parallel_reports[0];
        for (threads, report) in &parallel_reports[1..] {
            assert_eq!(
                report, first,
                "{}: report at {threads} threads differs from 1 thread",
                scenario.name
            );
        }
    }
}

#[test]
fn prefix_cache_leaves_sequential_reports_unchanged() {
    // One full-report check here; per-generation bit-identity across permuted
    // and truncated contexts is covered exhaustively in rage-llm's
    // prefix_cache integration tests.
    let config = report_config();
    let scenario = big_three::scenario();
    let plain = RageReport::generate(&evaluator_for(&scenario, false), &config).unwrap();
    let cached = RageReport::generate(&evaluator_for(&scenario, true), &config).unwrap();
    // Same evaluator type and the cache is invisible to results: the reports
    // must be fully identical, counters included.
    assert_eq!(
        plain, cached,
        "{}: prefix cache changed a report",
        scenario.name
    );
}

#[test]
fn prefix_cached_parallel_report_matches_sequential() {
    // The production configuration: prefix-cached model under a 4-thread
    // worker pool, against the plain sequential baseline.
    let config = report_config();
    let scenario = us_open::scenario();
    let reference = RageReport::generate(&evaluator_for(&scenario, false), &config).unwrap();
    let evaluator = ParallelEvaluator::new(evaluator_for(&scenario, true), 4);
    let report = RageReport::generate(&evaluator, &config).unwrap();
    assert_same_explanations("us_open cached+parallel vs sequential", &report, &reference);
}

#[test]
fn repeated_parallel_reports_are_deterministic() {
    let config = report_config();
    let scenario = big_three::scenario();
    let a = RageReport::generate(
        &ParallelEvaluator::new(evaluator_for(&scenario, true), 4),
        &config,
    )
    .unwrap();
    let b = RageReport::generate(
        &ParallelEvaluator::new(evaluator_for(&scenario, true), 4),
        &config,
    )
    .unwrap();
    assert_eq!(a, b);
}
