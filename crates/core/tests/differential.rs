//! Differential suite for the combination-search monotonicity prune: over
//! every registry scenario (and a seeded sweep of synthetic ranking
//! scenarios), searching with pruning enabled must return *exactly* the
//! counterfactual the unpruned search returns — the prune may only skip work
//! that is genuinely flip-free, never change an answer.
//!
//! The bound is only admissible for perturbation-monotone models, and the
//! last test pins a live counterexample — a ranking scenario whose answer
//! flips under a partial removal even though the full removal restores the
//! prior — which is exactly why nothing in the report or anytime paths
//! enables pruning implicitly.

use std::sync::Arc;

use rage_core::counterfactual::{find_combination_counterfactual, CounterfactualConfig};
use rage_core::{Evaluator, RagPipeline, ScoringMethod};
use rage_datasets::synthetic::{ranking_scenario, RankingConfig};
use rage_datasets::{Scenario, ScenarioRegistry};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, Searcher};

fn evaluator_for(scenario: &Scenario) -> Evaluator {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));
    let (_, evaluator) = pipeline
        .ask_and_explain(&scenario.question, scenario.retrieval_k)
        .expect("scenario retrieves a context");
    evaluator
}

/// Assert pruned ≡ unpruned for one evaluator under one base config.
fn assert_prune_preserves_answers(name: &str, evaluator: &Evaluator, base: CounterfactualConfig) {
    let plain = find_combination_counterfactual(evaluator, &base).unwrap();
    let pruned_outcome = find_combination_counterfactual(evaluator, &base.with_pruning()).unwrap();

    // The counterfactual itself — the answer the user sees — must be
    // identical, found or not.
    assert_eq!(
        pruned_outcome.counterfactual, plain.counterfactual,
        "{name}: pruning changed the counterfactual"
    );
    if pruned_outcome.stats.candidates == 0 && !pruned_outcome.completeness.is_exact() {
        // The prune fired: the frontier it skipped must indeed be flip-free,
        // which the unpruned search proves by exhausting it empty-handed.
        assert!(
            plain.counterfactual.is_none(),
            "{name}: prune skipped a frontier that held a flip"
        );
        assert!(
            !plain.exhausted_budget,
            "{name}: prune may only stand in for a space-exhausted search"
        );
    } else {
        // The prune did not fire: the searches must be indistinguishable.
        assert_eq!(
            pruned_outcome.stats.candidates, plain.stats.candidates,
            "{name}: pruning changed the evaluation count without firing"
        );
        assert_eq!(
            pruned_outcome.exhausted_budget, plain.exhausted_budget,
            "{name}: pruning changed budget exhaustion"
        );
        assert_eq!(
            pruned_outcome.completeness, plain.completeness,
            "{name}: pruning changed the completeness marker"
        );
    }
}

fn sweep(name: &str, scenario: &Scenario) {
    let evaluator = evaluator_for(scenario);
    for scoring in [ScoringMethod::Attention, ScoringMethod::RetrievalScore] {
        for base in [
            CounterfactualConfig::top_down(),
            CounterfactualConfig::bottom_up(),
        ] {
            assert_prune_preserves_answers(
                &format!("{name}/{scoring:?}"),
                &evaluator,
                base.with_scoring(scoring),
            );
        }
    }
}

#[test]
fn pruned_equals_unpruned_on_every_registry_scenario() {
    let registry = ScenarioRegistry::builtin();
    let mut covered = 0;
    for entry in registry.iter() {
        let scenario = entry.build();
        sweep(entry.name(), &scenario);
        covered += 1;
    }
    assert!(covered >= 5, "registry unexpectedly small: {covered}");
}

#[test]
fn pruned_equals_unpruned_on_seeded_synthetic_sweeps() {
    for seed in [1, 7, 42, 1234] {
        for (num_sources, num_entities) in [(4, 2), (5, 3), (6, 3)] {
            let scenario = ranking_scenario(RankingConfig {
                num_sources,
                num_entities,
                seed,
                ..RankingConfig::default()
            });
            sweep(
                &format!("ranking(k={num_sources},e={num_entities},seed={seed})"),
                &scenario,
            );
        }
    }
}

/// The scoped-out case, pinned: an 8-source ranking scenario where the prior
/// and the full context agree on the answer ("Boris Blake") yet removing two
/// sources flips it — a non-monotone model defeats the endpoint bound, the
/// prune discards a findable flip, and the outcome says so (`pruned` counted,
/// marker non-exact). This is the reason `RageReport::generate_with_deadline`
/// never turns pruning on.
#[test]
fn non_monotone_ranking_defeats_the_monotonicity_bound() {
    let scenario = ranking_scenario(RankingConfig {
        num_sources: 8,
        ..RankingConfig::default()
    });
    let evaluator = evaluator_for(&scenario);
    let base = CounterfactualConfig::top_down();

    let plain = find_combination_counterfactual(&evaluator, &base).unwrap();
    let flip = plain
        .counterfactual
        .expect("the unpruned search finds a flip");
    assert_eq!(
        flip.baseline_answer,
        evaluator.empty_context_answer().unwrap()
    );

    let pruned = find_combination_counterfactual(&evaluator, &base.with_pruning()).unwrap();
    assert!(
        pruned.counterfactual.is_none(),
        "the endpoint bound misfires here"
    );
    assert!(!pruned.completeness.is_exact());
    assert_eq!(pruned.stats.candidates, 0);
}
