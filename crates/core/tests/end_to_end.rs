//! End-to-end tests: retrieval → pipeline → counterfactual search → optimal
//! permutations over the demonstration scenarios, asserting the paper's
//! narratives — most importantly that *removing the cited source flips the
//! answer*.

use std::sync::Arc;

use rage_core::counterfactual::{
    find_combination_counterfactual, find_permutation_counterfactual,
    require_combination_counterfactual, CounterfactualConfig,
};
use rage_core::explanation::ReportConfig;
use rage_core::insights::{random_permutations, Insights};
use rage_core::optimal::{best_orders, naive_orders, ranked_orders, OptimalConfig, OrderObjective};
use rage_core::{
    answers_equal, Evaluator, Perturbation, RagPipeline, RageError, RageReport, ScoringMethod,
    SearchBudget,
};
use rage_datasets::synthetic::{ranking_scenario, RankingConfig};
use rage_datasets::{us_open, Scenario};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, Searcher};

fn pipeline_for(scenario: &Scenario) -> RagPipeline {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    RagPipeline::new(searcher, Arc::new(llm))
}

fn explain(scenario: &Scenario) -> (String, Evaluator) {
    let pipeline = pipeline_for(scenario);
    let (response, evaluator) = pipeline
        .ask_and_explain(&scenario.question, scenario.retrieval_k)
        .expect("scenario retrieves a context");
    (response.answer().to_string(), evaluator)
}

fn synthetic_k6() -> Scenario {
    ranking_scenario(RankingConfig {
        num_sources: 6,
        num_entities: 3,
        ..RankingConfig::default()
    })
}

#[test]
fn us_open_answers_match_the_paper_narrative() {
    let scenario = us_open::scenario();
    let (answer, evaluator) = explain(&scenario);
    assert_eq!(answer, scenario.expected_full_context_answer);
    assert_eq!(
        evaluator.empty_context_answer().unwrap(),
        scenario.expected_empty_context_answer
    );
}

#[test]
fn us_open_removing_the_cited_source_flips_the_answer() {
    let scenario = us_open::scenario();
    let (answer, evaluator) = explain(&scenario);
    assert_eq!(answer, "Coco Gauff");

    let outcome =
        find_combination_counterfactual(&evaluator, &CounterfactualConfig::top_down()).unwrap();
    let cf = outcome.counterfactual.expect("a citation exists");

    // The citation is exactly the up-to-date 2023 document: the only source
    // supporting "Coco Gauff".
    let up_to_date = evaluator
        .context()
        .position_of(us_open::UP_TO_DATE_DOC)
        .expect("2023 document is in the context");
    assert_eq!(cf.removed, vec![up_to_date]);
    assert_eq!(cf.baseline_answer, "Coco Gauff");
    assert_eq!(cf.answer, "Iga Swiatek");

    // Re-evaluating the removal independently reproduces the flip.
    let replay = evaluator
        .answer_for(&Perturbation::removal(evaluator.k(), &cf.removed))
        .unwrap();
    assert!(!answers_equal(&replay, &answer));
    assert!(answers_equal(&replay, &cf.answer));
}

#[test]
fn us_open_bottom_up_counterfactual_beats_the_prior() {
    let scenario = us_open::scenario();
    let (_, evaluator) = explain(&scenario);
    let outcome =
        find_combination_counterfactual(&evaluator, &CounterfactualConfig::bottom_up()).unwrap();
    let cf = outcome.counterfactual.expect("a retained set exists");
    // A single retained source already overrides the stale prior memory.
    assert_eq!(cf.kept.len(), 1);
    assert_eq!(cf.baseline_answer, "Serena Williams");
    assert_ne!(cf.answer, "Serena Williams");
}

#[test]
fn us_open_reordering_resurfaces_the_stale_champion() {
    let scenario = us_open::scenario();
    let (answer, evaluator) = explain(&scenario);
    let outcome =
        find_permutation_counterfactual(&evaluator, &SearchBudget::max_evaluations(200)).unwrap();
    let cf = outcome.counterfactual.expect("order matters here");
    assert_eq!(cf.baseline_answer, answer);
    assert_eq!(cf.answer, "Iga Swiatek");
    assert!(cf.tau < 1.0);
    // The search evaluates most-similar orders first, so the flip it returns
    // is within the first candidates, far below the budget.
    assert!(outcome.stats.candidates <= 200);
}

#[test]
fn us_open_insights_expose_order_sensitivity() {
    let scenario = us_open::scenario();
    let (_, evaluator) = explain(&scenario);
    let samples = random_permutations(evaluator.k(), 40, 3);
    let insights = Insights::from_perturbations(&evaluator, &samples).unwrap();
    assert_eq!(insights.num_samples, 40);
    // Both the up-to-date and the stale champion appear across orders.
    assert!(insights.distribution.share_of("Coco Gauff") > 0.5);
    assert!(insights.distribution.share_of("Iga Swiatek") > 0.0);
    assert!(insights.distribution.num_answers() >= 2);
}

#[test]
fn synthetic_top_down_counterfactual_flips_the_answer() {
    let scenario = synthetic_k6();
    let (answer, evaluator) = explain(&scenario);
    assert_eq!(answer, scenario.expected_full_context_answer);

    let config = CounterfactualConfig::top_down().with_scoring(ScoringMethod::RetrievalScore);
    let cf = require_combination_counterfactual(&evaluator, &config).unwrap();
    assert!(!answers_equal(&cf.answer, &answer));
    // Increasing-size enumeration means the citation is minimal-size: no
    // single removal smaller than it could have been skipped.
    assert!(!cf.removed.is_empty());
    let replay = evaluator
        .answer_for(&Perturbation::Combination(cf.kept.clone()))
        .unwrap();
    assert!(answers_equal(&replay, &cf.answer));
}

#[test]
fn synthetic_budget_exhaustion_is_reported() {
    let scenario = synthetic_k6();
    let (_, evaluator) = explain(&scenario);
    let config = CounterfactualConfig::top_down()
        .with_scoring(ScoringMethod::RetrievalScore)
        .with_budget(0);
    let outcome = find_combination_counterfactual(&evaluator, &config).unwrap();
    assert!(outcome.counterfactual.is_none());
    assert!(outcome.exhausted_budget);
    assert_eq!(outcome.stats.candidates, 0);
    assert!(matches!(
        require_combination_counterfactual(&evaluator, &config),
        Err(RageError::BudgetExhausted {
            evaluated: 0,
            space_exhausted: false
        })
    ));
}

#[test]
fn optimal_k_best_agrees_with_the_naive_baseline_up_to_k6() {
    // Acceptance criterion: ranked enumeration == brute force for k ≤ 6,
    // on both the synthetic (k = 6) and us_open (k = 5) contexts.
    for scenario in [synthetic_k6(), us_open::scenario()] {
        let (_, evaluator) = explain(&scenario);
        assert!(evaluator.k() <= 6);
        let config = OptimalConfig::default()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_num_orders(10);
        for objective in [OrderObjective::Best, OrderObjective::Worst] {
            let ranked = ranked_orders(&evaluator, &config, objective).unwrap();
            let naive = naive_orders(&evaluator, &config, objective).unwrap();
            assert_eq!(ranked.len(), naive.len());
            for (r, n) in ranked.iter().zip(naive.iter()) {
                assert!(
                    (r.objective - n.objective).abs() < 1e-9,
                    "scenario {}: ranked {} vs naive {}",
                    scenario.name,
                    r.objective,
                    n.objective
                );
            }
        }
    }
}

#[test]
fn optimal_orders_are_ranked_and_answerable() {
    let scenario = us_open::scenario();
    let (_, evaluator) = explain(&scenario);
    let config = OptimalConfig::default()
        .with_scoring(ScoringMethod::RetrievalScore)
        .with_num_orders(5);
    let best = best_orders(&evaluator, &config).unwrap();
    assert_eq!(best.len(), 5);
    for pair in best.windows(2) {
        assert!(pair[0].objective >= pair[1].objective - 1e-9);
    }
    for op in &best {
        assert!(!op.answer.is_empty());
        assert_eq!(op.order.len(), evaluator.k());
    }
}

#[test]
fn full_report_over_us_open_ties_everything_together() {
    let scenario = us_open::scenario();
    let (_, evaluator) = explain(&scenario);
    let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();

    assert_eq!(report.full_context_answer, "Coco Gauff");
    assert_eq!(report.empty_context_answer, "Serena Williams");
    assert_eq!(report.citations(), vec![us_open::UP_TO_DATE_DOC]);
    assert!(report.order_sensitive());
    // The evaluator cache means each distinct perturbation is paid exactly once.
    assert_eq!(report.llm_calls, report.evaluations);
    let summary = report.summary();
    assert!(summary.contains("Coco Gauff"));
    assert!(summary.contains("us-open-2023"));
}
