//! Property-style tests for the combinatorics substrate: the fast algorithms
//! must agree with their brute-force counterparts on randomly generated
//! instances, and the rank-correlation primitives must satisfy their
//! mathematical invariants.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rage_assignment::hungarian::{brute_force_assignment, solve_assignment, CostMatrix};
use rage_assignment::kbest::{brute_force_k_best, k_best_assignments};
use rage_assignment::kendall::{kendall_tau, kendall_tau_between, kendall_tau_naive};
use rage_assignment::numeric::factorial;
use rage_assignment::permutations::is_permutation;

fn random_matrix(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> CostMatrix {
    CostMatrix::from_fn(n, |_, _| rng.gen_range(lo..hi))
}

fn random_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

#[test]
fn hungarian_equals_brute_force_minimum_on_random_matrices() {
    let mut rng = StdRng::seed_from_u64(0xA55A);
    for n in 1..=6usize {
        for case in 0..25 {
            let costs = random_matrix(&mut rng, n, -25.0, 25.0);
            let fast = solve_assignment(&costs);
            let brute = brute_force_assignment(&costs);
            assert!(is_permutation(&fast.assignment, n), "n={n} case={case}");
            assert!(
                (fast.total - brute.total).abs() < 1e-9,
                "n={n} case={case}: hungarian {} vs brute force {}",
                fast.total,
                brute.total
            );
        }
    }
}

#[test]
fn k_best_costs_are_non_decreasing() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for n in 2..=6usize {
        let costs = random_matrix(&mut rng, n, 0.0, 100.0);
        let s = 50.min(factorial(n) as usize);
        let ranked = k_best_assignments(&costs, s);
        assert_eq!(ranked.len(), s, "n={n}");
        for (i, pair) in ranked.windows(2).enumerate() {
            assert!(
                pair[0].total <= pair[1].total + 1e-9,
                "n={n}: rank {i} cost {} > rank {} cost {}",
                pair[0].total,
                i + 1,
                pair[1].total
            );
        }
        // All returned assignments are valid and distinct.
        let mut seen = std::collections::HashSet::new();
        for a in &ranked {
            assert!(is_permutation(&a.assignment, n));
            assert!(seen.insert(a.assignment.clone()), "duplicate assignment");
        }
    }
}

#[test]
fn k_best_agrees_with_brute_force_ranking() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for n in 2..=5usize {
        for _ in 0..10 {
            let costs = random_matrix(&mut rng, n, -10.0, 10.0);
            let s = 12.min(factorial(n) as usize);
            let ranked = k_best_assignments(&costs, s);
            let brute = brute_force_k_best(&costs, s);
            assert_eq!(ranked.len(), brute.len(), "n={n}");
            for (r, b) in ranked.iter().zip(brute.iter()) {
                assert!((r.total - b.total).abs() < 1e-9, "n={n}");
            }
        }
    }
}

#[test]
fn kendall_tau_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for n in 2..=8usize {
        for _ in 0..20 {
            let a = random_permutation(&mut rng, n);
            let b = random_permutation(&mut rng, n);
            let ab = kendall_tau_between(&a, &b);
            let ba = kendall_tau_between(&b, &a);
            assert!((ab - ba).abs() < 1e-12, "tau({a:?},{b:?}) {ab} != {ba}");
        }
    }
}

#[test]
fn kendall_tau_is_bounded_and_extremal_at_the_extremes() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for n in 2..=9usize {
        let identity: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        assert_eq!(kendall_tau(&identity), 1.0);
        assert_eq!(kendall_tau(&reversed), -1.0);
        for _ in 0..20 {
            let perm = random_permutation(&mut rng, n);
            let tau = kendall_tau(&perm);
            assert!((-1.0..=1.0).contains(&tau), "tau({perm:?}) = {tau}");
            // The fast inversion counter agrees with the O(k²) definition.
            assert!((tau - kendall_tau_naive(&perm)).abs() < 1e-12);
            // Self-correlation is perfect.
            assert_eq!(kendall_tau_between(&perm, &perm), 1.0);
        }
    }
}

/// The original breadth-first materialisation of the similarity enumeration,
/// kept verbatim as the oracle for the lazy frontier iterator.
fn materialised_permutations_by_similarity(k: usize, limit: usize) -> Vec<Vec<usize>> {
    use std::collections::BTreeSet;

    if limit == 0 {
        return Vec::new();
    }
    let identity: Vec<usize> = (0..k).collect();
    let mut result = vec![identity.clone()];
    let mut current_level: BTreeSet<Vec<usize>> = BTreeSet::new();
    current_level.insert(identity);

    while result.len() < limit {
        let mut next_level: BTreeSet<Vec<usize>> = BTreeSet::new();
        for perm in &current_level {
            for i in 0..k.saturating_sub(1) {
                if perm[i] < perm[i + 1] {
                    let mut swapped = perm.clone();
                    swapped.swap(i, i + 1);
                    next_level.insert(swapped);
                }
            }
        }
        if next_level.is_empty() {
            break;
        }
        for perm in &next_level {
            if result.len() >= limit {
                break;
            }
            result.push(perm.clone());
        }
        current_level = next_level;
    }
    result
}

#[test]
fn lazy_similarity_iterator_matches_materialised_enumeration() {
    use rage_assignment::permutations::SimilarityPermutations;

    for k in 0..=8usize {
        // Everything for small k; a deep prefix (past several inversion
        // levels) for k = 7 and 8, where the full k! materialisation is what
        // the iterator exists to avoid.
        let total = factorial(k) as usize;
        let prefixes: &[usize] = if k <= 6 {
            &[0, 1, 2, 5, usize::MAX]
        } else {
            &[0, 1, 17, 500, 2000]
        };
        for &prefix in prefixes {
            let n = prefix.min(total);
            let lazy: Vec<Vec<usize>> = SimilarityPermutations::new(k).take(n).collect();
            let oracle = materialised_permutations_by_similarity(k, n);
            assert_eq!(lazy, oracle, "k={k} n={n}");
        }
    }
}

#[test]
fn lazy_similarity_iterator_is_fused_with_take_and_resumable() {
    use rage_assignment::permutations::SimilarityPermutations;

    // Splitting one enumeration across multiple take() calls must agree with
    // one uninterrupted enumeration — the search windows its consumption.
    let mut windowed = SimilarityPermutations::new(6);
    let mut collected = Vec::new();
    for window in [1usize, 3, 8, 17, 40] {
        collected.extend(windowed.by_ref().take(window));
    }
    let oracle = materialised_permutations_by_similarity(6, collected.len());
    assert_eq!(collected, oracle);
}
